//! Umbrella package for the RLIR reproduction workspace.
//!
//! The actual library lives in the member crates (`rlir`, `rlir-rli`,
//! `rlir-sim`, `rlir-topo`, `rlir-trace`, `rlir-net`, `rlir-stats`,
//! `rlir-baselines`); this package hosts the runnable `examples/` and the
//! cross-crate `tests/` suites, and re-exports the members for
//! convenience.

pub use rlir;
pub use rlir_baselines;
pub use rlir_net;
pub use rlir_rli;
pub use rlir_sim;
pub use rlir_stats;
pub use rlir_topo;
pub use rlir_trace;
