#!/usr/bin/env bash
# Measurement-plane overhead vs tap count: sweep delivered-gated taps
# from one (switch, port) to every port of the k=8 fat-tree (544 of
# them), all sharing the plane's arena/wheel state under one fixed
# pending budget, and emit BENCH_plane.json with best-of-N wall-clock
# per point, the same run under the pre-PR-8 per-tap state layout, each
# point's overhead over the curve's 1-tap baseline, and both layouts'
# peak state bytes. The benchmark binary asserts in-run that the two
# layouts produced byte-identical per-tap flow rows, epoch series and
# shed/pending accounting (the property tests/plane_arena_differential.rs
# pins on the RLIR harness); this script records only the numbers.
#
# Usage: scripts/plane_bench.sh [output.json]
# Knobs: RLIR_PLANEBENCH_MS   (trace duration, default 20)
#        RLIR_PLANEBENCH_REPS (best-of, default 3)
#        RLIR_PLANEBENCH_K    (fat-tree arity, default 8)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench plane_bench "${1:-BENCH_plane.json}"
