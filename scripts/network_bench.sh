#!/usr/bin/env bash
# Time the event-driven network engine in three configurations on the k=4
# fat-tree incast workload — the retained PR 4 moving engine (full packet +
# hop vector through every calendar-queue push/pop), the arena-backed slab
# engine (state pinned in a free-list slab, 8-byte Copy handles moving),
# and the slab engine's streamed-delivery mode (no Vec<NetDelivery> at
# all) — and emit BENCH_network.json with wall-clock, events/sec, peak
# in-flight slots and hop-storage allocations. The three runs are asserted
# byte-identical by the benchmark binary itself (and pinned independently
# by tests/slab_engine_differential.rs + tests/scheduler_equivalence.rs);
# this script records only the numbers.
#
# Usage: scripts/network_bench.sh [output.json]
# Knobs: RLIR_NETBENCH_MS    (trace duration, default 120)
#        RLIR_NETBENCH_REPS  (best-of, default 3)
#        RLIR_NETBENCH_FANIN (synchronized sources, default 4)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench network_bench "${1:-BENCH_network.json}"
