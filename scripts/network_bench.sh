#!/usr/bin/env bash
# Time the event-driven network engine under both schedulers — the original
# BinaryHeap and the bucketed calendar queue — on the k=4 fat-tree incast
# workload, and emit BENCH_network.json. The two runs are asserted
# byte-identical by the benchmark binary itself (and pinned independently by
# tests/scheduler_equivalence.rs + tests/network_tandem_differential.rs);
# this script records only wall-clock.
#
# Usage: scripts/network_bench.sh [output.json]
# Knobs: RLIR_NETBENCH_MS    (trace duration, default 40)
#        RLIR_NETBENCH_REPS  (best-of, default 3)
#        RLIR_NETBENCH_FANIN (synchronized sources, default 4)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_network.json}"

cargo build --release -p rlir-bench --bin network_bench
target/release/network_bench > "$OUT"
echo "wrote $OUT:"
cat "$OUT"
