#!/usr/bin/env bash
# Time-to-localize bench: run the closed-loop faults sweep (mid-run switch
# degradation, online CUSUM/EWMA detection, stop-flag termination) over a
# grid of epoch lengths x detector thresholds and emit BENCH_detect.json —
# the detection-latency counterpart of the accuracy scenarios. For each
# cell the binary reports detections, correct localizations, false
# positives, and mean time-to-localize (detection watermark - fault
# onset), so the epoch-length/threshold trade-off is a recorded artifact
# rather than folklore.
#
# Usage: scripts/detect_bench.sh [output.json]
# Knobs: RLIR_DETBENCH_MS      (simulated duration, default 40)
#        RLIR_DETBENCH_TRIALS  (victim draws per cell, default 3)
#        RLIR_DETBENCH_THREADS (sweep workers, default 4)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench detect_bench "${1:-BENCH_detect.json}"
