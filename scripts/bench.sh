#!/usr/bin/env bash
# Run the hot-path benchmarks and emit BENCH_pipeline.json — the perf
# trajectory record future PRs compare against.
#
# The headline metric is packets/sec on the Fig. 4 tandem utilization sweep
# (three utilization points over shared 150 ms traces), measured for:
#   * pipeline/streaming     — the current chunked-streaming pipeline
#   * pipeline/batched_seed  — the seed's batched pipeline, reproduced
#     component for component (SeedFifoQueue u128 arithmetic, whole-trace
#     buffers, per-packet interpolation, sparse SipHash flow table)
# plus component micro-benchmarks (queue offers, sender observe, flow-table
# record). The byte-identical-deliveries guarantee between the two pipeline
# arms is enforced by `tests/streaming_equivalence.rs`.
#
# Usage: scripts/bench.sh [output.json]

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_pipeline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# One JSON line per benchmark lands in $RAW (vendored criterion stub).
CRITERION_JSON="$RAW" CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-4000}" \
    cargo bench -p rlir-bench --bench micro -- pipeline
CRITERION_JSON="$RAW" CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-1500}" \
    cargo bench -p rlir-bench --bench micro -- sender_observe
CRITERION_JSON="$RAW" CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-1500}" \
    cargo bench -p rlir-bench --bench micro -- flow_table
CRITERION_JSON="$RAW" CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-1500}" \
    cargo bench -p rlir-bench --bench micro -- fifo_queue

python3 - "$RAW" "$OUT" <<'PY'
import json
import platform
import subprocess
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
rows = {}
with open(raw_path) as fh:
    for line in fh:
        line = line.strip()
        if not line:
            continue
        r = json.loads(line)
        rows[f"{r['group']}/{r['bench']}"] = r

def ns(name):
    return rows[name]["ns_per_iter"] if name in rows else None

def rate(name):
    return rows[name].get("elems_per_sec") if name in rows else None

streaming = rate("pipeline/streaming")
batched = rate("pipeline/batched_seed")
git_rev = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or "unknown"

doc = {
    "bench": "tandem utilization sweep (Fig. 4 pipeline, targets 0.34/0.67/0.93, 150 ms traces)",
    "commit": git_rev,
    "host": {"machine": platform.machine(), "cpus": None},
    "pipeline": {
        "streaming_pkts_per_sec": streaming,
        "batched_seed_pkts_per_sec": batched,
        "speedup_vs_seed": (streaming / batched) if streaming and batched else None,
        "equivalence": "byte-identical deliveries (tests/streaming_equivalence.rs)",
    },
    "components_ns_per_iter": {
        k: v["ns_per_iter"] for k, v in sorted(rows.items()) if not k.startswith("pipeline/")
    },
}
try:
    import os
    doc["host"]["cpus"] = os.cpu_count()
except Exception:
    pass

with open(out_path, "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"wrote {out_path}")
if streaming and batched:
    print(f"streaming {streaming:,.0f} pkts/s vs seed {batched:,.0f} pkts/s "
          f"-> {streaming / batched:.2f}x")
PY
