#!/usr/bin/env bash
# Time the pod-sharded deterministic engine at shards 1, 2 and 4 on the
# k=8 fat-tree experiment workload and emit BENCH_shard.json with
# wall-clock, events/sec, the N-invariant safe-horizon window count and
# the per-point stall count (how often a shard hit the conservative
# lookahead horizon with work still pending — the bound on multi-core
# scaling). The benchmark binary asserts in-run that every shard count
# produced a byte-identical hop/watermark/delivery stream to the 1-shard
# run (the property tests/shard_determinism.rs proves under proptest);
# this script records only the numbers. On one vCPU expect honest
# windowing overhead, not speedup — the JSON says which.
#
# Usage: scripts/shard_bench.sh [output.json]
# Knobs: RLIR_SHARDBENCH_MS   (trace duration, default 40)
#        RLIR_SHARDBENCH_REPS (best-of, default 3)
#        RLIR_SHARDBENCH_K    (fat-tree arity, default 8)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench shard_bench "${1:-BENCH_shard.json}"
