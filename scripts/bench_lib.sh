# Shared plumbing for scripts/*_bench.sh — source this, then call
# run_bench. Every bench script is the same four lines (release build of
# one rlir-bench binary, run it, capture stdout to the output file, echo
# it back); this is that boilerplate, written once.
#
#   source "$(dirname "$0")/bench_lib.sh"
#   run_bench <binary> <output.json>
#
# The caller keeps its own knob documentation and default output name;
# the binaries themselves own the best-of-N timing loops and any in-run
# identity asserts.

run_bench() {
  local bin="$1" out="$2"
  cargo build --release -p rlir-bench --bin "$bin"
  "target/release/$bin" > "$out"
  echo "wrote $out:"
  cat "$out"
}
