#!/usr/bin/env bash
# Time a registry scenario through the shared SweepRunner at 1 thread vs N
# threads and emit BENCH_sweep.json — the wall-clock record for the parallel
# sweep executor. Results are byte-identical for any thread count
# (tests/sweep_determinism.rs); this script measures only elapsed time.
#
# Usage: scripts/sweep_bench.sh [output.json]
# Knobs: RLIR_SWEEP_SCENARIO (default loss_sweep)
#        RLIR_SWEEP_THREADS  (default: nproc, or 2 on a 1-CPU host so the
#                             scheduling overhead is still measured honestly)
#        RLIR_DURATION_MS    (default 40), RLIR_SEEDS (default 1)
#        RLIR_SWEEP_REPS     (default 3; best-of is reported)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sweep.json}"
SCENARIO="${RLIR_SWEEP_SCENARIO:-loss_sweep}"
CPUS="$(nproc)"
if [ "$CPUS" -gt 1 ]; then
    DEFAULT_THREADS="$CPUS"
else
    DEFAULT_THREADS=2
fi
THREADS="${RLIR_SWEEP_THREADS:-$DEFAULT_THREADS}"
REPS="${RLIR_SWEEP_REPS:-3}"
export RLIR_DURATION_MS="${RLIR_DURATION_MS:-40}"
export RLIR_SEEDS="${RLIR_SEEDS:-1}"
export RLIR_RESULTS_DIR="${RLIR_RESULTS_DIR:-results}"

cargo build --release -p rlir-bench --bin experiments
BIN=target/release/experiments

# Best-of-$REPS wall-clock in milliseconds for one thread count.
best_ms() {
    local threads="$1" best="" start end ms
    for _ in $(seq "$REPS"); do
        start=$(date +%s%N)
        "$BIN" run "$SCENARIO" --threads "$threads" >/dev/null
        end=$(date +%s%N)
        ms=$(((end - start) / 1000000))
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best="$ms"; fi
    done
    echo "$best"
}

ONE_MS=$(best_ms 1)
N_MS=$(best_ms "$THREADS")
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

python3 - "$OUT" <<PY
import json, sys
one, n = $ONE_MS, $N_MS
doc = {
    "bench": "registry sweep wall-clock ($SCENARIO, RLIR_DURATION_MS=$RLIR_DURATION_MS, RLIR_SEEDS=$RLIR_SEEDS, best of $REPS)",
    "commit": "$GIT_REV",
    "host_cpus": $CPUS,
    "single_thread_ms": one,
    "multi_thread_ms": n,
    "multi_threads": $THREADS,
    "speedup": round(one / n, 3) if n else None,
    "determinism": "N-thread output byte-identical to 1-thread (tests/sweep_determinism.rs)",
}
with open(sys.argv[1], "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
print(f"wrote {sys.argv[1]}: 1 thread {one} ms, $THREADS threads {n} ms "
      f"({one / n:.2f}x)" if n else "zero-time run")
PY
