#!/usr/bin/env bash
# Packets/s-off-disk headline for the streaming trace-replay ingest:
# stream-generate a multi-million-record nanosecond pcap to disk (O(chunk)
# memory), then replay it through the full tandem measurement stack — pcap
# decode, bounded reorder window, RLI reference interleave, all taps, the
# two-point capture pair — twice: pull-based streamed ingest vs the legacy
# collect-then-sort Vec ingest. Emits BENCH_trace.json with wall-clock,
# packets/s off disk and the ingest-side peak memory of both modes. The
# binary exits non-zero if the two runs' full event/watermark/delivery
# digests differ (streamed must be byte-identical to the Vec oracle) or if
# the streamed ingest buffer grew with capture size (flatness vs a 1-chunk
# baseline replay).
#
# Usage: scripts/trace_bench.sh [output.json]
# Knobs: RLIR_TRACE_TARGET_PACKETS (capture size floor, default 3000000)
#        RLIR_TRACE_CHUNK_MS       (generator chunk, default 120)
#        RLIR_TRACE_UTIL           (offered load vs 5 Gb/s, default 0.85)
#        RLIR_TRACE_SLACK          (ingest-buffer growth allowance, default 1.5)
#        RLIR_TRACE_FILE           (replay this capture instead of generating)
#        RLIR_TRACE_KEEP           (keep the generated captures)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench trace_bench "${1:-BENCH_trace.json}"
