#!/usr/bin/env bash
# Survivability bench: N seeded chaos campaigns (correlated link flaps,
# gray-loss ramps, tap crash/recovery pairs, a hidden switch degradation)
# against the k=4 fat-tree measurement plane, closed-loop under the online
# detector. Emits BENCH_chaos.json with per-campaign detection/TTL/false
# positives, tap-outage and recovery accounting, the tenant cross-talk
# probe (must be exactly 0 ns) and the hostile-ingest counters. The binary
# exits non-zero if the baseline alarms, isolation is violated, lenient
# ingest diverges from strict on a clean capture, or no recovery was
# exercised — so CI fails on any survivability regression.
#
# Usage: scripts/chaos_bench.sh [output.json]
# Knobs: RLIR_CHAOS_SEED      (master campaign seed, default 0xC405)
#        RLIR_CHAOS_MS        (per-campaign simulated ms, default 60)
#        RLIR_CHAOS_CAMPAIGNS (campaigns, default 3)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench chaos_bench "${1:-BENCH_chaos.json}"
