#!/usr/bin/env bash
# Flat-memory soak: run the k=4 fat-tree RLIR experiment (full tap plane,
# no per-epoch aggregation) at 1x/10x/100x the scenarios' 120 ms simulated
# duration and emit BENCH_soak.json with wall-clock, event counts, and the
# two peak-memory counters that must NOT grow with run length —
# NetworkRunStats::peak_live_slots (slab in-flight high-water mark) and
# the plane's peak pending observations (reorder-window buffering, capped
# by the global pending budget). The binary itself exits non-zero if a
# longer run's peaks exceed the shortest run's by more than the slack
# factor, so CI fails on any memory-vs-duration growth. Each rung also
# crashes the destination-ToR tap at 40% of its duration and cold-recovers
# it at 60%, so the same flatness gate proves crash/recovery leaks nothing.
#
# Usage: scripts/soak_bench.sh [output.json]
# Knobs: RLIR_SOAK_BASE_MS     (base simulated duration, default 120)
#        RLIR_SOAK_MULTIPLIERS (comma list, default 1,10,100)
#        RLIR_SOAK_SLACK       (allowed growth factor, default 1.5)
#        RLIR_SOAK_OUTAGE      (0 disables the tap-outage phase, default 1)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench soak_bench "${1:-BENCH_soak.json}"
