#!/usr/bin/env bash
# Time the measurement plane's two drains — the pre-refactor buffered-sort
# oracle and the default streaming reorder window — on the full fat-tree
# RLIR harness (engine + plane), and emit BENCH_estimator.json: wall-clock
# plus each path's peak buffered observations. The two paths are asserted
# output-identical by the benchmark binary itself (and pinned independently
# by tests/epoch_streaming_differential.rs).
#
# Usage: scripts/estimator_bench.sh [output.json]
# Knobs: RLIR_ESTBENCH_MS    (trace duration, default 40)
#        RLIR_ESTBENCH_REPS  (best-of, default 3)

set -euo pipefail
cd "$(dirname "$0")/.."

source scripts/bench_lib.sh
run_bench estimator_bench "${1:-BENCH_estimator.json}"
