//! Latency-anomaly localization: the operator workflow RLIR exists for.
//!
//! Injects a processing-delay fault at one core router of a k=4 fat-tree,
//! runs the RLIR measurement plane, and lets the segment-level localizer
//! point at the faulty hop — at the localization granularity the partial
//! deployment affords (upgraded-router to upgraded-router segments).
//!
//! ```sh
//! cargo run --release --example localize_anomaly
//! ```

use rlir::experiment::{run_fattree, CoreAnomaly, FatTreeExpConfig};
use rlir::localization::{localize, LocalizerConfig};
use rlir_net::time::SimDuration;
use rlir_topo::FatTree;

fn main() {
    let mut cfg = FatTreeExpConfig::paper(21, SimDuration::from_millis(30));
    let faulty_ordinal = 2;
    cfg.anomaly = Some(CoreAnomaly {
        core_ordinal: faulty_ordinal,
        extra_processing: SimDuration::from_micros(350),
    });

    let tree = FatTree::new(cfg.k, cfg.hash);
    let faulty = tree
        .node(tree.cores().nth(faulty_ordinal).expect("core exists"))
        .name
        .clone();
    println!(
        "injected fault: +350 µs processing delay at core {faulty} (operator does not know this)\n"
    );

    let out = run_fattree(&cfg);

    println!("segment observations from the RLIR measurement plane:");
    for s in &out.segments {
        println!(
            "  {:<18} est {:>8.1} µs   ({} packets)",
            s.name,
            s.est_mean_ns / 1e3,
            s.packets
        );
    }

    let findings = localize(&out.segments, &LocalizerConfig::default());
    println!();
    if findings.is_empty() {
        println!("no anomaly detected — increase the trace duration or fault size");
        std::process::exit(1);
    }
    for f in &findings {
        println!(
            "ANOMALY: segment {} is {:.1}x slower than the fleet median",
            f.name, f.severity
        );
    }
    let top = &findings[0];
    let correct = top.name.starts_with(&faulty);
    println!(
        "\nlocalization verdict: {} (top finding {} vs injected {})",
        if correct { "CORRECT" } else { "WRONG" },
        top.name,
        faulty
    );
    std::process::exit(if correct { 0 } else { 1 });
}
