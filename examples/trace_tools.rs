//! Workload tooling: generate, persist, reload, divide and meter traces.
//!
//! Demonstrates the substrate that replaces the paper's CAIDA traces and
//! YAF toolchain: the synthetic generator with the paper's two trace
//! presets, the binary trace format, the traffic divider from Fig. 3, the
//! NetFlow-style flow meter, and the Multiflow baseline estimator built on
//! its records.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use rlir_baselines::estimate_all;
use rlir_net::time::{SimDuration, SimTime};
use rlir_trace::{
    generate, io, FlowMeter, FlowMeterConfig, TraceConfig, TraceStats, TrafficClass,
    TrafficDivider, UnmatchedPolicy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let duration = SimDuration::from_millis(40);

    // 1. Generate the paper's two traces (regular ≈22% and cross ≈71% of an
    //    OC-192 link), scaled to 40 ms.
    let regular = generate(&TraceConfig::paper_regular(1, duration));
    let cross = generate(&TraceConfig::paper_cross(1, duration));
    println!("regular trace: {}", TraceStats::compute(&regular));
    println!("cross   trace: {}", TraceStats::compute(&cross));

    // 2. Persist and reload through the binary trace format.
    let dir = std::env::temp_dir().join("rlir-example-traces");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("regular.rltr");
    io::save_trace(&regular, &path)?;
    let reloaded = io::load_trace(&path)?;
    println!(
        "\nsaved + reloaded {} packets via {} ({} bytes on disk)",
        reloaded.packets.len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );
    assert_eq!(reloaded.packets, regular.packets);

    // 3. Divide a merged stream back into classes by source prefix (Fig. 3's
    //    traffic divider).
    let merged = rlir_trace::merge(&regular, &cross);
    let mut divider = TrafficDivider::new(
        &[
            ("10.1.0.0/16".parse()?, TrafficClass::Regular),
            ("172.16.0.0/14".parse()?, TrafficClass::Cross),
        ],
        UnmatchedPolicy::Drop,
    );
    let divided = divider.divide_all(merged.packets.iter().copied());
    let regulars = divided.iter().filter(|p| p.is_regular()).count();
    let crosses = divided.iter().filter(|p| p.is_cross()).count();
    println!(
        "\ntraffic divider: {} packets in → {} regular + {} cross ({} unmatched dropped)",
        merged.packets.len(),
        regulars,
        crosses,
        divider.dropped()
    );

    // 4. Meter the regular trace YAF-style and run the Multiflow baseline
    //    against a copy of the stream shifted by a constant 12 µs "path".
    let mut upstream = FlowMeter::new(FlowMeterConfig::default());
    let mut downstream = FlowMeter::new(FlowMeterConfig::default());
    let path_delay = SimDuration::from_micros(12);
    for p in &regular.packets {
        upstream.observe(p);
        downstream.observe_at(p.flow, p.created_at + path_delay, p.size);
    }
    let up_records = upstream.finish();
    let down_records = downstream.finish();
    println!(
        "\nflow meter: {} NetFlow records from {} packets",
        up_records.len(),
        regular.packets.len()
    );
    let estimates = estimate_all(&up_records, &down_records);
    let exact = estimates
        .iter()
        .filter(|e| (e.mean_delay_ns - path_delay.as_nanos() as f64).abs() < 1.0)
        .count();
    println!(
        "multiflow baseline: {} per-flow estimates, {} exactly recover the 12 µs constant path delay",
        estimates.len(),
        exact
    );

    // 5. Show a couple of records.
    println!("\nfirst three flow records:");
    for r in up_records.iter().take(3) {
        println!(
            "  {} : {} pkts, {} B, {} → {}",
            r.key,
            r.packets,
            r.bytes,
            r.first,
            SimTime::from_nanos(r.last.as_nanos())
        );
    }
    Ok(())
}
