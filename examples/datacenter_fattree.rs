//! RLIR on a k=4 fat-tree: the paper's §3 architecture end-to-end.
//!
//! Deploys measurement instances at ToR uplinks and core routers only
//! ("every other switch"), engineers reference streams onto every ECMP
//! path, and demultiplexes regular packets at the receivers with
//! reverse-ECMP computation. Prints segment-level latency estimates and the
//! association accuracy, and contrasts them with the naive (no-demux)
//! configuration the paper warns about.
//!
//! ```sh
//! cargo run --release --example datacenter_fattree
//! ```

use rlir::experiment::{run_fattree, FatTreeExpConfig};
use rlir::CoreDemux;
use rlir_net::time::SimDuration;
use rlir_stats::Ecdf;

fn median(xs: &[f64]) -> f64 {
    Ecdf::new(xs.iter().copied().filter(|x| x.is_finite()).collect())
        .median()
        .unwrap_or(f64::NAN)
}

fn main() {
    let mut cfg = FatTreeExpConfig::paper(7, SimDuration::from_millis(30));
    cfg.demux = CoreDemux::ReverseEcmp;

    println!(
        "k={} fat-tree | {} measured source ToRs → 1 destination ToR | demux: reverse ECMP",
        cfg.k, cfg.n_src_tors
    );
    let out = run_fattree(&cfg);

    println!(
        "\nmeasured packets delivered: {}   references: {} (ToR) + {} (core)",
        out.measured_delivered, out.refs_emitted.0, out.refs_emitted.1
    );
    println!(
        "downstream association: {}/{} correct ({:.1}%)",
        out.demux_correct,
        out.demux_total,
        out.demux_accuracy() * 100.0
    );

    println!("\nper-segment latency (estimated vs true):");
    for s in &out.segments {
        println!(
            "  {:<18} est {:>8.1} µs   true {:>8.1} µs   ({} packets)",
            s.name,
            s.est_mean_ns / 1e3,
            s.true_mean_ns / 1e3,
            s.packets
        );
    }

    println!(
        "\nper-flow median relative error: segment-1 {:.2}%  segment-2 {:.2}%",
        median(&out.seg1_errors) * 100.0,
        median(&out.seg2_errors) * 100.0
    );

    // Contrast with the naive configuration (plain RLI across routers).
    let mut naive_cfg = cfg.clone();
    naive_cfg.demux = CoreDemux::Naive;
    // Heterogeneous path delays are what makes association matter; slow one
    // core slightly so the equal-cost paths genuinely differ.
    naive_cfg.anomaly = Some(rlir::experiment::CoreAnomaly {
        core_ordinal: 0,
        extra_processing: SimDuration::from_micros(150),
    });
    let mut demux_cfg = naive_cfg.clone();
    demux_cfg.demux = CoreDemux::ReverseEcmp;
    let naive = run_fattree(&naive_cfg);
    let demuxed = run_fattree(&demux_cfg);
    println!(
        "\nwith one slowed core (why demultiplexing matters, §3.1):\n  naive RLI-across-routers seg-2 median error: {:.1}%\n  RLIR reverse-ECMP demux  seg-2 median error: {:.1}%",
        median(&naive.seg2_errors) * 100.0,
        median(&demuxed.seg2_errors) * 100.0
    );
}
