//! Quickstart: measure per-flow latency across two switches with RLI.
//!
//! Builds the paper's Fig. 3 environment — regular traffic through two
//! switches, cross traffic at the bottleneck, an RLI sender/receiver pair —
//! runs it, and prints per-flow latency estimates against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rlir::experiment::{run_two_hop, CrossSpec, TwoHopConfig};
use rlir_net::time::SimDuration;
use rlir_rli::PolicyKind;
use rlir_stats::ErrorSummary;

fn main() {
    // 50 ms of synthetic OC-192 traffic; static 1-and-100 injection (the
    // paper's worst-case-safe RLIR setting); random cross traffic pushing
    // the bottleneck to 93% utilization.
    let mut cfg = TwoHopConfig::paper(42, SimDuration::from_millis(50));
    cfg.policy = PolicyKind::Static { n: 100 };
    cfg.cross = CrossSpec::Uniform {
        target_utilization: 0.93,
    };

    println!("running the two-hop RLI pipeline …");
    let out = run_two_hop(&cfg);

    println!(
        "bottleneck utilization: {:.1}%   regular loss: {:.4}%   references sent: {}",
        out.utilization * 100.0,
        out.regular_loss * 100.0,
        out.refs_emitted
    );
    println!(
        "receiver: {} packets estimated across {} flows ({} unestimable)",
        out.receiver.estimated,
        out.flows.flow_count(),
        out.receiver.unestimated
    );

    // Show the ten busiest flows: estimated vs true mean latency.
    let mut rows = out.flows.report(1);
    rows.sort_by_key(|r| std::cmp::Reverse(r.packets));
    println!(
        "\n  {:<46} {:>6} {:>12} {:>12} {:>8}",
        "flow", "pkts", "est mean", "true mean", "err"
    );
    for r in rows.iter().take(10) {
        println!(
            "  {:<46} {:>6} {:>9.1} µs {:>9.1} µs {:>7.2}%",
            r.flow.to_string(),
            r.packets,
            r.est_mean / 1e3,
            r.true_mean.unwrap_or(f64::NAN) / 1e3,
            r.mean_rel_err.unwrap_or(f64::NAN) * 100.0
        );
    }

    if let Some(summary) = ErrorSummary::from_samples(&out.mean_errors) {
        println!("\nper-flow mean-latency error: {summary}");
        println!("(the paper reports ≈4.5% median relative error at 93% utilization)");
    }
}
