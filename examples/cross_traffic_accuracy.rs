//! Accuracy vs bottleneck utilization under cross traffic (§4.2 in brief).
//!
//! Sweeps the cross-traffic injector from light to saturating load and
//! prints how per-flow mean-latency accuracy and true delays evolve — the
//! single-table version of the trends behind Figs. 4(a) and 4(c).
//!
//! ```sh
//! cargo run --release --example cross_traffic_accuracy
//! ```

use rlir::experiment::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_net::time::SimDuration;
use rlir_rli::PolicyKind;
use rlir_stats::Ecdf;
use rlir_trace::generate;

fn main() {
    let duration = SimDuration::from_millis(40);
    let base = TwoHopConfig {
        policy: PolicyKind::Static { n: 100 },
        ..TwoHopConfig::paper(3, duration)
    };
    let regular = generate(&base.regular_trace());
    let cross = generate(&base.cross_trace());

    println!("static 1-and-100 injection, random cross traffic, 40 ms trace\n");
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>12} {:>10}",
        "target", "realised", "avg delay", "median err", "<10% err", "loss"
    );
    for target in [0.30, 0.50, 0.67, 0.80, 0.93] {
        let mut cfg = base.clone();
        cfg.cross = CrossSpec::Uniform {
            target_utilization: target,
        };
        let out = run_two_hop_on(&cfg, &regular, &cross);
        let e = Ecdf::new(
            out.mean_errors
                .iter()
                .copied()
                .filter(|x| x.is_finite())
                .collect(),
        );
        println!(
            "{:>7.0}% {:>9.1}% {:>11.1} µs {:>11.2}% {:>11.1}% {:>9.4}%",
            target * 100.0,
            out.utilization * 100.0,
            out.avg_true_delay_ns / 1e3,
            e.median().unwrap_or(f64::NAN) * 100.0,
            e.fraction_at_or_below(0.10) * 100.0,
            out.regular_loss * 100.0
        );
    }
    println!("\ntrend check (paper §4.2): higher utilization → larger true delays →");
    println!("smaller *relative* errors; low-utilization errors are large in relative");
    println!("terms but tiny in absolute terms (the 3 µs vs 83 µs effect).");
}
