//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the API subset this workspace uses — [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — on top of xoshiro256** seeded via SplitMix64.
//! Deterministic for a given seed, statistically solid for simulation use.
//! Not cryptographically secure (neither is the simulation use-case).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their "standard" domain (integers over
/// the full range, `f64`/`f32` over `[0, 1)`, `bool` fair).
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit: f64 = StandardUniform::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        let unit: f64 = StandardUniform::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) by widening multiply, which
/// avoids the modulo bias without a rejection loop for spans ≪ 2^64.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of `T` over its standard domain.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value within `range`.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = StandardUniform::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna),
    /// state expanded from the seed with SplitMix64 as its authors
    /// recommend. Deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = StdRng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.random_range(3u8..=5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
            let w = r.random_range(10u32..13);
            assert!((10..13).contains(&w));
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(saw_lo && saw_hi, "inclusive bounds unreachable");
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
    }
}
