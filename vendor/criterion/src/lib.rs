//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`] and [`BatchSize`] — as a real
//! wall-clock harness: each benchmark is warmed up, calibrated to a time
//! budget, and reported as median ns/iter (plus derived throughput).
//!
//! Machine-readable output: when the `CRITERION_JSON` environment variable
//! names a file, one JSON object per benchmark is appended to it
//! (`{"group":…,"bench":…,"ns_per_iter":…,"elems_per_sec":…}`), which is
//! what `scripts/bench.sh` consumes to build `BENCH_pipeline.json`.
//!
//! Tuning knobs (environment): `CRITERION_BUDGET_MS` — measurement budget
//! per benchmark (default 300 ms); the first CLI argument that is not a
//! flag is a substring filter on `group/bench` names, mirroring
//! `cargo bench -- <filter>`.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stub times each
/// batch individually so the hint only documents intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per measurement.
    SmallInput,
    /// Large setup output; one per measurement.
    LargeInput,
    /// Exactly one setup call per routine call.
    PerIteration,
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        let budget_ms: u64 = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            filter,
            budget: Duration::from_millis(budget_ms),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
            budget_override: None,
        }
    }

    /// Does the CLI filter admit benchmarks under `name`? Real criterion
    /// applies its filter internally; expensive bench setup can consult
    /// this to skip generating inputs for filtered-out groups.
    pub fn filter_matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Bench a standalone function (ungrouped).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        self.benchmark_group("").bench_function(id, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget_override: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of samples collected per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Override the measurement budget for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget_override = Some(d);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Calibration: run single iterations until we know roughly how long
        // one takes, then size samples to fit the budget.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.budget_override.unwrap_or(self.criterion.budget);
        let samples = self.sample_size;
        let per_sample = budget / samples as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut ns_per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            ns_per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = ns_per_iter[ns_per_iter.len() / 2];

        let mut line = format!("bench {full:<40} {median:>12.1} ns/iter");
        let mut elems_per_sec = None;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / median;
                elems_per_sec = Some(rate);
                let _ = write!(line, "  {:>14.0} elem/s", rate);
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / median;
                let _ = write!(line, "  {:>14.0} B/s", rate);
            }
            None => {}
        }
        println!("{line}");

        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut fh) = OpenOptions::new().create(true).append(true).open(path) {
                let eps = elems_per_sec
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_else(|| "null".to_string());
                let _ = writeln!(
                    fh,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"elems_per_sec\":{}}}",
                    self.name, id, median, eps
                );
            }
        }
    }

    /// Finish the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; routines run inside [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed fresh input from `setup` each iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declare a bench group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main` from group names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
