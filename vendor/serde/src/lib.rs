//! Offline stand-in for `serde`.
//!
//! The container cannot reach a cargo registry, so this crate keeps the
//! workspace compiling without the real serde: [`Serialize`] and
//! [`Deserialize`] are marker traits with blanket implementations, and the
//! derive macros (re-exported from the local `serde_derive` stub) expand to
//! nothing. No code in this repository performs actual serde
//! serialization — structured outputs are written by hand (CSV/JSON
//! emitters in `rlir-bench`) — so the markers are sufficient. Replacing
//! this stub with real serde is a manifest-only change.

/// Marker for serializable types. Blanket-implemented for everything.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented for everything.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` with the owned-deserialization marker.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

// Derive macros live in the macro namespace, the traits above in the type
// namespace, so the same names coexist exactly like in real serde.
pub use serde_derive::{Deserialize, Serialize};
