//! Offline stand-in for `bytes`.
//!
//! `Vec<u8>`-backed [`Bytes`]/[`BytesMut`] plus the [`Buf`]/[`BufMut`]
//! method subset the wire codecs use (big-endian puts/gets, slice
//! append/advance). No refcounted zero-copy splitting — the RLIR wire path
//! encodes whole packets into freshly sized buffers, so nothing here needs
//! it.

use core::ops::{Deref, DerefMut};

/// Immutable byte buffer (always uniquely owned in this stub).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Drop the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over bytes; every `get_*` consumes from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes. Panics if fewer remain.
    fn advance(&mut self, n: usize);

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_puts_and_gets() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_consumes_front() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.chunk(), &[3, 4]);
        assert_eq!(cur.get_u16(), 0x0304);
    }
}
