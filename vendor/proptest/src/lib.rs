//! Offline stand-in for `proptest`.
//!
//! A deterministic randomized property-test runner implementing the subset
//! this workspace uses: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`, [`any`], range strategies, tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`] over same-typed arms, and
//! [`collection::vec`]. Failing inputs are reported (seed + rendered
//! message) but **not shrunk** — rerun with the printed case seed to
//! reproduce. Case count defaults to 64; set `PROPTEST_CASES` to override.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error raised inside a property body.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed with this rendered message.
    Fail(String),
    /// A `prop_assume!` rejected the generated input; the case is skipped.
    Reject,
}

/// Deterministic per-case RNG handling for the [`proptest!`] runner.
pub mod test_runner {
    use super::*;

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// FNV-1a over the property's identifying string, mixed with the case
    /// index — every (property, case) pair gets an independent stream.
    pub fn rng_for_case(ident: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in ident.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with a pure function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Full-domain generation for primitives (backs [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// Strategy wrapper for [`Arbitrary`] types.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Full-domain strategy for a primitive type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError,
    };
}

/// Declare property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]`-able function running [`test_runner::case_count`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let ident = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cases {
                    let mut proptest_rng = $crate::test_runner::rng_for_case(ident, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat), &mut proptest_rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {ident} failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(
                format!("{:?} != {:?} ({} vs {})",
                        l, r, stringify!($left), stringify!($right))));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "{:?} == {:?} ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Skip cases whose generated inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u8..=9, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn map_and_tuple_compose(pair in (1u32..10, 1u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..19).contains(&pair));
        }

        #[test]
        fn oneof_selects_every_arm(v in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vec_lengths_in_range(xs in crate::collection::vec(any::<u16>(), 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (1u32..100, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case("d", c);
                crate::strategy::Strategy::generate(&s, &mut rng)
            })
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case("d", c);
                crate::strategy::Strategy::generate(&s, &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
