//! Offline stand-in for `proptest`.
//!
//! A deterministic randomized property-test runner implementing the subset
//! this workspace uses: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`, [`any`], range strategies, tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`] over same-typed arms, and
//! [`collection::vec`]. Failing inputs are **minimally shrunk**: integers
//! halve toward their range start (or zero), sequences truncate, tuples
//! shrink component-wise — candidates are accepted while the failure
//! persists and abandoned the moment it disappears (no backtracking), then
//! the smallest still-failing input is reported alongside the case seed.
//! `prop_map` and `prop_oneof!` outputs do not shrink (the mapping is not
//! invertible). Case count defaults to 64; set `PROPTEST_CASES` to
//! override.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error raised inside a property body.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed with this rendered message.
    Fail(String),
    /// A `prop_assume!` rejected the generated input; the case is skipped.
    Reject,
}

/// Deterministic per-case RNG handling for the [`proptest!`] runner.
pub mod test_runner {
    use super::*;

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// FNV-1a over the property's identifying string, mixed with the case
    /// index — every (property, case) pair gets an independent stream.
    pub fn rng_for_case(ident: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in ident.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Upper bound on accepted shrink steps (each step re-runs the body, so
    /// this also bounds shrinking time on pathological chains).
    pub const MAX_SHRINK_STEPS: usize = 1024;

    /// Run one property end to end: [`case_count`] deterministic cases,
    /// each generated from its own [`rng_for_case`] stream; on failure the
    /// input is minimised via [`shrink_failure`] before the panic reports
    /// the smallest still-failing input. Backs the [`crate::proptest!`]
    /// macro (which passes all arguments as one tuple strategy).
    pub fn run_property<S>(
        ident: &str,
        strat: S,
        run: impl Fn(&S::Value) -> Result<(), TestCaseError>,
    ) where
        S: crate::strategy::Strategy,
        S::Value: core::fmt::Debug,
    {
        for case in 0..case_count() {
            let mut rng = rng_for_case(ident, case);
            let values = crate::strategy::Strategy::generate(&strat, &mut rng);
            match run(&values) {
                Ok(()) => {}
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    let (min_values, min_msg, steps) =
                        shrink_failure(&strat, values, msg, |v| run(v));
                    panic!(
                        "property {ident} failed at case {case}: {min_msg}\n\
                         (shrunk {steps} step(s); minimal input: {min_values:?})"
                    );
                }
            }
        }
    }

    /// Greedily minimise a failing input: repeatedly ask the strategy for
    /// smaller candidates (halved integers, truncated sequences) and accept
    /// the first candidate on which the failure persists; stop when every
    /// candidate passes (the failure disappeared) or no candidates remain.
    /// Returns the smallest still-failing value, its failure message, and
    /// the number of accepted shrink steps.
    pub fn shrink_failure<S: crate::strategy::Strategy>(
        strat: &S,
        mut value: S::Value,
        mut message: String,
        mut run: impl FnMut(&S::Value) -> Result<(), TestCaseError>,
    ) -> (S::Value, String, usize) {
        let mut steps = 0usize;
        'shrinking: while steps < MAX_SHRINK_STEPS {
            for candidate in strat.shrink(&value) {
                if let Err(TestCaseError::Fail(msg)) = run(&candidate) {
                    value = candidate;
                    message = msg;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }
        (value, message, steps)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Smaller candidates derived from a failing `value`, most
        /// aggressive first (range start before midpoint, empty before
        /// half-length). The runner accepts a candidate only while the
        /// failure persists. Default: no candidates (unshrinkable).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Transform generated values with a pure function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<S>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Full-domain generation for primitives (backs [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's whole domain.
        fn arbitrary(rng: &mut StdRng) -> Self;

        /// Smaller candidates for a failing value (default: none).
        fn shrink(value: &Self) -> Vec<Self> {
            let _ = value;
            Vec::new()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }

                fn shrink(value: &Self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *value != 0 {
                        out.push(0);
                        let half = *value / 2;
                        if half != 0 && half != *value {
                            out.push(half);
                        }
                    }
                    out
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random()
        }

        fn shrink(value: &Self) -> Vec<Self> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    macro_rules! impl_arbitrary_float {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }

                fn shrink(value: &Self) -> Vec<Self> {
                    let mut out = Vec::new();
                    if *value != 0.0 && value.is_finite() {
                        out.push(0.0);
                        let half = *value / 2.0;
                        if half != 0.0 && half != *value {
                            out.push(half);
                        }
                    }
                    out
                }
            }
        )*};
    }
    impl_arbitrary_float!(f64, f32);

    /// Strategy wrapper for [`Arbitrary`] types.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink(value)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(self.start, *value)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink_candidates(*self.start(), *value)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Halving candidates toward the range start: `[start, midpoint]`.
    fn int_shrink_candidates<T>(start: T, value: T) -> Vec<T>
    where
        T: Copy + PartialEq + IntHalf,
    {
        let mut out = Vec::new();
        if value != start {
            out.push(start);
            if let Some(mid) = T::midpoint_toward(start, value) {
                if mid != start && mid != value {
                    out.push(mid);
                }
            }
        }
        out
    }

    /// Overflow-safe `start + (value - start) / 2` per integer type.
    pub trait IntHalf: Sized {
        /// The point halfway from `start` to `value` (`None` on overflow).
        fn midpoint_toward(start: Self, value: Self) -> Option<Self>;
    }

    macro_rules! impl_int_half {
        ($($t:ty),*) => {$(
            impl IntHalf for $t {
                fn midpoint_toward(start: Self, value: Self) -> Option<Self> {
                    value.checked_sub(start).map(|d| start + d / 2)
                }
            }
        )*};
    }
    impl_int_half!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let start = self.start;
                    let mut out = Vec::new();
                    if *value != start {
                        out.push(start);
                        let mid = start + (*value - start) / 2.0;
                        if mid.is_finite() && mid != start && mid != *value {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let start = *self.start();
                    let mut out = Vec::new();
                    if *value != start {
                        out.push(start);
                        let mid = start + (*value - start) / 2.0;
                        if mid.is_finite() && mid != start && mid != *value {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
        )*};
    }
    impl_range_strategy_float!(f64);

    macro_rules! impl_tuple_strategy {
        ($(($name:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                /// Component-wise: every candidate changes exactly one
                /// component, earlier components first.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out: Vec<Self::Value> = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_tuple_strategy!((A, 0));
    impl_tuple_strategy!((A, 0), (B, 1));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        /// Truncation candidates: the minimum length first, then half the
        /// current length (element values are not shrunk).
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.size.start;
            let mut out = Vec::new();
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = value.len() / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
            }
            out
        }
    }
}

/// Full-domain strategy for a primitive type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError,
    };
}

/// Declare property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]`-able function running [`test_runner::case_count`]
/// deterministic cases. On failure the inputs are minimally shrunk
/// ([`test_runner::shrink_failure`]) before the panic reports the smallest
/// still-failing input alongside the case number.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let ident = concat!(module_path!(), "::", stringify!($name));
                // All arguments form one tuple strategy; generation order
                // (and thus the value stream per case seed) matches the
                // historical per-argument order.
                $crate::test_runner::run_property(ident, ($($strat,)+), |values| {
                    let ($($arg,)+) = ::core::clone::Clone::clone(values);
                    (move || {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(
                format!("{:?} != {:?} ({} vs {})",
                        l, r, stringify!($left), stringify!($right))));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "{:?} == {:?} ({} vs {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

/// Skip cases whose generated inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among same-typed strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u8..=9, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn map_and_tuple_compose(pair in (1u32..10, 1u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..19).contains(&pair));
        }

        #[test]
        fn oneof_selects_every_arm(v in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vec_lengths_in_range(xs in crate::collection::vec(any::<u16>(), 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }
    }

    proptest! {
        /// A seeded failing case must shrink: every generated value in
        /// 200..10_000 fails the `< 100` assertion, and halving toward the
        /// range start (100) must walk the reported minimum down to exactly
        /// the boundary — asserted via the expected panic payload.
        #[test]
        #[should_panic(expected = "minimal input: (100,)")]
        fn shrinks_failing_case_to_the_boundary(x in 100u32..10_000) {
            prop_assert!(x < 100, "x = {} is not below 100", x);
        }
    }

    #[test]
    fn shrink_failure_halves_integers_until_failure_disappears() {
        // Fails iff x >= 17; halving from a large seed value must stop at a
        // small witness (the chain passes through values ≥ 17 only).
        let strat = (0u32..1000,);
        let fails = |v: &(u32,)| -> Result<(), crate::TestCaseError> {
            if v.0 >= 17 {
                Err(crate::TestCaseError::Fail(format!("{} >= 17", v.0)))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) =
            crate::test_runner::shrink_failure(&strat, (731,), "731 >= 17".into(), fails);
        assert!(min.0 >= 17, "shrunk value {} no longer fails", min.0);
        assert!(min.0 <= 34, "halving stalled at {}", min.0);
        assert!(steps > 0, "no shrink steps taken");
        assert!(msg.contains(">= 17"));
    }

    #[test]
    fn shrink_failure_truncates_sequences() {
        let strat = (crate::collection::vec(any::<u8>(), 0..64),);
        let fails = |v: &(Vec<u8>,)| -> Result<(), crate::TestCaseError> {
            if v.0.len() >= 3 {
                Err(crate::TestCaseError::Fail(format!("len {}", v.0.len())))
            } else {
                Ok(())
            }
        };
        let seed: Vec<u8> = (0..40).collect();
        let (min, _, steps) =
            crate::test_runner::shrink_failure(&strat, (seed,), "len 40".into(), fails);
        assert!(min.0.len() >= 3, "over-shrunk to {}", min.0.len());
        assert!(min.0.len() <= 5, "truncation stalled at {}", min.0.len());
        assert!(steps > 0);
    }

    #[test]
    fn shrink_respects_range_starts() {
        // Candidates never leave the declared range.
        let strat = 50u64..100;
        for cand in crate::strategy::Strategy::shrink(&strat, &99) {
            assert!((50..100).contains(&cand), "candidate {cand} out of range");
        }
        assert!(crate::strategy::Strategy::shrink(&strat, &50).is_empty());
    }

    #[test]
    fn tuple_shrink_changes_one_component_per_candidate() {
        let strat = (0u32..100, 0u32..100);
        let cands = crate::strategy::Strategy::shrink(&strat, &(80, 60));
        assert!(!cands.is_empty());
        for (a, b) in &cands {
            let changed = usize::from(*a != 80) + usize::from(*b != 60);
            assert_eq!(
                changed, 1,
                "candidate ({a}, {b}) changed {changed} components"
            );
        }
    }

    #[test]
    fn unshrinkable_strategies_yield_no_candidates() {
        use crate::strategy::{Just, Strategy};
        assert!(Just(42u8).shrink(&42).is_empty());
        let mapped = (0u32..10).prop_map(|x| x * 2);
        assert!(mapped.shrink(&6).is_empty());
    }

    #[test]
    fn deterministic_generation() {
        let s = (1u32..100, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case("d", c);
                crate::strategy::Strategy::generate(&s, &mut rng)
            })
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| {
                let mut rng = crate::test_runner::rng_for_case("d", c);
                crate::strategy::Strategy::generate(&s, &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
