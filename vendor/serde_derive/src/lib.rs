//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a no-op implementation: `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attributes parse and expand to nothing, and the matching
//! `serde` stub provides blanket trait impls so bounds stay satisfiable.
//! Swap both stubs for the real crates by editing `[patch]`-free path deps
//! in the root manifest once a registry is reachable.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` (and inert `#[serde(...)]` attributes) and
/// emit nothing; the `serde` stub's blanket impl covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` (and inert `#[serde(...)]` attributes)
/// and emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
