//! Partial-placement complexity (§3.1, "Partial Placement Complexity").
//!
//! The paper derives how many measurement instances RLIR needs on a k-ary
//! fat-tree at three deployment granularities, versus full RLI deployment:
//!
//! | granularity | instances |
//! |---|---|
//! | one ToR *interface* pair (e.g. S1→R3) | `k + 2` |
//! | one ToR *switch* pair (all uplink interfaces) | `k(k+2)/2` |
//! | every ToR pair (paper's expression) | `(k/2)²(k+1)` |
//! | full deployment | `O(k⁴)` |
//!
//! This module provides the closed-form expressions *and* brute-force
//! enumeration over a constructed [`FatTree`], so the formulas are verified
//! structurally rather than taken on faith. (For the "every ToR pair" row the
//! paper's prose — "k/2 ToR switches need to install k/2 measurement
//! instances" — undercounts ToR uplink interfaces relative to its own
//! single-pair accounting; we reproduce the paper's expression verbatim and
//! additionally report the structurally-derived count
//! [`enumerate_all_tor_pairs`].)

use crate::fattree::{FatTree, Role, TopoId};
use rlir_net::FlowKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// `k + 2`: instances to measure one specific ToR-uplink-interface pair.
///
/// Two instances (sender + receiver role) at each of the `k/2` cores
/// reachable from the fixed source uplink, plus one instance at each ToR
/// interface.
pub fn formula_interface_pair(k: usize) -> u64 {
    (k + 2) as u64
}

/// `k(k+2)/2`: instances to measure all interface pairs between two ToR
/// switches — two per core over all `(k/2)²` reachable cores plus `k/2`
/// uplink instances at each of the two ToRs.
pub fn formula_tor_pair(k: usize) -> u64 {
    (k * (k + 2) / 2) as u64
}

/// `(k/2)²(k+1)`: the paper's expression for measuring every pair of ToR
/// switches — `(k/2)²·k` instances across all core interfaces plus `(k/2)²`
/// at ToRs (as printed in §3.1).
pub fn formula_all_tor_pairs_paper(k: usize) -> u64 {
    let h = (k / 2) as u64;
    h * h * (k as u64 + 1)
}

/// Full-deployment instance count in the original RLI model: two instances
/// (one sender, one receiver) for each *ordered* pair of distinct interfaces
/// of every switch, which is the paper's `O(k⁴)` quantity.
pub fn formula_full_deployment(k: usize) -> u64 {
    let h = k / 2;
    let pair2 = |ports: usize| (ports * (ports - 1)) as u64; // 2·C(ports,2)
    let tor_ports = h + 1; // k/2 uplinks + host block
    let agg_ports = k;
    let core_ports = k;
    (k * h) as u64 * pair2(tor_ports)
        + (k * h) as u64 * pair2(agg_ports)
        + (h * h) as u64 * pair2(core_ports)
}

/// One RLIR deployment row for a given `k`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Fat-tree arity.
    pub k: usize,
    /// `k+2` (single interface pair).
    pub interface_pair: u64,
    /// `k(k+2)/2` (single ToR pair).
    pub tor_pair: u64,
    /// `(k/2)²(k+1)` (paper's all-ToR-pairs expression).
    pub all_tor_pairs_paper: u64,
    /// Structurally enumerated all-ToR-pairs count (cores fully instrumented
    /// + every ToR uplink interface).
    pub all_tor_pairs_enumerated: u64,
    /// Full RLI deployment (`O(k⁴)`).
    pub full_deployment: u64,
}

impl PlacementRow {
    /// Compute the row for arity `k`.
    pub fn for_k(k: usize) -> PlacementRow {
        let tree = FatTree::new(k, rlir_net::HashAlgo::default());
        PlacementRow {
            k,
            interface_pair: formula_interface_pair(k),
            tor_pair: formula_tor_pair(k),
            all_tor_pairs_paper: formula_all_tor_pairs_paper(k),
            all_tor_pairs_enumerated: enumerate_all_tor_pairs(&tree),
            full_deployment: formula_full_deployment(k),
        }
    }

    /// Reduction factor of RLIR (paper expression) vs full deployment.
    pub fn reduction(&self) -> f64 {
        self.full_deployment as f64 / self.all_tor_pairs_paper as f64
    }
}

/// The set of cores reachable from one specific uplink interface of
/// `src_tor` towards any other pod, found by sweeping flow keys. With the
/// source uplink fixed (i.e. the agg fixed) this is exactly the agg's `k/2`
/// core neighbours.
pub fn enumerate_cores_from_uplink(
    tree: &FatTree,
    src_tor: TopoId,
    uplink: usize,
) -> BTreeSet<TopoId> {
    let Role::Tor { pod, .. } = tree.node(src_tor).role else {
        panic!("not a ToR")
    };
    let agg = tree.agg(pod, uplink);
    tree.node(agg)
        .ports
        .iter()
        .filter_map(|p| match p {
            crate::fattree::PortTarget::Switch(s)
                if matches!(tree.node(*s).role, Role::Core { .. }) =>
            {
                Some(*s)
            }
            _ => None,
        })
        .collect()
}

/// Enumerate the instance count for a single interface pair, mirroring the
/// paper's accounting: 2 per reachable core + 1 per ToR interface.
pub fn enumerate_interface_pair(tree: &FatTree, src_tor: TopoId, uplink: usize) -> u64 {
    let cores = enumerate_cores_from_uplink(tree, src_tor, uplink);
    2 * cores.len() as u64 + 2
}

/// Enumerate the cores on actual ECMP paths between two ToRs in different
/// pods by sweeping many flow keys (uses the real routing, not structure).
pub fn enumerate_cores_between(
    tree: &FatTree,
    src_tor: TopoId,
    dst_tor: TopoId,
) -> BTreeSet<TopoId> {
    let mut cores = BTreeSet::new();
    let dst = tree.host_addr(dst_tor, 0);
    // Sweep source ports; the sweep is heuristic but with per-switch hashes
    // and enough keys it covers every equal-cost path.
    for h in 0..4u64 {
        let src = tree.host_addr(src_tor, h as usize);
        for sport in 0..512u16 {
            let f = FlowKey::tcp(src, 1024 + sport, dst, 80);
            if let Some(c) = tree.core_of_path(&f) {
                cores.insert(c);
            }
        }
    }
    cores
}

/// Enumerate the instance count for one ToR pair: 2 per core on any path +
/// one per uplink interface at each ToR.
pub fn enumerate_tor_pair(tree: &FatTree, src_tor: TopoId, dst_tor: TopoId) -> u64 {
    let cores = enumerate_cores_between(tree, src_tor, dst_tor);
    2 * cores.len() as u64 + 2 * tree.half() as u64
}

/// Structurally enumerate the "every ToR pair" deployment: every core
/// interface hosts an instance, and every ToR uplink interface hosts one.
pub fn enumerate_all_tor_pairs(tree: &FatTree) -> u64 {
    let core_ifaces: u64 = tree.cores().map(|c| tree.node(c).ports.len() as u64).sum();
    let tor_uplinks: u64 = tree.tors().map(|_| tree.half() as u64).sum();
    core_ifaces + tor_uplinks
}

/// The full §3.1 table for a range of arities.
pub fn placement_table(ks: &[usize]) -> Vec<PlacementRow> {
    ks.iter().map(|&k| PlacementRow::for_k(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::HashAlgo;

    #[test]
    fn formulas_match_paper_examples() {
        // §3.1 quotes k+2 for one interface pair and k(k+2)/2 for a ToR pair.
        assert_eq!(formula_interface_pair(4), 6);
        assert_eq!(formula_tor_pair(4), 12);
        assert_eq!(formula_all_tor_pairs_paper(4), 4 * 5);
        assert_eq!(formula_interface_pair(8), 10);
        assert_eq!(formula_tor_pair(8), 40);
        assert_eq!(formula_all_tor_pairs_paper(8), 16 * 9);
    }

    #[test]
    fn interface_pair_formula_verified_by_enumeration() {
        for k in [4usize, 6, 8] {
            let tree = FatTree::new(k, HashAlgo::default());
            let count = enumerate_interface_pair(&tree, tree.tor(0, 0), 0);
            assert_eq!(count, formula_interface_pair(k), "k={k}");
        }
    }

    #[test]
    fn cores_from_uplink_is_half_k() {
        for k in [4usize, 6, 8] {
            let tree = FatTree::new(k, HashAlgo::default());
            let cores = enumerate_cores_from_uplink(&tree, tree.tor(1, 0), 1);
            assert_eq!(cores.len(), k / 2, "k={k}");
            // All in the same group (group = uplink index).
            for c in cores {
                assert!(matches!(tree.node(c).role, Role::Core { group: 1, .. }));
            }
        }
    }

    #[test]
    fn tor_pair_formula_verified_by_enumeration() {
        for k in [4usize, 6] {
            let tree = FatTree::new(k, HashAlgo::Crc32 { seed: 3 });
            let (a, b) = (tree.tor(0, 0), tree.tor(k - 1, 0));
            let cores = enumerate_cores_between(&tree, a, b);
            assert_eq!(cores.len(), (k / 2) * (k / 2), "k={k}: {cores:?}");
            assert_eq!(enumerate_tor_pair(&tree, a, b), formula_tor_pair(k));
        }
    }

    #[test]
    fn all_tor_pairs_core_term_matches_paper() {
        // The paper's core term (k/2)²·k equals the enumerated core
        // interface count; the divergence is only in the ToR term.
        for k in [4usize, 6, 8] {
            let tree = FatTree::new(k, HashAlgo::default());
            let core_ifaces: u64 = tree.cores().map(|c| tree.node(c).ports.len() as u64).sum();
            let h = (k / 2) as u64;
            assert_eq!(core_ifaces, h * h * k as u64, "k={k}");
            // Enumerated total = paper core term + all ToR uplinks
            // (k·(k/2) ToR switches × k/2 uplinks each).
            assert_eq!(
                enumerate_all_tor_pairs(&tree),
                h * h * k as u64 + k as u64 * h * h,
            );
        }
    }

    #[test]
    fn full_deployment_dominates_and_scales_k4() {
        for k in [4usize, 8, 16] {
            let row = PlacementRow::for_k(k);
            assert!(row.full_deployment > row.all_tor_pairs_paper, "k={k}");
            assert!(row.reduction() > 1.0);
        }
        // Doubling k multiplies the full deployment by ~2⁴ asymptotically.
        let r16 = formula_full_deployment(16) as f64;
        let r32 = formula_full_deployment(32) as f64;
        assert!((r32 / r16) > 10.0 && (r32 / r16) < 20.0, "{}", r32 / r16);
    }

    #[test]
    fn table_has_monotone_counts() {
        let table = placement_table(&[4, 6, 8, 12, 16]);
        for w in table.windows(2) {
            assert!(w[0].interface_pair < w[1].interface_pair);
            assert!(w[0].tor_pair < w[1].tor_pair);
            assert!(w[0].full_deployment < w[1].full_deployment);
        }
    }
}
