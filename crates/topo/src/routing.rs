//! Forwarding and path computation on the fat-tree.
//!
//! Standard two-level ECMP routing:
//!
//! * **ToR**: deliver locally if the destination is in the ToR's host block,
//!   otherwise hash the 5-tuple over the `k/2` uplinks.
//! * **Aggregation**: route down to the destination ToR if the destination is
//!   in this pod, otherwise hash over the `k/2` core uplinks.
//! * **Core**: route down to the destination's pod (deterministic).
//!
//! The downward half of any path is fully determined by the destination
//! address; all path diversity comes from the two upward hash decisions —
//! exactly the structure RLIR's reverse-ECMP demultiplexer (§3.1) exploits.

use crate::fattree::{FatTree, Role, TopoId};
use rlir_net::FlowKey;
use serde::{Deserialize, Serialize};

/// A forwarding decision at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextHop {
    /// Forward out this port index (per the fat-tree port conventions).
    Port(usize),
    /// The destination host hangs off this ToR: deliver on the host port.
    HostPort(usize),
    /// The destination is not routable from here.
    Unroutable,
}

impl FatTree {
    /// The forwarding decision `node` makes for `flow`.
    pub fn next_hop(&self, node: TopoId, flow: &FlowKey) -> NextHop {
        let half = self.half();
        let Some(dst_tor) = self.tor_of_addr(flow.dst) else {
            return NextHop::Unroutable;
        };
        let dst_pod = self.pod_of_addr(flow.dst).expect("dst_tor implies dst_pod");
        let n = self.node(node);
        match n.role {
            Role::Tor { .. } => {
                if node == dst_tor {
                    NextHop::HostPort(half) // port k/2 is the host block
                } else {
                    NextHop::Port(n.hash.select(flow, half))
                }
            }
            Role::Agg { pod, .. } => {
                if pod == dst_pod {
                    // Downlink d connects to ToR (pod, d).
                    let Role::Tor { idx, .. } = self.node(dst_tor).role else {
                        unreachable!("tor_of_addr returns ToRs")
                    };
                    NextHop::Port(idx)
                } else {
                    NextHop::Port(half + n.hash.select(flow, half))
                }
            }
            Role::Core { .. } => NextHop::Port(dst_pod),
        }
    }

    /// The full switch path a packet with `flow` takes from its source ToR
    /// (derived from `flow.src`) to delivery, inclusive of both ToRs.
    /// Returns `None` if either endpoint is not a fat-tree address.
    pub fn path(&self, flow: &FlowKey) -> Option<Vec<TopoId>> {
        let src_tor = self.tor_of_addr(flow.src)?;
        self.tor_of_addr(flow.dst)?;
        let mut path = vec![src_tor];
        let mut here = src_tor;
        // A fat-tree path has at most 5 switches (ToR-Agg-Core-Agg-ToR);
        // budget a few extra iterations as a loop guard.
        for _ in 0..8 {
            match self.next_hop(here, flow) {
                NextHop::HostPort(_) => return Some(path),
                NextHop::Unroutable => return None,
                NextHop::Port(p) => {
                    let crate::fattree::PortTarget::Switch(next) = self.node(here).ports[p] else {
                        return Some(path); // host port reached
                    };
                    path.push(next);
                    here = next;
                }
            }
        }
        unreachable!("fat-tree routing loop for flow {flow}")
    }

    /// The core router (if any) on the path of `flow`. Intra-pod and
    /// intra-ToR flows use no core.
    pub fn core_of_path(&self, flow: &FlowKey) -> Option<TopoId> {
        self.path(flow)?
            .into_iter()
            .find(|&id| matches!(self.node(id).role, Role::Core { .. }))
    }

    /// Reverse-ECMP computation (§3.1): *without* tracing the packet, infer
    /// the upstream path — source ToR, chosen aggregation switch and chosen
    /// core — by re-evaluating the upstream switches' hash functions on the
    /// flow key, exactly as an RLIR receiver with access to the vendors' hash
    /// functions would. Returns `None` for non-fat-tree sources/destinations;
    /// the core entry is `None` for intra-pod flows.
    pub fn reverse_ecmp(&self, flow: &FlowKey) -> Option<ReversedPath> {
        let src_tor = self.tor_of_addr(flow.src)?;
        let dst_tor = self.tor_of_addr(flow.dst)?;
        if src_tor == dst_tor {
            return Some(ReversedPath {
                src_tor,
                agg: None,
                core: None,
            });
        }
        let (src_pod, _) = match self.node(src_tor).role {
            Role::Tor { pod, idx } => (pod, idx),
            _ => unreachable!("tor_of_addr returns ToRs"),
        };
        let dst_pod = self.pod_of_addr(flow.dst)?;
        // First upward choice: the source ToR's hash picks the agg.
        let up1 = self.node(src_tor).hash.select(flow, self.half());
        let agg = self.agg(src_pod, up1);
        if src_pod == dst_pod {
            return Some(ReversedPath {
                src_tor,
                agg: Some(agg),
                core: None,
            });
        }
        // Second upward choice: that agg's hash picks the core member.
        let up2 = self.node(agg).hash.select(flow, self.half());
        let core = self.core(up1, up2);
        Some(ReversedPath {
            src_tor,
            agg: Some(agg),
            core: Some(core),
        })
    }
}

/// Result of [`FatTree::reverse_ecmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReversedPath {
    /// The origin ToR (from the source prefix).
    pub src_tor: TopoId,
    /// The aggregation switch chosen by the ToR's hash (`None` if the flow
    /// never leaves its ToR).
    pub agg: Option<TopoId>,
    /// The core chosen by the aggregation switch's hash (`None` for
    /// intra-pod flows).
    pub core: Option<TopoId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::hash::HashAlgo;
    use std::net::Ipv4Addr;

    fn tree() -> FatTree {
        FatTree::new(4, HashAlgo::default())
    }

    fn flow(
        t: &FatTree,
        sp: (usize, usize, usize),
        dp: (usize, usize, usize),
        port: u16,
    ) -> FlowKey {
        FlowKey::tcp(
            t.host_addr(t.tor(sp.0, sp.1), sp.2),
            10_000 + port,
            t.host_addr(t.tor(dp.0, dp.1), dp.2),
            80,
        )
    }

    #[test]
    fn interpod_path_shape() {
        let t = tree();
        let f = flow(&t, (0, 0, 0), (3, 1, 0), 1);
        let path = t.path(&f).unwrap();
        assert_eq!(path.len(), 5, "ToR-Agg-Core-Agg-ToR, got {path:?}");
        assert!(matches!(t.node(path[0]).role, Role::Tor { pod: 0, .. }));
        assert!(matches!(t.node(path[1]).role, Role::Agg { pod: 0, .. }));
        assert!(matches!(t.node(path[2]).role, Role::Core { .. }));
        assert!(matches!(t.node(path[3]).role, Role::Agg { pod: 3, .. }));
        assert_eq!(path[4], t.tor(3, 1));
    }

    #[test]
    fn intrapod_path_shape() {
        let t = tree();
        let f = flow(&t, (1, 0, 0), (1, 1, 0), 2);
        let path = t.path(&f).unwrap();
        assert_eq!(path.len(), 3, "ToR-Agg-ToR, got {path:?}");
        assert!(matches!(t.node(path[1]).role, Role::Agg { pod: 1, .. }));
        assert!(t.core_of_path(&f).is_none());
    }

    #[test]
    fn same_tor_path_is_single_switch() {
        let t = tree();
        let f = flow(&t, (2, 1, 0), (2, 1, 1), 3);
        assert_eq!(t.path(&f).unwrap(), vec![t.tor(2, 1)]);
    }

    #[test]
    fn unroutable_addresses() {
        let t = tree();
        // Non-fat-tree source: forwarding still works (it keys on the
        // destination), but path computation cannot find the entry ToR.
        let f = FlowKey::tcp(
            Ipv4Addr::new(192, 168, 0, 1),
            1,
            t.host_addr(t.tor(0, 0), 0),
            80,
        );
        assert!(t.path(&f).is_none());
        assert!(t.reverse_ecmp(&f).is_none());
        // Non-fat-tree destination: no route at any switch.
        let f = FlowKey::tcp(
            t.host_addr(t.tor(0, 0), 0),
            1,
            Ipv4Addr::new(192, 168, 0, 1),
            80,
        );
        assert_eq!(t.next_hop(t.tor(0, 0), &f), NextHop::Unroutable);
        assert!(t.path(&f).is_none());
    }

    #[test]
    fn ecmp_spreads_flows_over_cores() {
        let t = tree();
        let mut seen = std::collections::HashSet::new();
        for i in 0..200u16 {
            let f = flow(&t, (0, 0, 0), (3, 1, 0), i);
            if let Some(core) = t.core_of_path(&f) {
                seen.insert(core);
            }
        }
        // k=4 has 4 cores; varied ports should reach all of them.
        assert_eq!(seen.len(), 4, "cores used: {seen:?}");
    }

    #[test]
    fn routing_is_flow_deterministic() {
        let t = tree();
        let f = flow(&t, (0, 1, 0), (2, 0, 1), 9);
        assert_eq!(t.path(&f), t.path(&f));
    }

    #[test]
    fn reverse_ecmp_matches_forward_path() {
        let t = FatTree::new(6, HashAlgo::Crc32 { seed: 77 });
        let mut inter = 0;
        for sp in 0..6usize {
            for dp in 0..6usize {
                for port in 0..20u16 {
                    let f = flow(&t, (sp, sp % 3, 0), (dp, (dp + 1) % 3, 1), port);
                    let fwd = t.path(&f).unwrap();
                    let rev = t.reverse_ecmp(&f).unwrap();
                    assert_eq!(rev.src_tor, fwd[0]);
                    let fwd_agg = fwd
                        .iter()
                        .copied()
                        .find(|&n| matches!(t.node(n).role, Role::Agg { .. }));
                    let fwd_core = fwd
                        .iter()
                        .copied()
                        .find(|&n| matches!(t.node(n).role, Role::Core { .. }));
                    // The *first* agg on the path is the upward choice.
                    if fwd.len() >= 3 {
                        assert_eq!(rev.agg, Some(fwd[1]), "flow {f}");
                    } else {
                        assert_eq!(rev.agg.is_some(), fwd_agg.is_some());
                    }
                    assert_eq!(rev.core, fwd_core, "flow {f}");
                    if fwd_core.is_some() {
                        inter += 1;
                    }
                }
            }
        }
        assert!(inter > 100, "expected many inter-pod flows, got {inter}");
    }

    #[test]
    fn core_choice_depends_on_both_hashes() {
        // With distinct per-switch hashes, two flows that agree on the ToR
        // choice can still diverge at the agg. Just assert both decisions
        // are exercised across a key sweep.
        let t = tree();
        let mut aggs = std::collections::HashSet::new();
        for i in 0..100u16 {
            let f = flow(&t, (0, 0, 0), (2, 0, 0), i);
            let rev = t.reverse_ecmp(&f).unwrap();
            aggs.insert(rev.agg.unwrap());
        }
        assert_eq!(aggs.len(), 2, "both pod-0 aggs should be used");
    }

    #[test]
    fn next_hop_downward_is_deterministic() {
        let t = tree();
        let f = flow(&t, (0, 0, 0), (3, 1, 0), 4);
        // Core must always route to pod 3.
        for g in 0..2 {
            for m in 0..2 {
                match t.next_hop(t.core(g, m), &f) {
                    NextHop::Port(p) => assert_eq!(p, 3),
                    other => panic!("core gave {other:?}"),
                }
            }
        }
        // Pod-3 aggs must route down to ToR index 1 (port 1).
        for i in 0..2 {
            match t.next_hop(t.agg(3, i), &f) {
                NextHop::Port(p) => assert_eq!(p, 1),
                other => panic!("agg gave {other:?}"),
            }
        }
        // Destination ToR delivers on the host port (index k/2 = 2).
        assert_eq!(t.next_hop(t.tor(3, 1), &f), NextHop::HostPort(2));
    }
}
