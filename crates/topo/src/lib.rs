//! # rlir-topo — fat-tree topology and routing
//!
//! The data center fabric of the paper's Fig. 1 and the machinery RLIR's
//! demultiplexers depend on:
//!
//! * [`fattree`] — k-ary fat-tree construction with Al-Fares addressing
//!   (`10.pod.tor.0/24` host blocks) and per-switch ECMP hash functions.
//! * [`routing`] — two-level ECMP forwarding, full path computation, and the
//!   **reverse-ECMP computation** of §3.1 (re-evaluating upstream hash
//!   functions at the receiver to identify the traversed core).
//! * [`placement`] — the §3.1 partial-placement complexity formulas plus
//!   brute-force verification against the constructed topology.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fattree;
pub mod placement;
pub mod routing;

pub use fattree::{FatTree, PortTarget, Role, TopoId, TopoNode};
pub use placement::{placement_table, PlacementRow};
pub use routing::{NextHop, ReversedPath};
