//! k-ary fat-tree construction.
//!
//! The paper's Fig. 1 shows the classic three-tier fat-tree data center: ToR
//! switches (T1…T8), aggregation/"edge" switches (E1…E8) and core routers
//! (C1…C4) — a k=4 instance of the k-ary fat-tree. This module builds the
//! graph for any even `k ≥ 2`:
//!
//! * `k` pods, each with `k/2` ToR and `k/2` aggregation switches;
//! * `(k/2)²` cores, where core `(g, j)` (group `g`, member `j`) connects to
//!   aggregation switch `g` of every pod;
//! * each ToR owns a `/24` host block, addressed Al-Fares style:
//!   `10.pod.tor.0/24` with hosts at `.2+`.
//!
//! Every switch carries its own (deterministically reseeded) ECMP hash — the
//! ingredient RLIR's reverse-ECMP demultiplexer relies on.

use rlir_net::hash::HashAlgo;
use rlir_net::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Index of a switch within a [`FatTree`].
pub type TopoId = usize;

/// What a switch port connects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortTarget {
    /// Another switch.
    Switch(TopoId),
    /// The switch's attached host block (ToR downlink).
    Hosts,
}

/// Role of a switch in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Top-of-rack switch `i` in pod `p`.
    Tor {
        /// Pod index (0-based).
        pod: usize,
        /// ToR index within the pod.
        idx: usize,
    },
    /// Aggregation ("edge" in the paper's Fig. 1) switch `i` in pod `p`.
    Agg {
        /// Pod index.
        pod: usize,
        /// Aggregation index within the pod.
        idx: usize,
    },
    /// Core router in group `group` (connecting to aggregation switch
    /// `group` of each pod), member `member` of that group.
    Core {
        /// Which aggregation index this core's group serves.
        group: usize,
        /// Member within the group.
        member: usize,
    },
}

/// One switch of the fat-tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoNode {
    /// Printable name (`T[p.i]`, `E[p.i]`, `C[g.j]`).
    pub name: String,
    /// Structural role.
    pub role: Role,
    /// This switch's ECMP hash function.
    pub hash: HashAlgo,
    /// Ports in the fixed conventional order (see crate docs).
    pub ports: Vec<PortTarget>,
}

/// A complete k-ary fat-tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTree {
    k: usize,
    nodes: Vec<TopoNode>,
}

impl FatTree {
    /// Build a k-ary fat-tree. `k` must be even and at least 2. Per-switch
    /// hashes are derived deterministically from `base_hash`.
    pub fn new(k: usize, base_hash: HashAlgo) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even, got {k}"
        );
        assert!(k <= 254, "addressing scheme supports k <= 254");
        let half = k / 2;
        let n_tors = k * half;
        let n_aggs = k * half;
        let n_cores = half * half;
        let mut nodes = Vec::with_capacity(n_tors + n_aggs + n_cores);

        // ToRs: ports 0..k/2 are uplinks to aggs, port k/2 is the host block.
        for p in 0..k {
            for i in 0..half {
                let mut ports: Vec<PortTarget> = (0..half)
                    .map(|u| PortTarget::Switch(n_tors + p * half + u))
                    .collect();
                ports.push(PortTarget::Hosts);
                nodes.push(TopoNode {
                    name: format!("T[{p}.{i}]"),
                    role: Role::Tor { pod: p, idx: i },
                    hash: base_hash.reseeded(nodes.len() as u64),
                    ports,
                });
            }
        }
        // Aggs: ports 0..k/2 are downlinks to ToRs, ports k/2..k to cores.
        for p in 0..k {
            for i in 0..half {
                let mut ports: Vec<PortTarget> = (0..half)
                    .map(|d| PortTarget::Switch(p * half + d))
                    .collect();
                ports.extend((0..half).map(|j| PortTarget::Switch(n_tors + n_aggs + i * half + j)));
                nodes.push(TopoNode {
                    name: format!("E[{p}.{i}]"),
                    role: Role::Agg { pod: p, idx: i },
                    hash: base_hash.reseeded(nodes.len() as u64),
                    ports,
                });
            }
        }
        // Cores: port p leads to pod p's aggregation switch `group`.
        for g in 0..half {
            for j in 0..half {
                let ports: Vec<PortTarget> = (0..k)
                    .map(|p| PortTarget::Switch(n_tors + p * half + g))
                    .collect();
                nodes.push(TopoNode {
                    name: format!("C[{g}.{j}]"),
                    role: Role::Core {
                        group: g,
                        member: j,
                    },
                    hash: base_hash.reseeded(nodes.len() as u64),
                    ports,
                });
            }
        }
        FatTree { k, nodes }
    }

    /// The arity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `k/2` — uplinks per ToR, pods per core group, etc.
    pub fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (a fat-tree has at least 2 switches).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All switches.
    pub fn nodes(&self) -> &[TopoNode] {
        &self.nodes
    }

    /// One switch.
    pub fn node(&self, id: TopoId) -> &TopoNode {
        &self.nodes[id]
    }

    /// Id of ToR `idx` in `pod`.
    pub fn tor(&self, pod: usize, idx: usize) -> TopoId {
        debug_assert!(pod < self.k && idx < self.half());
        pod * self.half() + idx
    }

    /// Id of aggregation switch `idx` in `pod`.
    pub fn agg(&self, pod: usize, idx: usize) -> TopoId {
        debug_assert!(pod < self.k && idx < self.half());
        self.k * self.half() + pod * self.half() + idx
    }

    /// Id of core `member` in `group`.
    pub fn core(&self, group: usize, member: usize) -> TopoId {
        debug_assert!(group < self.half() && member < self.half());
        2 * self.k * self.half() + group * self.half() + member
    }

    /// All ToR ids.
    pub fn tors(&self) -> impl Iterator<Item = TopoId> + '_ {
        0..self.k * self.half()
    }

    /// All aggregation ids.
    pub fn aggs(&self) -> impl Iterator<Item = TopoId> + '_ {
        self.k * self.half()..2 * self.k * self.half()
    }

    /// All core ids.
    pub fn cores(&self) -> impl Iterator<Item = TopoId> + '_ {
        2 * self.k * self.half()..self.nodes.len()
    }

    /// Pod-partition group of every switch, indexed by topology id: ToRs
    /// and aggregations of pod `p` map to group `p`, every core switch to
    /// group `k` (one shared core group). This is the shard boundary the
    /// pod-sharded engine uses — every ToR–Agg link stays inside a group,
    /// so the only inter-group edges are Agg–Core links, whose fixed
    /// latency bounds the conservative lookahead window.
    pub fn pod_partition(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|n| match n.role {
                Role::Tor { pod, .. } | Role::Agg { pod, .. } => pod,
                Role::Core { .. } => self.k,
            })
            .collect()
    }

    /// The `/24` host block owned by a ToR.
    pub fn host_prefix(&self, tor: TopoId) -> Ipv4Prefix {
        match self.nodes[tor].role {
            Role::Tor { pod, idx } => {
                Ipv4Prefix::new(Ipv4Addr::new(10, pod as u8, idx as u8, 0), 24).expect("valid /24")
            }
            _ => panic!("host_prefix of non-ToR {}", self.nodes[tor].name),
        }
    }

    /// Address of host `h` under a ToR (hosts start at `.2`).
    pub fn host_addr(&self, tor: TopoId, h: usize) -> Ipv4Addr {
        let pfx = self.host_prefix(tor);
        pfx.nth(2 + h as u64)
    }

    /// The ToR owning `addr`, if it is a fat-tree host address.
    pub fn tor_of_addr(&self, addr: Ipv4Addr) -> Option<TopoId> {
        let o = addr.octets();
        if o[0] != 10 {
            return None;
        }
        let (pod, idx) = (o[1] as usize, o[2] as usize);
        if pod < self.k && idx < self.half() {
            Some(self.tor(pod, idx))
        } else {
            None
        }
    }

    /// Pod of a host address (`None` if not a fat-tree address).
    pub fn pod_of_addr(&self, addr: Ipv4Addr) -> Option<usize> {
        self.tor_of_addr(addr).map(|t| match self.nodes[t].role {
            Role::Tor { pod, .. } => pod,
            _ => unreachable!("tor_of_addr returns ToRs"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> FatTree {
        FatTree::new(4, HashAlgo::default())
    }

    #[test]
    fn node_counts_match_k_ary_structure() {
        for k in [2usize, 4, 6, 8] {
            let t = FatTree::new(k, HashAlgo::default());
            let half = k / 2;
            assert_eq!(t.tors().count(), k * half, "tors for k={k}");
            assert_eq!(t.aggs().count(), k * half, "aggs for k={k}");
            assert_eq!(t.cores().count(), half * half, "cores for k={k}");
            assert_eq!(t.len(), 2 * k * half + half * half);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_rejected() {
        FatTree::new(5, HashAlgo::default());
    }

    #[test]
    fn port_conventions() {
        let t = tree();
        let half = t.half();
        // ToR uplink u goes to agg (pod, u); last port is hosts.
        for pod in 0..t.k() {
            for i in 0..half {
                let tor = t.tor(pod, i);
                let node = t.node(tor);
                assert_eq!(node.ports.len(), half + 1);
                for u in 0..half {
                    assert_eq!(node.ports[u], PortTarget::Switch(t.agg(pod, u)));
                }
                assert_eq!(node.ports[half], PortTarget::Hosts);
            }
        }
        // Agg downlink d → tor (pod, d); uplink j → core (idx, j).
        for pod in 0..t.k() {
            for i in 0..half {
                let agg = t.agg(pod, i);
                let node = t.node(agg);
                assert_eq!(node.ports.len(), 2 * half);
                for d in 0..half {
                    assert_eq!(node.ports[d], PortTarget::Switch(t.tor(pod, d)));
                }
                for j in 0..half {
                    assert_eq!(node.ports[half + j], PortTarget::Switch(t.core(i, j)));
                }
            }
        }
        // Core (g, j) port p → agg (p, g).
        for g in 0..half {
            for j in 0..half {
                let c = t.core(g, j);
                let node = t.node(c);
                assert_eq!(node.ports.len(), t.k());
                for p in 0..t.k() {
                    assert_eq!(node.ports[p], PortTarget::Switch(t.agg(p, g)));
                }
            }
        }
    }

    #[test]
    fn links_are_bidirectionally_consistent() {
        // If X has a port to Y, Y must have a port back to X.
        let t = FatTree::new(6, HashAlgo::default());
        for (id, node) in t.nodes().iter().enumerate() {
            for port in &node.ports {
                if let PortTarget::Switch(other) = port {
                    let back = t.node(*other).ports.contains(&PortTarget::Switch(id));
                    assert!(
                        back,
                        "{} -> {} has no reverse link",
                        node.name,
                        t.node(*other).name
                    );
                }
            }
        }
    }

    #[test]
    fn addressing_round_trips() {
        let t = tree();
        for pod in 0..4 {
            for i in 0..2 {
                let tor = t.tor(pod, i);
                let pfx = t.host_prefix(tor);
                assert_eq!(pfx.to_string(), format!("10.{pod}.{i}.0/24"));
                for h in 0..2 {
                    let addr = t.host_addr(tor, h);
                    assert!(pfx.contains(addr));
                    assert_eq!(t.tor_of_addr(addr), Some(tor));
                    assert_eq!(t.pod_of_addr(addr), Some(pod));
                }
            }
        }
        assert_eq!(t.tor_of_addr(Ipv4Addr::new(192, 168, 0, 1)), None);
        assert_eq!(t.tor_of_addr(Ipv4Addr::new(10, 200, 0, 1)), None);
    }

    #[test]
    fn host_addresses_start_at_dot_two() {
        let t = tree();
        assert_eq!(t.host_addr(t.tor(1, 1), 0), Ipv4Addr::new(10, 1, 1, 2));
        assert_eq!(t.host_addr(t.tor(1, 1), 3), Ipv4Addr::new(10, 1, 1, 5));
    }

    #[test]
    fn per_switch_hashes_differ() {
        let t = tree();
        let h0 = t.node(t.tor(0, 0)).hash;
        let h1 = t.node(t.tor(0, 1)).hash;
        assert_ne!(h0, h1, "switch hashes must be decorrelated");
        // And rebuilt trees agree (determinism).
        let t2 = tree();
        assert_eq!(t.node(5).hash, t2.node(5).hash);
    }

    #[test]
    fn names_match_paper_style() {
        let t = tree();
        assert_eq!(t.node(t.tor(0, 0)).name, "T[0.0]");
        assert_eq!(t.node(t.agg(2, 1)).name, "E[2.1]");
        assert_eq!(t.node(t.core(1, 0)).name, "C[1.0]");
    }
}
