//! Per-flow latency aggregation.
//!
//! "Obtaining per-flow measurements now is just a matter of aggregating
//! latency estimates across packets that share a given flow key" (§2). The
//! [`FlowTable`] accumulates, per flow, both the *estimated* delays produced
//! by interpolation and the *true* delays from simulator ground truth, and
//! derives exactly the two per-flow quantities the paper evaluates: mean
//! (Fig. 4a/4c) and standard deviation (Fig. 4b), each with its relative
//! error.

use rlir_net::fxhash::FxBuildHasher;
use rlir_net::FlowKey;
use rlir_stats::{relative_error, P2Quantile, StreamingStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::BuildHasher;

/// Estimated and true delay statistics for one flow.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowAccumulator {
    /// Interpolated (estimated) per-packet delays.
    pub est: StreamingStats,
    /// Ground-truth per-packet delays (absent in a real deployment; present
    /// in simulation for evaluation).
    pub truth: StreamingStats,
    /// Optional streaming tail-quantile tracker over estimated delays
    /// (enabled via [`FlowTable::with_quantile`]; O(1) memory per flow).
    pub est_q: Option<P2Quantile>,
    /// Matching tracker over true delays.
    pub truth_q: Option<P2Quantile>,
}

/// Per-flow report row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowKey,
    /// Number of estimated packets.
    pub packets: u64,
    /// Estimated mean delay (ns).
    pub est_mean: f64,
    /// True mean delay (ns), if ground truth was supplied.
    pub true_mean: Option<f64>,
    /// Estimated standard deviation (ns); `None` with fewer than 2 packets.
    pub est_std: Option<f64>,
    /// True standard deviation (ns).
    pub true_std: Option<f64>,
    /// Relative error of the mean (needs ground truth).
    pub mean_rel_err: Option<f64>,
    /// Relative error of the standard deviation.
    pub std_rel_err: Option<f64>,
    /// Estimated tail quantile (when quantile tracking is enabled).
    pub est_quantile: Option<f64>,
    /// True tail quantile.
    pub true_quantile: Option<f64>,
    /// Relative error of the tail-quantile estimate.
    pub quantile_rel_err: Option<f64>,
}

/// Aggregates per-packet estimates by flow key.
///
/// Layout is a dense index map: the hash table holds only compact
/// `key → u32` slots while the (large) accumulators live contiguously in a
/// `Vec`. Hot-path `record` calls therefore probe small buckets and write
/// one cache line, instead of probing ~300-byte buckets as the seed's
/// direct `HashMap<FlowKey, FlowAccumulator>` did.
///
/// Generic over the table's hash builder, defaulting to FxHash — the
/// fastest choice for the simulated hot path. Instantiate as
/// [`SipFlowTable`] to get the standard library's DoS-resistant SipHash
/// (what a deployment facing adversarial flow keys would pick).
#[derive(Debug, Clone, Default)]
pub struct FlowTable<S: BuildHasher = FxBuildHasher> {
    index: HashMap<FlowKey, u32, S>,
    accs: Vec<(FlowKey, FlowAccumulator)>,
    estimates: u64,
    quantile_p: Option<f64>,
}

/// [`FlowTable`] hashed with the standard library's SipHash.
pub type SipFlowTable = FlowTable<std::collections::hash_map::RandomState>;

impl<S: BuildHasher + Default> FlowTable<S> {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table that additionally tracks the `p`-quantile of each
    /// flow's delays with P² trackers (the RLI line of work also reports
    /// per-flow tail latency).
    pub fn with_quantile(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        FlowTable {
            quantile_p: Some(p),
            ..Self::default()
        }
    }

    /// The tracked quantile, if enabled.
    pub fn quantile_p(&self) -> Option<f64> {
        self.quantile_p
    }

    /// Record one per-packet estimate (and optionally its ground truth).
    #[inline]
    pub fn record(&mut self, flow: FlowKey, est_ns: f64, truth_ns: Option<f64>) {
        let slot = *self.index.entry(flow).or_insert_with(|| {
            let qp = self.quantile_p;
            self.accs.push((
                flow,
                FlowAccumulator {
                    est_q: qp.map(P2Quantile::new),
                    truth_q: qp.map(P2Quantile::new),
                    ..FlowAccumulator::default()
                },
            ));
            (self.accs.len() - 1) as u32
        });
        let acc = &mut self.accs[slot as usize].1;
        acc.est.push(est_ns);
        if let Some(q) = acc.est_q.as_mut() {
            q.push(est_ns);
        }
        if let Some(t) = truth_ns {
            acc.truth.push(t);
            if let Some(q) = acc.truth_q.as_mut() {
                q.push(t);
            }
        }
        self.estimates += 1;
    }

    /// Number of flows with at least one estimate.
    pub fn flow_count(&self) -> usize {
        self.accs.len()
    }

    /// Total per-packet estimates recorded.
    pub fn estimate_count(&self) -> u64 {
        self.estimates
    }

    /// Access one flow's accumulator.
    pub fn get(&self, flow: &FlowKey) -> Option<&FlowAccumulator> {
        self.index.get(flow).map(|&i| &self.accs[i as usize].1)
    }

    /// Merge another table into this one (parallel experiment shards).
    ///
    /// Counts, means and variances merge exactly; P² quantile trackers are
    /// *not* mergeable, so when both sides contributed observations to a
    /// flow its quantile trackers are dropped (use per-shard tables if you
    /// need sharded quantiles).
    pub fn merge(&mut self, other: FlowTable<S>) {
        for (k, v) in other.accs {
            match self.index.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    self.accs.push((k, v));
                    e.insert((self.accs.len() - 1) as u32);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let acc = &mut self.accs[*e.get() as usize].1;
                    acc.est.merge(&v.est);
                    acc.truth.merge(&v.truth);
                    acc.est_q = None;
                    acc.truth_q = None;
                }
            }
        }
        self.estimates += other.estimates;
    }

    /// Build per-flow reports for flows with at least `min_packets`
    /// estimates, sorted by flow key for determinism.
    pub fn report(&self, min_packets: u64) -> Vec<FlowReport> {
        let mut rows: Vec<FlowReport> = self
            .accs
            .iter()
            .filter(|(_, acc)| acc.est.count() >= min_packets.max(1))
            .map(|(flow, acc)| {
                let est_mean = acc.est.mean().expect("count >= 1");
                let true_mean = acc.truth.mean();
                let est_std = acc.est.std_dev().filter(|_| acc.est.count() >= 2);
                let true_std = acc.truth.std_dev().filter(|_| acc.truth.count() >= 2);
                let est_quantile = acc.est_q.as_ref().and_then(|q| q.estimate());
                let true_quantile = acc.truth_q.as_ref().and_then(|q| q.estimate());
                FlowReport {
                    flow: *flow,
                    packets: acc.est.count(),
                    est_mean,
                    true_mean,
                    est_std,
                    true_std,
                    mean_rel_err: true_mean.map(|t| relative_error(est_mean, t)),
                    std_rel_err: match (est_std, true_std) {
                        (Some(e), Some(t)) => Some(relative_error(e, t)),
                        _ => None,
                    },
                    est_quantile,
                    true_quantile,
                    quantile_rel_err: match (est_quantile, true_quantile) {
                        (Some(e), Some(t)) => Some(relative_error(e, t)),
                        _ => None,
                    },
                }
            })
            .collect();
        rows.sort_by_key(|r| r.flow);
        rows
    }

    /// Per-flow relative errors of the *mean* estimate (Fig. 4a/4c input).
    pub fn mean_relative_errors(&self, min_packets: u64) -> Vec<f64> {
        self.report(min_packets)
            .into_iter()
            .filter_map(|r| r.mean_rel_err)
            .collect()
    }

    /// Per-flow relative errors of the *standard deviation* estimate
    /// (Fig. 4b input). Requires at least 2 packets per flow.
    pub fn std_relative_errors(&self, min_packets: u64) -> Vec<f64> {
        self.report(min_packets.max(2))
            .into_iter()
            .filter_map(|r| r.std_rel_err)
            .collect()
    }

    /// Per-flow relative errors of the tail-quantile estimate (requires
    /// [`FlowTable::with_quantile`]).
    pub fn quantile_relative_errors(&self, min_packets: u64) -> Vec<f64> {
        self.report(min_packets)
            .into_iter()
            .filter_map(|r| r.quantile_rel_err)
            .collect()
    }

    /// Mean of all flows' true mean delays (the paper quotes these:
    /// "we observed the average latencies as 3.0µs and 83µs").
    pub fn average_true_delay_ns(&self) -> Option<f64> {
        let mut all = StreamingStats::new();
        for (_, acc) in &self.accs {
            if let Some(m) = acc.truth.mean() {
                all.push(m);
            }
        }
        all.mean()
    }

    /// Packet-weighted mean of all *estimated* delays across every flow
    /// (segment-level aggregate used by the localization reports).
    pub fn aggregate_est_mean(&self) -> Option<f64> {
        let (sum, count) = self.accs.iter().fold((0.0, 0u64), |(s, c), (_, acc)| {
            (s + acc.est.sum(), c + acc.est.count())
        });
        (count > 0).then(|| sum / count as f64)
    }

    /// Packet-weighted mean of all *true* delays across every flow.
    pub fn aggregate_true_mean(&self) -> Option<f64> {
        let (sum, count) = self.accs.iter().fold((0.0, 0u64), |(s, c), (_, acc)| {
            (s + acc.truth.sum(), c + acc.truth.count())
        });
        (count > 0).then(|| sum / count as f64)
    }

    /// Rebuild a table from accumulator rows in their original insertion
    /// order (the inverse of tearing one apart — used by [`FlowArena`] to
    /// hand each tap back a table bit-identical to the one it would have
    /// grown privately).
    pub fn from_rows(
        quantile_p: Option<f64>,
        rows: Vec<(FlowKey, FlowAccumulator)>,
        estimates: u64,
    ) -> Self {
        let mut index = HashMap::with_capacity_and_hasher(rows.len(), S::default());
        for (i, (flow, _)) in rows.iter().enumerate() {
            index.insert(*flow, i as u32);
        }
        FlowTable {
            index,
            accs: rows,
            estimates,
            quantile_p,
        }
    }

    /// Approximate heap footprint of this table in bytes (index capacity +
    /// accumulator rows). Diagnostic only — used to compare plane state
    /// layouts, not for allocation decisions.
    pub fn approx_bytes(&self) -> usize {
        let row = std::mem::size_of::<(FlowKey, FlowAccumulator)>();
        // Hashbrown stores key+value+1 control byte per slot.
        let slot = std::mem::size_of::<(FlowKey, u32)>() + 1;
        self.accs.capacity() * row + self.index.capacity() * slot
    }
}

/// One flow's state inside a [`FlowArena`]: which tap it belongs to, its
/// key, and the same [`FlowAccumulator`] a private [`FlowTable`] would hold.
#[derive(Debug, Clone)]
struct ArenaEntry {
    tap: u32,
    flow: FlowKey,
    acc: FlowAccumulator,
}

/// Per-tap bookkeeping the arena keeps so it can reconstitute each tap's
/// [`FlowTable`] exactly.
#[derive(Debug, Clone, Copy, Default)]
struct ArenaTapMeta {
    estimates: u64,
    quantile_p: Option<f64>,
    flows: u32,
}

/// A plane-wide arena of flow accumulators shared by every tap.
///
/// The fleet-scale layout: instead of each tap owning a private
/// [`FlowTable`] (a hash map plus a `Vec` of ~300-byte accumulator rows,
/// each with its own capacity slack), all taps share **one** contiguous
/// entry store plus one `(tap, flow) → u32` handle map on the packed
/// FxHash path. Memory then scales with *live flows across the plane*
/// rather than `taps × per-table fixed cost`, and a point-in-time
/// snapshot query can walk one `Vec` instead of T tables.
///
/// `record` performs the exact sequence of accumulator operations
/// [`FlowTable::record`] performs, and [`FlowArena::into_tables`] rebuilds
/// each tap's table with rows in per-tap insertion order — so reports,
/// quantiles, and merge behavior are bit-identical to the per-tap layout
/// (pinned by the plane's differential tests).
#[derive(Debug, Clone, Default)]
pub struct FlowArena {
    index: HashMap<(u32, FlowKey), u32, FxBuildHasher>,
    entries: Vec<ArenaEntry>,
    taps: Vec<ArenaTapMeta>,
}

impl FlowArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tap and return its handle. `quantile_p` mirrors
    /// [`FlowTable::with_quantile`] for that tap's flows.
    pub fn register_tap(&mut self, quantile_p: Option<f64>) -> u32 {
        if let Some(p) = quantile_p {
            assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        }
        self.taps.push(ArenaTapMeta {
            quantile_p,
            ..ArenaTapMeta::default()
        });
        (self.taps.len() - 1) as u32
    }

    /// Number of registered taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Record one estimate for `tap` — the shared-store twin of
    /// [`FlowTable::record`], operation-for-operation.
    #[inline]
    pub fn record(&mut self, tap: u32, flow: FlowKey, est_ns: f64, truth_ns: Option<f64>) {
        let meta = &mut self.taps[tap as usize];
        let slot = *self.index.entry((tap, flow)).or_insert_with(|| {
            let qp = meta.quantile_p;
            meta.flows += 1;
            self.entries.push(ArenaEntry {
                tap,
                flow,
                acc: FlowAccumulator {
                    est_q: qp.map(P2Quantile::new),
                    truth_q: qp.map(P2Quantile::new),
                    ..FlowAccumulator::default()
                },
            });
            (self.entries.len() - 1) as u32
        });
        let acc = &mut self.entries[slot as usize].acc;
        acc.est.push(est_ns);
        if let Some(q) = acc.est_q.as_mut() {
            q.push(est_ns);
        }
        if let Some(t) = truth_ns {
            acc.truth.push(t);
            if let Some(q) = acc.truth_q.as_mut() {
                q.push(t);
            }
        }
        self.taps[tap as usize].estimates += 1;
    }

    /// One tap's flow count so far.
    pub fn flow_count(&self, tap: u32) -> usize {
        self.taps[tap as usize].flows as usize
    }

    /// One tap's estimate count so far.
    pub fn estimate_count(&self, tap: u32) -> u64 {
        self.taps[tap as usize].estimates
    }

    /// Total entries across all taps.
    pub fn total_flows(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap footprint in bytes: the shared handle map plus the
    /// contiguous entry store. The per-tap metadata is `O(taps)` words.
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<ArenaEntry>();
        let slot = std::mem::size_of::<((u32, FlowKey), u32)>() + 1;
        self.entries.capacity() * entry
            + self.index.capacity() * slot
            + self.taps.capacity() * std::mem::size_of::<ArenaTapMeta>()
    }

    /// Release every flow owned by `tap` back to the arena: entries are
    /// dropped, the handle map is rebuilt over the survivors, and the
    /// tap's metadata is zeroed so it restarts cold (its registration and
    /// quantile configuration survive). Returns how many flow entries
    /// were freed.
    ///
    /// This is the crash path for a downed measurement tap: O(total
    /// flows) — a compacting sweep, acceptable for a rare fault event —
    /// and it preserves the *other* taps' per-tap insertion order, so
    /// their [`into_tables`](FlowArena::into_tables) output is unchanged.
    pub fn release_tap(&mut self, tap: u32) -> usize {
        let meta = &mut self.taps[tap as usize];
        meta.flows = 0;
        meta.estimates = 0;
        let before = self.entries.len();
        self.entries.retain(|e| e.tap != tap);
        let freed = before - self.entries.len();
        if freed > 0 {
            self.index.clear();
            for (slot, e) in self.entries.iter().enumerate() {
                self.index.insert((e.tap, e.flow), slot as u32);
            }
        }
        freed
    }

    /// Tear the arena apart into one [`FlowTable`] per registered tap, rows
    /// in per-tap insertion order — each table identical to what the tap
    /// would have built privately.
    pub fn into_tables(self) -> Vec<FlowTable> {
        let mut rows: Vec<Vec<(FlowKey, FlowAccumulator)>> = self
            .taps
            .iter()
            .map(|m| Vec::with_capacity(m.flows as usize))
            .collect();
        // `entries` is globally insertion-ordered, so a stable single pass
        // partitions it into per-tap insertion order.
        for e in self.entries {
            rows[e.tap as usize].push((e.flow, e.acc));
        }
        self.taps
            .into_iter()
            .zip(rows)
            .map(|(m, r)| FlowTable::from_rows(m.quantile_p, r, m.estimates))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1000,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    #[test]
    fn records_accumulate_per_flow() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 100.0, Some(110.0));
        t.record(fk(1), 200.0, Some(190.0));
        t.record(fk(2), 50.0, Some(50.0));
        assert_eq!(t.flow_count(), 2);
        assert_eq!(t.estimate_count(), 3);
        let acc = t.get(&fk(1)).unwrap();
        assert_eq!(acc.est.count(), 2);
        assert_eq!(acc.est.mean(), Some(150.0));
        assert_eq!(acc.truth.mean(), Some(150.0));
    }

    #[test]
    fn report_computes_errors() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 110.0, Some(100.0));
        let rows = t.report(1);
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        assert_eq!(r.packets, 1);
        assert!((r.mean_rel_err.unwrap() - 0.10).abs() < 1e-9);
        assert!(r.est_std.is_none(), "std undefined for 1 packet");
        assert!(r.std_rel_err.is_none());
    }

    #[test]
    fn std_errors_need_two_packets() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 100.0, Some(100.0));
        t.record(fk(1), 200.0, Some(220.0));
        t.record(fk(2), 10.0, Some(10.0)); // single-packet flow excluded
        let errs = t.std_relative_errors(1);
        assert_eq!(errs.len(), 1);
        // est std = 50, true std = 60 → rel err = 1/6.
        assert!((errs[0] - 50.0_f64 / 60.0 * 0.2).abs() < 1e-9 || errs[0] > 0.0);
        let mean_errs = t.mean_relative_errors(1);
        assert_eq!(mean_errs.len(), 2);
    }

    #[test]
    fn min_packet_filter() {
        let mut t: FlowTable = FlowTable::new();
        for i in 0..5 {
            t.record(fk(1), i as f64, Some(i as f64));
        }
        t.record(fk(2), 1.0, Some(1.0));
        assert_eq!(t.report(1).len(), 2);
        assert_eq!(t.report(2).len(), 1);
        assert_eq!(t.report(6).len(), 0);
    }

    #[test]
    fn missing_truth_yields_no_error() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 100.0, None);
        let rows = t.report(1);
        assert!(rows[0].mean_rel_err.is_none());
        assert!(t.mean_relative_errors(1).is_empty());
    }

    #[test]
    fn merge_combines_shards() {
        let mut a: FlowTable = FlowTable::new();
        let mut b: FlowTable = FlowTable::new();
        a.record(fk(1), 100.0, Some(100.0));
        b.record(fk(1), 200.0, Some(200.0));
        b.record(fk(3), 10.0, None);
        a.merge(b);
        assert_eq!(a.flow_count(), 2);
        assert_eq!(a.estimate_count(), 3);
        assert_eq!(a.get(&fk(1)).unwrap().est.mean(), Some(150.0));
    }

    #[test]
    fn average_true_delay() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 0.0, Some(3000.0));
        t.record(fk(2), 0.0, Some(5000.0));
        assert_eq!(t.average_true_delay_ns(), Some(4000.0));
        assert_eq!(
            FlowTable::<FxBuildHasher>::new().average_true_delay_ns(),
            None
        );
    }

    #[test]
    fn quantile_tracking_when_enabled() {
        let mut t: FlowTable = FlowTable::with_quantile(0.9);
        assert_eq!(t.quantile_p(), Some(0.9));
        for i in 1..=100 {
            let v = i as f64;
            t.record(fk(1), v, Some(v + 5.0));
        }
        let rows = t.report(1);
        let r = rows[0];
        let eq = r.est_quantile.unwrap();
        let tq = r.true_quantile.unwrap();
        assert!((85.0..=95.0).contains(&eq), "est p90 {eq}");
        assert!((90.0..=100.0).contains(&tq), "true p90 {tq}");
        assert!(r.quantile_rel_err.unwrap() < 0.2);
        assert_eq!(t.quantile_relative_errors(1).len(), 1);
    }

    #[test]
    fn quantiles_absent_by_default() {
        let mut t: FlowTable = FlowTable::new();
        t.record(fk(1), 1.0, Some(1.0));
        let r = t.report(1)[0];
        assert!(r.est_quantile.is_none());
        assert!(r.quantile_rel_err.is_none());
        assert!(t.quantile_relative_errors(1).is_empty());
    }

    #[test]
    fn merge_drops_conflicting_quantiles_only() {
        let mut a: FlowTable = FlowTable::with_quantile(0.5);
        let mut b: FlowTable = FlowTable::with_quantile(0.5);
        a.record(fk(1), 1.0, None);
        b.record(fk(1), 2.0, None); // same flow → trackers dropped
        b.record(fk(2), 3.0, None); // new flow → tracker kept
        a.merge(b);
        let rows = a.report(1);
        let r1 = rows.iter().find(|r| r.flow == fk(1)).unwrap();
        let r2 = rows.iter().find(|r| r.flow == fk(2)).unwrap();
        assert!(r1.est_quantile.is_none(), "conflicting tracker must drop");
        assert!(r2.est_quantile.is_some(), "unique tracker survives merge");
        assert_eq!(r1.packets, 2, "counts still merge exactly");
    }

    #[test]
    fn report_sorted_by_flow() {
        let mut t: FlowTable = FlowTable::new();
        for i in (1..10).rev() {
            t.record(fk(i), 1.0, None);
        }
        let rows = t.report(1);
        for w in rows.windows(2) {
            assert!(w[0].flow < w[1].flow);
        }
    }

    /// The same interleaved record stream through a shared arena and
    /// through private per-tap tables must yield bit-identical reports.
    #[test]
    fn arena_matches_private_tables() {
        let mut arena = FlowArena::new();
        let t0 = arena.register_tap(None);
        let t1 = arena.register_tap(Some(0.9));
        let mut p0: FlowTable = FlowTable::new();
        let mut p1: FlowTable = FlowTable::with_quantile(0.9);
        // Deterministic interleaving across taps and flows, truth sometimes
        // absent — exercise every accumulator path.
        for i in 0..200u32 {
            let flow = fk((i % 7) as u8 + 1);
            let est = (i as f64) * 3.5 + 1.0;
            let truth = (i % 3 != 0).then_some(est * 1.1);
            if i % 2 == 0 {
                arena.record(t0, flow, est, truth);
                p0.record(flow, est, truth);
            } else {
                arena.record(t1, flow, est, truth);
                p1.record(flow, est, truth);
            }
        }
        assert_eq!(arena.flow_count(t0), p0.flow_count());
        assert_eq!(arena.estimate_count(t1), p1.estimate_count());
        let tables = arena.into_tables();
        assert_eq!(tables.len(), 2);
        for (shared, private) in tables.iter().zip([&p0, &p1]) {
            assert_eq!(shared.quantile_p(), private.quantile_p());
            assert_eq!(shared.estimate_count(), private.estimate_count());
            let (a, b) = (shared.report(1), private.report(1));
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(&b) {
                assert_eq!(ra.flow, rb.flow);
                assert_eq!(ra.packets, rb.packets);
                assert_eq!(ra.est_mean.to_bits(), rb.est_mean.to_bits());
                assert_eq!(ra.est_std.map(f64::to_bits), rb.est_std.map(f64::to_bits));
                assert_eq!(
                    ra.est_quantile.map(f64::to_bits),
                    rb.est_quantile.map(f64::to_bits)
                );
                assert_eq!(
                    ra.true_mean.map(f64::to_bits),
                    rb.true_mean.map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let mut t: FlowTable = FlowTable::with_quantile(0.5);
        for i in 1..=5u8 {
            t.record(fk(i), i as f64, Some(i as f64 * 2.0));
        }
        let rebuilt: FlowTable =
            FlowTable::from_rows(t.quantile_p(), t.accs.clone(), t.estimate_count());
        assert_eq!(rebuilt.flow_count(), t.flow_count());
        assert_eq!(rebuilt.get(&fk(3)).unwrap().est.count(), 1);
        assert!(rebuilt.approx_bytes() > 0);
    }

    #[test]
    fn arena_memory_is_shared_not_per_tap() {
        // Fixed total flow population spread over many taps: the arena's
        // footprint must track entries, not tap count. 256 taps with one
        // flow each must not cost more than ~2x 1 tap with 256 flows.
        let mut wide = FlowArena::new();
        for i in 0..256u32 {
            let tap = wide.register_tap(None);
            wide.record(tap, fk((i % 200) as u8), 1.0, None);
        }
        let mut narrow = FlowArena::new();
        let tap = narrow.register_tap(None);
        for i in 0..256u32 {
            narrow.record(
                tap,
                FlowKey::tcp(
                    Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                    1000 + i as u16,
                    Ipv4Addr::new(10, 1, 0, 1),
                    80,
                ),
                1.0,
                None,
            );
        }
        assert_eq!(wide.total_flows(), 256);
        assert!(wide.approx_bytes() < narrow.approx_bytes() * 2);
    }
}
