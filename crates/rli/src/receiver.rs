//! The RLI receiver.
//!
//! §2: the receiver computes true delays of reference packets from their
//! embedded timestamps and its own synchronised clock, holds regular packets
//! that arrive between two reference packets in an *interpolation buffer*,
//! and, when the closing reference arrives, estimates every buffered
//! packet's delay by linear interpolation and folds it into per-flow
//! statistics.
//!
//! The receiver is demultiplexing-aware in the minimal RLI sense: it is
//! bound to one sender id and ignores reference packets from other senders
//! (RLIR's full demultiplexer in the `rlir` crate decides which *regular*
//! packets to hand to which receiver instance).

use crate::epoch::{EpochSnapshot, EpochTracker};
use crate::flowstats::FlowTable;
use crate::interpolate::{DelaySample, Interpolator};
use rlir_net::clock::ClockModel;
use rlir_net::fxhash::FxBuildHasher;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// Receiver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReceiverConfig {
    /// Accept reference packets only from this sender.
    pub sender: SenderId,
    /// The receiver's local clock.
    pub clock: ClockModel,
    /// Delay estimator (the paper uses linear interpolation).
    pub interpolator: Interpolator,
    /// Safety cap on the interpolation buffer; packets beyond it are counted
    /// as unestimated rather than growing memory without bound (e.g. if the
    /// reference stream dies).
    pub max_buffer: usize,
    /// Keep a per-packet log of `(time, flow, estimate, truth)` records in
    /// addition to the per-flow aggregation. Costs memory proportional to
    /// traffic; enables per-packet error CDFs and time-windowed analyses.
    pub record_estimates: bool,
    /// Width of the epoch window in nanoseconds: the receiver additionally
    /// aggregates into per-epoch [`EpochSnapshot`]s keyed by observation
    /// time, the bounded-size export a deployed instance would stream off
    /// the router each epoch. `None` (the default) disables the epoch
    /// dimension. Enabling it never perturbs the cumulative per-flow table
    /// or counters — snapshots are an *additional* view.
    pub epoch_ns: Option<u64>,
}

impl ReceiverConfig {
    /// Standard configuration for a sender id: perfect clock, linear
    /// interpolation, 1M-packet buffer cap, no per-packet log.
    pub fn for_sender(sender: SenderId) -> Self {
        ReceiverConfig {
            sender,
            clock: ClockModel::perfect(),
            interpolator: Interpolator::Linear,
            max_buffer: 1 << 20,
            record_estimates: false,
            epoch_ns: None,
        }
    }
}

/// One per-packet estimate, logged when
/// [`ReceiverConfig::record_estimates`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateRecord {
    /// Arrival time of the packet at the receiver.
    pub at: SimTime,
    /// The packet's flow.
    pub flow: rlir_net::FlowKey,
    /// Interpolated delay estimate, ns.
    pub est_ns: f64,
    /// Ground-truth delay, ns (simulation only).
    pub truth_ns: Option<f64>,
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ReceiverCounters {
    /// Reference packets accepted from the bound sender.
    pub refs_accepted: u64,
    /// Reference packets from other senders (ignored).
    pub refs_foreign: u64,
    /// Regular packets offered to the receiver.
    pub regulars_seen: u64,
    /// Per-packet estimates produced.
    pub estimated: u64,
    /// Regular packets that could not be estimated (before the first
    /// reference, after the last, or over the buffer cap).
    pub unestimated: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    at: SimTime,
    flow: rlir_net::FlowKey,
    truth_ns: Option<f64>,
}

/// An RLI receiver instance.
///
/// Generic over the per-flow table's hash builder (see [`FlowTable`]);
/// defaults to FxHash for the simulation hot path.
#[derive(Debug, Clone)]
pub struct RliReceiver<S: BuildHasher = FxBuildHasher> {
    cfg: ReceiverConfig,
    left: Option<DelaySample>,
    buffer: Vec<Pending>,
    flows: FlowTable<S>,
    counters: ReceiverCounters,
    estimates: Vec<EstimateRecord>,
    epochs: Option<EpochTracker>,
}

impl<S: BuildHasher + Default> RliReceiver<S> {
    /// Build from configuration.
    pub fn new(cfg: ReceiverConfig) -> Self {
        RliReceiver {
            cfg,
            left: None,
            buffer: Vec::new(),
            flows: FlowTable::new(),
            counters: ReceiverCounters::default(),
            estimates: Vec::new(),
            epochs: cfg.epoch_ns.map(EpochTracker::new),
        }
    }

    /// Build with a per-flow quantile tracker enabled (see
    /// [`FlowTable::with_quantile`]).
    pub fn with_quantile(cfg: ReceiverConfig, p: f64) -> Self {
        RliReceiver {
            flows: FlowTable::with_quantile(p),
            ..Self::new(cfg)
        }
    }

    /// The bound sender.
    pub fn sender(&self) -> SenderId {
        self.cfg.sender
    }

    /// Current counters.
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }

    /// Offer a packet arriving at the receiver's interface at (true) time
    /// `at`. `truth` is the simulator's ground-truth delay for evaluation
    /// (`None` in deployment). Dispatches on packet kind.
    pub fn on_packet(&mut self, at: SimTime, pkt: &Packet, truth: Option<SimDuration>) {
        match pkt.reference_info() {
            Some(info) => self.on_reference(at, info),
            None => {
                if pkt.is_regular() {
                    self.on_regular(at, pkt.flow, truth);
                }
                // Cross traffic is invisible to the measurement plane.
            }
        }
    }

    /// A regular packet arrived: buffer it for interpolation.
    pub fn on_regular(&mut self, at: SimTime, flow: rlir_net::FlowKey, truth: Option<SimDuration>) {
        self.counters.regulars_seen += 1;
        if let Some(t) = self.epochs.as_mut() {
            t.snap(at).regulars_seen += 1;
        }
        if self.left.is_none() {
            // Before the first reference there is no bracket; RLI cannot
            // estimate these packets.
            self.count_unestimated(at);
            return;
        }
        if self.buffer.len() >= self.cfg.max_buffer {
            self.count_unestimated(at);
            return;
        }
        self.buffer.push(Pending {
            at,
            flow,
            truth_ns: truth.map(|d| d.as_nanos() as f64),
        });
    }

    /// A reference packet arrived: if it is ours, close the current
    /// interpolation interval and estimate everything buffered inside it.
    pub fn on_reference(&mut self, at: SimTime, info: &ReferenceInfo) {
        // Split the borrow: route estimates into our own table while the
        // rest of the receiver mutates through `on_reference_record`.
        let mut flows = std::mem::take(&mut self.flows);
        self.on_reference_record(at, info, |flow, est, truth| flows.record(flow, est, truth));
        self.flows = flows;
    }

    /// [`RliReceiver::on_reference`] with the per-flow aggregation routed
    /// through `record` instead of this receiver's private [`FlowTable`] —
    /// the hook a shared-arena measurement plane uses to keep flow state in
    /// one plane-wide store. Every other effect (counters, epochs, the
    /// per-packet estimate log) is identical.
    pub fn on_reference_record(
        &mut self,
        at: SimTime,
        info: &ReferenceInfo,
        mut record: impl FnMut(rlir_net::FlowKey, f64, Option<f64>),
    ) {
        if info.sender != self.cfg.sender {
            self.counters.refs_foreign += 1;
            return;
        }
        self.counters.refs_accepted += 1;
        if let Some(t) = self.epochs.as_mut() {
            t.snap(at).refs_accepted += 1;
        }
        let rx_local = self.cfg.clock.observe(at);
        let delay_ns = rx_local.signed_delta_nanos(info.tx_timestamp) as f64;
        let right = DelaySample::new(at, delay_ns);
        if let Some(left) = self.left {
            // One slope division per interval; one multiply-add per packet.
            let segment = self.cfg.interpolator.segment(left, right);
            for p in self.buffer.drain(..) {
                let est = segment.estimate_at(p.at);
                record(p.flow, est, p.truth_ns);
                if let Some(t) = self.epochs.as_mut() {
                    // The estimate belongs to the epoch the packet crossed
                    // the observation point in, not the closing ref's.
                    let snap = t.snap(p.at);
                    snap.est.push(est);
                    if let Some(truth) = p.truth_ns {
                        snap.truth.push(truth);
                    }
                    snap.estimated += 1;
                }
                if self.cfg.record_estimates {
                    self.estimates.push(EstimateRecord {
                        at: p.at,
                        flow: p.flow,
                        est_ns: est,
                        truth_ns: p.truth_ns,
                    });
                }
                self.counters.estimated += 1;
            }
        } else {
            debug_assert!(self.buffer.is_empty(), "buffered without a left ref");
        }
        self.left = Some(right);
    }

    /// Record a regular packet the *caller* observed at the point but shed
    /// before the receiver could buffer it (e.g. a bounded reorder window
    /// overflowing upstream of the receiver). Counted as
    /// seen-but-unestimated, in `at`'s epoch — the books stay honest even
    /// when memory pressure drops observations.
    pub fn on_shed(&mut self, at: SimTime) {
        self.counters.regulars_seen += 1;
        if let Some(t) = self.epochs.as_mut() {
            t.snap(at).regulars_seen += 1;
        }
        self.count_unestimated(at);
    }

    fn count_unestimated(&mut self, at: SimTime) {
        self.counters.unestimated += 1;
        if let Some(t) = self.epochs.as_mut() {
            t.snap(at).unestimated += 1;
        }
    }

    /// Crash-restart the estimator cold, as if the receiver process died
    /// and a fresh instance re-attached at the same point.
    ///
    /// Estimator *state* is discarded: the open interpolation bracket, the
    /// pending buffer (each buffered packet is counted seen-but-unestimated
    /// in its own epoch, so the books stay balanced), the per-flow table
    /// (rebuilt empty with the same quantile configuration) and the
    /// per-packet estimate log. The *accounting* — cumulative counters and
    /// the epoch series — survives, because it is the external record of
    /// what happened, not the crashed instance's memory. Returns how many
    /// buffered observations the crash destroyed.
    pub fn reset_cold(&mut self) -> u64 {
        let dropped = self.buffer.len() as u64;
        for p in std::mem::take(&mut self.buffer) {
            self.count_unestimated(p.at);
        }
        self.left = None;
        self.flows = match self.flows.quantile_p() {
            Some(p) => FlowTable::with_quantile(p),
            None => FlowTable::new(),
        };
        self.estimates.clear();
        dropped
    }

    /// Finish the run: packets still buffered after the last reference are
    /// unestimable. Returns the per-flow table and final counters.
    pub fn finish(mut self) -> ReceiverReport<S> {
        for p in std::mem::take(&mut self.buffer) {
            self.count_unestimated(p.at);
        }
        ReceiverReport {
            flows: self.flows,
            counters: self.counters,
            estimates: self.estimates,
            epochs: self.epochs.map(EpochTracker::into_vec).unwrap_or_default(),
        }
    }

    /// Borrow the per-flow table accumulated so far.
    pub fn flows(&self) -> &FlowTable<S> {
        &self.flows
    }

    /// The per-epoch snapshots accumulated so far (empty unless
    /// [`ReceiverConfig::epoch_ns`] is set) — a streaming consumer can read
    /// the series mid-run, before [`RliReceiver::finish`].
    pub fn epoch_snapshots(&self) -> impl Iterator<Item = &EpochSnapshot> {
        self.epochs.iter().flat_map(|t| t.iter())
    }
}

/// Final output of a receiver.
#[derive(Debug, Clone)]
pub struct ReceiverReport<S: BuildHasher = FxBuildHasher> {
    /// Per-flow estimated/true statistics.
    pub flows: FlowTable<S>,
    /// Counters.
    pub counters: ReceiverCounters,
    /// Per-packet estimate log (empty unless
    /// [`ReceiverConfig::record_estimates`] was set).
    pub estimates: Vec<EstimateRecord>,
    /// Per-epoch snapshot series in epoch order (empty unless
    /// [`ReceiverConfig::epoch_ns`] was set).
    pub epochs: Vec<EpochSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    fn rx() -> RliReceiver {
        RliReceiver::new(ReceiverConfig::for_sender(SenderId(1)))
    }

    fn ref_info(seq: u32, tx_ns: u64) -> ReferenceInfo {
        ReferenceInfo {
            sender: SenderId(1),
            seq,
            tx_timestamp: SimTime::from_nanos(tx_ns),
        }
    }

    #[test]
    fn linear_interpolation_end_to_end() {
        let mut r = rx();
        // Ref 0: sent at 0, arrives at 100 → delay 100.
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        // Regular at 150, exactly between refs.
        r.on_regular(
            SimTime::from_nanos(150),
            fk(1),
            Some(SimDuration::from_nanos(140)),
        );
        // Ref 1: sent at 60, arrives at 200 → delay 140... use 200-60=140? No:
        // delay = arrival - tx = 200 - 0? Use tx=60 → 140.
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 60));
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 1);
        let acc = rep.flows.get(&fk(1)).unwrap();
        // left delay 100 @100, right delay 140 @200 → at 150: 120.
        assert_eq!(acc.est.mean(), Some(120.0));
        assert_eq!(acc.truth.mean(), Some(140.0));
    }

    #[test]
    fn packets_before_first_ref_are_unestimated() {
        let mut r = rx();
        r.on_regular(SimTime::from_nanos(10), fk(1), None);
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 100));
        let rep = r.finish();
        assert_eq!(rep.counters.unestimated, 1);
        assert_eq!(rep.counters.estimated, 0);
    }

    #[test]
    fn packets_after_last_ref_are_unestimated() {
        let mut r = rx();
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(150), fk(1), None);
        let rep = r.finish();
        assert_eq!(rep.counters.unestimated, 1);
    }

    #[test]
    fn foreign_references_ignored() {
        let mut r = rx();
        let foreign = ReferenceInfo {
            sender: SenderId(99),
            seq: 0,
            tx_timestamp: SimTime::ZERO,
        };
        r.on_reference(SimTime::from_nanos(50), &foreign);
        r.on_regular(SimTime::from_nanos(60), fk(1), None);
        let rep = r.finish();
        assert_eq!(rep.counters.refs_foreign, 1);
        assert_eq!(rep.counters.refs_accepted, 0);
        // The foreign ref did not open an interval.
        assert_eq!(rep.counters.unestimated, 1);
    }

    #[test]
    fn on_packet_dispatches_by_kind() {
        let mut r = rx();
        let refpkt = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        r.on_packet(SimTime::from_nanos(100), &refpkt, None);
        let reg = Packet::regular(2, fk(1), 100, SimTime::ZERO);
        r.on_packet(
            SimTime::from_nanos(150),
            &reg,
            Some(SimDuration::from_nanos(120)),
        );
        let cross = Packet::cross(3, fk(2), 100, SimTime::ZERO);
        r.on_packet(SimTime::from_nanos(160), &cross, None);
        let refpkt2 = Packet::reference(4, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
        r.on_packet(SimTime::from_nanos(200), &refpkt2, None);
        let rep = r.finish();
        assert_eq!(rep.counters.regulars_seen, 1, "cross must not be metered");
        assert_eq!(rep.counters.estimated, 1);
        assert_eq!(rep.counters.refs_accepted, 2);
    }

    #[test]
    fn lost_reference_stretches_interval() {
        // Refs 0 and 2 arrive; ref 1 was lost. Packets in between are still
        // estimated — against the wider bracket.
        let mut r = rx();
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0)); // delay 100
        r.on_regular(SimTime::from_nanos(200), fk(1), None);
        r.on_regular(SimTime::from_nanos(400), fk(1), None);
        r.on_reference(SimTime::from_nanos(500), &ref_info(2, 200)); // delay 300
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 2);
        let acc = rep.flows.get(&fk(1)).unwrap();
        // at 200: 100 + (300-100)·0.25 = 150; at 400: 100 + 200·0.75 = 250.
        assert_eq!(acc.est.mean(), Some(200.0));
    }

    #[test]
    fn buffer_cap_counts_overflow() {
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.max_buffer = 2;
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_reference(SimTime::from_nanos(10), &ref_info(0, 0));
        for i in 0..5u64 {
            r.on_regular(SimTime::from_nanos(20 + i), fk(1), None);
        }
        r.on_reference(SimTime::from_nanos(100), &ref_info(1, 90));
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 2);
        assert_eq!(rep.counters.unestimated, 3);
    }

    #[test]
    fn skewed_receiver_clock_biases_delay() {
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.clock = ClockModel::with_offset(-50);
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(150), fk(1), None);
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 100));
        let rep = r.finish();
        let acc = rep.flows.get(&fk(1)).unwrap();
        // True delays 100 and 100; measured 50 and 50 (clock lags by 50).
        assert_eq!(acc.est.mean(), Some(50.0));
    }

    #[test]
    fn epochs_bin_by_observation_time_not_estimation_time() {
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.epoch_ns = Some(100);
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0)); // delay 100
        r.on_regular(SimTime::from_nanos(150), fk(1), None); // epoch 1
        r.on_regular(SimTime::from_nanos(250), fk(1), None); // epoch 2
                                                             // Closing ref arrives in epoch 5 — estimates still land in 1 and 2.
        r.on_reference(SimTime::from_nanos(500), &ref_info(1, 400)); // delay 100
                                                                     // Mid-run visibility: snapshots exist before finish.
        assert_eq!(r.epoch_snapshots().map(|e| e.estimated).sum::<u64>(), 2);
        let rep = r.finish();
        assert_eq!(rep.epochs.len(), 5); // dense epochs 1..=5
        assert_eq!(rep.epochs[0].epoch, 1);
        assert_eq!(rep.epochs[0].estimated, 1);
        assert_eq!(rep.epochs[0].est_mean(), Some(100.0));
        assert_eq!(rep.epochs[1].estimated, 1);
        assert!(rep.epochs[2].is_empty() && rep.epochs[3].is_empty());
        assert_eq!(rep.epochs[4].refs_accepted, 1);
        // The cumulative view is untouched by the epoch dimension.
        assert_eq!(rep.counters.estimated, 2);
        assert_eq!(rep.flows.get(&fk(1)).unwrap().est.mean(), Some(100.0));
    }

    #[test]
    fn epoch_overflow_counts_unestimated_in_the_shedding_epoch() {
        // The buffer-cap satellite: overflow is charged to the epoch of the
        // packet that was shed, visible in that epoch's `unestimated`.
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.max_buffer = 2;
        cfg.epoch_ns = Some(100);
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_regular(SimTime::from_nanos(50), fk(1), None); // epoch 0: before first ref
        r.on_reference(SimTime::from_nanos(90), &ref_info(0, 0));
        for at in [110u64, 120, 130, 240] {
            r.on_regular(SimTime::from_nanos(at), fk(1), None);
        }
        r.on_reference(SimTime::from_nanos(300), &ref_info(1, 250));
        r.on_regular(SimTime::from_nanos(350), fk(1), None); // after last ref
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 2);
        assert_eq!(rep.counters.unestimated, 4);
        // Epoch 0: the pre-first-ref packet.
        assert_eq!(rep.epochs[0].unestimated, 1);
        // Epoch 1: 130 shed by the cap (buffer held 110 and 120).
        assert_eq!(rep.epochs[1].unestimated, 1);
        assert_eq!(rep.epochs[1].estimated, 2);
        // Epoch 2: 240 shed by the cap too (buffer not yet drained).
        assert_eq!(rep.epochs[2].unestimated, 1);
        // Epoch 3: 350 stranded after the last reference.
        assert_eq!(rep.epochs[3].unestimated, 1);
        let per_epoch: u64 = rep.epochs.iter().map(|e| e.unestimated).sum();
        assert_eq!(per_epoch, rep.counters.unestimated, "epochs must tally");
    }

    #[test]
    fn no_epochs_without_config() {
        let mut r = rx();
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(150), fk(1), None);
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 100));
        assert_eq!(r.epoch_snapshots().count(), 0);
        assert!(r.finish().epochs.is_empty());
    }

    #[test]
    fn per_flow_separation() {
        let mut r = rx();
        // Rising delay across the interval (100 → 140) separates the flows.
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(120), fk(1), None);
        r.on_regular(SimTime::from_nanos(180), fk(2), None);
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 60));
        let rep = r.finish();
        assert_eq!(rep.flows.flow_count(), 2);
        assert!(
            rep.flows.get(&fk(1)).unwrap().est.mean().unwrap()
                < rep.flows.get(&fk(2)).unwrap().est.mean().unwrap()
        );
    }
}
