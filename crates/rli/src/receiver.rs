//! The RLI receiver.
//!
//! §2: the receiver computes true delays of reference packets from their
//! embedded timestamps and its own synchronised clock, holds regular packets
//! that arrive between two reference packets in an *interpolation buffer*,
//! and, when the closing reference arrives, estimates every buffered
//! packet's delay by linear interpolation and folds it into per-flow
//! statistics.
//!
//! The receiver is demultiplexing-aware in the minimal RLI sense: it is
//! bound to one sender id and ignores reference packets from other senders
//! (RLIR's full demultiplexer in the `rlir` crate decides which *regular*
//! packets to hand to which receiver instance).

use crate::flowstats::FlowTable;
use crate::interpolate::{DelaySample, Interpolator};
use rlir_net::clock::ClockModel;
use rlir_net::fxhash::FxBuildHasher;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::hash::BuildHasher;

/// Receiver configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReceiverConfig {
    /// Accept reference packets only from this sender.
    pub sender: SenderId,
    /// The receiver's local clock.
    pub clock: ClockModel,
    /// Delay estimator (the paper uses linear interpolation).
    pub interpolator: Interpolator,
    /// Safety cap on the interpolation buffer; packets beyond it are counted
    /// as unestimated rather than growing memory without bound (e.g. if the
    /// reference stream dies).
    pub max_buffer: usize,
    /// Keep a per-packet log of `(time, flow, estimate, truth)` records in
    /// addition to the per-flow aggregation. Costs memory proportional to
    /// traffic; enables per-packet error CDFs and time-windowed analyses.
    pub record_estimates: bool,
}

impl ReceiverConfig {
    /// Standard configuration for a sender id: perfect clock, linear
    /// interpolation, 1M-packet buffer cap, no per-packet log.
    pub fn for_sender(sender: SenderId) -> Self {
        ReceiverConfig {
            sender,
            clock: ClockModel::perfect(),
            interpolator: Interpolator::Linear,
            max_buffer: 1 << 20,
            record_estimates: false,
        }
    }
}

/// One per-packet estimate, logged when
/// [`ReceiverConfig::record_estimates`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateRecord {
    /// Arrival time of the packet at the receiver.
    pub at: SimTime,
    /// The packet's flow.
    pub flow: rlir_net::FlowKey,
    /// Interpolated delay estimate, ns.
    pub est_ns: f64,
    /// Ground-truth delay, ns (simulation only).
    pub truth_ns: Option<f64>,
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ReceiverCounters {
    /// Reference packets accepted from the bound sender.
    pub refs_accepted: u64,
    /// Reference packets from other senders (ignored).
    pub refs_foreign: u64,
    /// Regular packets offered to the receiver.
    pub regulars_seen: u64,
    /// Per-packet estimates produced.
    pub estimated: u64,
    /// Regular packets that could not be estimated (before the first
    /// reference, after the last, or over the buffer cap).
    pub unestimated: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    at: SimTime,
    flow: rlir_net::FlowKey,
    truth_ns: Option<f64>,
}

/// An RLI receiver instance.
///
/// Generic over the per-flow table's hash builder (see [`FlowTable`]);
/// defaults to FxHash for the simulation hot path.
#[derive(Debug, Clone)]
pub struct RliReceiver<S: BuildHasher = FxBuildHasher> {
    cfg: ReceiverConfig,
    left: Option<DelaySample>,
    buffer: Vec<Pending>,
    flows: FlowTable<S>,
    counters: ReceiverCounters,
    estimates: Vec<EstimateRecord>,
}

impl<S: BuildHasher + Default> RliReceiver<S> {
    /// Build from configuration.
    pub fn new(cfg: ReceiverConfig) -> Self {
        RliReceiver {
            cfg,
            left: None,
            buffer: Vec::new(),
            flows: FlowTable::new(),
            counters: ReceiverCounters::default(),
            estimates: Vec::new(),
        }
    }

    /// Build with a per-flow quantile tracker enabled (see
    /// [`FlowTable::with_quantile`]).
    pub fn with_quantile(cfg: ReceiverConfig, p: f64) -> Self {
        RliReceiver {
            flows: FlowTable::with_quantile(p),
            ..Self::new(cfg)
        }
    }

    /// The bound sender.
    pub fn sender(&self) -> SenderId {
        self.cfg.sender
    }

    /// Current counters.
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }

    /// Offer a packet arriving at the receiver's interface at (true) time
    /// `at`. `truth` is the simulator's ground-truth delay for evaluation
    /// (`None` in deployment). Dispatches on packet kind.
    pub fn on_packet(&mut self, at: SimTime, pkt: &Packet, truth: Option<SimDuration>) {
        match pkt.reference_info() {
            Some(info) => self.on_reference(at, info),
            None => {
                if pkt.is_regular() {
                    self.on_regular(at, pkt.flow, truth);
                }
                // Cross traffic is invisible to the measurement plane.
            }
        }
    }

    /// A regular packet arrived: buffer it for interpolation.
    pub fn on_regular(&mut self, at: SimTime, flow: rlir_net::FlowKey, truth: Option<SimDuration>) {
        self.counters.regulars_seen += 1;
        if self.left.is_none() {
            // Before the first reference there is no bracket; RLI cannot
            // estimate these packets.
            self.counters.unestimated += 1;
            return;
        }
        if self.buffer.len() >= self.cfg.max_buffer {
            self.counters.unestimated += 1;
            return;
        }
        self.buffer.push(Pending {
            at,
            flow,
            truth_ns: truth.map(|d| d.as_nanos() as f64),
        });
    }

    /// A reference packet arrived: if it is ours, close the current
    /// interpolation interval and estimate everything buffered inside it.
    pub fn on_reference(&mut self, at: SimTime, info: &ReferenceInfo) {
        if info.sender != self.cfg.sender {
            self.counters.refs_foreign += 1;
            return;
        }
        self.counters.refs_accepted += 1;
        let rx_local = self.cfg.clock.observe(at);
        let delay_ns = rx_local.signed_delta_nanos(info.tx_timestamp) as f64;
        let right = DelaySample::new(at, delay_ns);
        if let Some(left) = self.left {
            // One slope division per interval; one multiply-add per packet.
            let segment = self.cfg.interpolator.segment(left, right);
            for p in self.buffer.drain(..) {
                let est = segment.estimate_at(p.at);
                self.flows.record(p.flow, est, p.truth_ns);
                if self.cfg.record_estimates {
                    self.estimates.push(EstimateRecord {
                        at: p.at,
                        flow: p.flow,
                        est_ns: est,
                        truth_ns: p.truth_ns,
                    });
                }
                self.counters.estimated += 1;
            }
        } else {
            debug_assert!(self.buffer.is_empty(), "buffered without a left ref");
        }
        self.left = Some(right);
    }

    /// Finish the run: packets still buffered after the last reference are
    /// unestimable. Returns the per-flow table and final counters.
    pub fn finish(mut self) -> ReceiverReport<S> {
        self.counters.unestimated += self.buffer.len() as u64;
        self.buffer.clear();
        ReceiverReport {
            flows: self.flows,
            counters: self.counters,
            estimates: self.estimates,
        }
    }

    /// Borrow the per-flow table accumulated so far.
    pub fn flows(&self) -> &FlowTable<S> {
        &self.flows
    }
}

/// Final output of a receiver.
#[derive(Debug, Clone)]
pub struct ReceiverReport<S: BuildHasher = FxBuildHasher> {
    /// Per-flow estimated/true statistics.
    pub flows: FlowTable<S>,
    /// Counters.
    pub counters: ReceiverCounters,
    /// Per-packet estimate log (empty unless
    /// [`ReceiverConfig::record_estimates`] was set).
    pub estimates: Vec<EstimateRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    fn rx() -> RliReceiver {
        RliReceiver::new(ReceiverConfig::for_sender(SenderId(1)))
    }

    fn ref_info(seq: u32, tx_ns: u64) -> ReferenceInfo {
        ReferenceInfo {
            sender: SenderId(1),
            seq,
            tx_timestamp: SimTime::from_nanos(tx_ns),
        }
    }

    #[test]
    fn linear_interpolation_end_to_end() {
        let mut r = rx();
        // Ref 0: sent at 0, arrives at 100 → delay 100.
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        // Regular at 150, exactly between refs.
        r.on_regular(
            SimTime::from_nanos(150),
            fk(1),
            Some(SimDuration::from_nanos(140)),
        );
        // Ref 1: sent at 60, arrives at 200 → delay 140... use 200-60=140? No:
        // delay = arrival - tx = 200 - 0? Use tx=60 → 140.
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 60));
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 1);
        let acc = rep.flows.get(&fk(1)).unwrap();
        // left delay 100 @100, right delay 140 @200 → at 150: 120.
        assert_eq!(acc.est.mean(), Some(120.0));
        assert_eq!(acc.truth.mean(), Some(140.0));
    }

    #[test]
    fn packets_before_first_ref_are_unestimated() {
        let mut r = rx();
        r.on_regular(SimTime::from_nanos(10), fk(1), None);
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 100));
        let rep = r.finish();
        assert_eq!(rep.counters.unestimated, 1);
        assert_eq!(rep.counters.estimated, 0);
    }

    #[test]
    fn packets_after_last_ref_are_unestimated() {
        let mut r = rx();
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(150), fk(1), None);
        let rep = r.finish();
        assert_eq!(rep.counters.unestimated, 1);
    }

    #[test]
    fn foreign_references_ignored() {
        let mut r = rx();
        let foreign = ReferenceInfo {
            sender: SenderId(99),
            seq: 0,
            tx_timestamp: SimTime::ZERO,
        };
        r.on_reference(SimTime::from_nanos(50), &foreign);
        r.on_regular(SimTime::from_nanos(60), fk(1), None);
        let rep = r.finish();
        assert_eq!(rep.counters.refs_foreign, 1);
        assert_eq!(rep.counters.refs_accepted, 0);
        // The foreign ref did not open an interval.
        assert_eq!(rep.counters.unestimated, 1);
    }

    #[test]
    fn on_packet_dispatches_by_kind() {
        let mut r = rx();
        let refpkt = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        r.on_packet(SimTime::from_nanos(100), &refpkt, None);
        let reg = Packet::regular(2, fk(1), 100, SimTime::ZERO);
        r.on_packet(
            SimTime::from_nanos(150),
            &reg,
            Some(SimDuration::from_nanos(120)),
        );
        let cross = Packet::cross(3, fk(2), 100, SimTime::ZERO);
        r.on_packet(SimTime::from_nanos(160), &cross, None);
        let refpkt2 = Packet::reference(4, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
        r.on_packet(SimTime::from_nanos(200), &refpkt2, None);
        let rep = r.finish();
        assert_eq!(rep.counters.regulars_seen, 1, "cross must not be metered");
        assert_eq!(rep.counters.estimated, 1);
        assert_eq!(rep.counters.refs_accepted, 2);
    }

    #[test]
    fn lost_reference_stretches_interval() {
        // Refs 0 and 2 arrive; ref 1 was lost. Packets in between are still
        // estimated — against the wider bracket.
        let mut r = rx();
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0)); // delay 100
        r.on_regular(SimTime::from_nanos(200), fk(1), None);
        r.on_regular(SimTime::from_nanos(400), fk(1), None);
        r.on_reference(SimTime::from_nanos(500), &ref_info(2, 200)); // delay 300
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 2);
        let acc = rep.flows.get(&fk(1)).unwrap();
        // at 200: 100 + (300-100)·0.25 = 150; at 400: 100 + 200·0.75 = 250.
        assert_eq!(acc.est.mean(), Some(200.0));
    }

    #[test]
    fn buffer_cap_counts_overflow() {
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.max_buffer = 2;
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_reference(SimTime::from_nanos(10), &ref_info(0, 0));
        for i in 0..5u64 {
            r.on_regular(SimTime::from_nanos(20 + i), fk(1), None);
        }
        r.on_reference(SimTime::from_nanos(100), &ref_info(1, 90));
        let rep = r.finish();
        assert_eq!(rep.counters.estimated, 2);
        assert_eq!(rep.counters.unestimated, 3);
    }

    #[test]
    fn skewed_receiver_clock_biases_delay() {
        let mut cfg = ReceiverConfig::for_sender(SenderId(1));
        cfg.clock = ClockModel::with_offset(-50);
        let mut r: RliReceiver = RliReceiver::new(cfg);
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(150), fk(1), None);
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 100));
        let rep = r.finish();
        let acc = rep.flows.get(&fk(1)).unwrap();
        // True delays 100 and 100; measured 50 and 50 (clock lags by 50).
        assert_eq!(acc.est.mean(), Some(50.0));
    }

    #[test]
    fn per_flow_separation() {
        let mut r = rx();
        // Rising delay across the interval (100 → 140) separates the flows.
        r.on_reference(SimTime::from_nanos(100), &ref_info(0, 0));
        r.on_regular(SimTime::from_nanos(120), fk(1), None);
        r.on_regular(SimTime::from_nanos(180), fk(2), None);
        r.on_reference(SimTime::from_nanos(200), &ref_info(1, 60));
        let rep = r.finish();
        assert_eq!(rep.flows.flow_count(), 2);
        assert!(
            rep.flows.get(&fk(1)).unwrap().est.mean().unwrap()
                < rep.flows.get(&fk(2)).unwrap().est.mean().unwrap()
        );
    }
}
