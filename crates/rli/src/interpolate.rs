//! Delay interpolation between reference packets.
//!
//! The heart of RLI (§2): "Given the delays of the two reference packets …
//! and arrival times of the reference and regular packets, RLI uses linear
//! interpolation to estimate per-packet latency." The linear estimator is
//! the paper's; the constant/midpoint variants are ablation baselines that
//! quantify how much the *slope* of the interpolation actually buys
//! (experiment A2 in DESIGN.md).

use rlir_net::time::SimTime;
use serde::{Deserialize, Serialize};

/// A known (arrival time, one-way delay) sample from a reference packet.
/// Delay is in signed nanoseconds — clock skew can produce negative
/// measured delays, which the estimator must propagate rather than hide.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelaySample {
    /// Arrival time at the receiver (receiver clock).
    pub at: SimTime,
    /// Measured one-way delay in nanoseconds.
    pub delay_ns: f64,
}

impl DelaySample {
    /// Construct from raw parts.
    pub fn new(at: SimTime, delay_ns: f64) -> Self {
        DelaySample { at, delay_ns }
    }
}

/// Estimator choice for delays of regular packets between two reference
/// samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Interpolator {
    /// The paper's estimator: linear interpolation between the bracketing
    /// reference delays, evaluated at the regular packet's arrival time.
    #[default]
    Linear,
    /// Use the delay of the *preceding* reference packet (zero-order hold).
    LeftConstant,
    /// Use the delay of the *following* reference packet.
    RightConstant,
    /// Average of the two bracketing delays, ignoring arrival position.
    Midpoint,
}

impl Interpolator {
    /// Estimate the delay (ns) of a packet arriving at `t`, bracketed by
    /// reference samples `left` and `right` (`left.at <= t <= right.at`
    /// expected; `t` outside the bracket is clamped).
    pub fn estimate(&self, left: DelaySample, right: DelaySample, t: SimTime) -> f64 {
        match self {
            Interpolator::LeftConstant => left.delay_ns,
            Interpolator::RightConstant => right.delay_ns,
            Interpolator::Midpoint => 0.5 * (left.delay_ns + right.delay_ns),
            Interpolator::Linear => {
                let span = right.at.signed_delta_nanos(left.at);
                if span <= 0 {
                    // Degenerate bracket: both references landed together.
                    return 0.5 * (left.delay_ns + right.delay_ns);
                }
                let x = t.signed_delta_nanos(left.at) as f64 / span as f64;
                let x = x.clamp(0.0, 1.0);
                left.delay_ns + (right.delay_ns - left.delay_ns) * x
            }
        }
    }

    /// Precompute a per-interval estimator for the bracket `[left, right]`.
    ///
    /// The receiver estimates every buffered packet of an interval against
    /// the same bracket; hoisting the slope division out of the per-packet
    /// loop turns each estimate into one multiply-add. Agrees with
    /// [`Interpolator::estimate`] up to floating-point associativity.
    #[inline]
    pub fn segment(&self, left: DelaySample, right: DelaySample) -> Segment {
        match self {
            Interpolator::LeftConstant => Segment::Const(left.delay_ns),
            Interpolator::RightConstant => Segment::Const(right.delay_ns),
            Interpolator::Midpoint => Segment::Const(0.5 * (left.delay_ns + right.delay_ns)),
            Interpolator::Linear => {
                let span = right.at.signed_delta_nanos(left.at);
                if span <= 0 {
                    // Degenerate bracket: both references landed together.
                    Segment::Const(0.5 * (left.delay_ns + right.delay_ns))
                } else {
                    Segment::Affine {
                        left_at: left.at,
                        span,
                        base: left.delay_ns,
                        slope: (right.delay_ns - left.delay_ns) / span as f64,
                    }
                }
            }
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Interpolator::Linear => "linear",
            Interpolator::LeftConstant => "left-constant",
            Interpolator::RightConstant => "right-constant",
            Interpolator::Midpoint => "midpoint",
        }
    }

    /// All variants, for ablation sweeps.
    pub fn all() -> [Interpolator; 4] {
        [
            Interpolator::Linear,
            Interpolator::LeftConstant,
            Interpolator::RightConstant,
            Interpolator::Midpoint,
        ]
    }
}

/// A per-interval estimator produced by [`Interpolator::segment`]: the
/// slope division is paid once per reference interval, not once per packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Segment {
    /// Interval-constant estimate (the constant/midpoint ablations, or a
    /// degenerate zero-span bracket).
    Const(f64),
    /// Linear interpolation with a precomputed slope.
    Affine {
        /// Arrival time of the opening reference.
        left_at: SimTime,
        /// Bracket width in nanoseconds (`> 0`).
        span: i64,
        /// Delay at the opening reference, ns.
        base: f64,
        /// Delay change per nanosecond across the bracket.
        slope: f64,
    },
}

impl Segment {
    /// Estimate the delay (ns) of a packet arriving at `t` (clamped to the
    /// bracket, like [`Interpolator::estimate`]).
    #[inline]
    pub fn estimate_at(&self, t: SimTime) -> f64 {
        match *self {
            Segment::Const(v) => v,
            Segment::Affine {
                left_at,
                span,
                base,
                slope,
            } => {
                let dt = t.signed_delta_nanos(left_at).clamp(0, span);
                base + dt as f64 * slope
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(at_ns: u64, delay: f64) -> DelaySample {
        DelaySample::new(SimTime::from_nanos(at_ns), delay)
    }

    #[test]
    fn segment_agrees_with_estimate() {
        let left = s(100, 50.0);
        let right = s(1100, 250.0);
        for interp in Interpolator::all() {
            let seg = interp.segment(left, right);
            for t_ns in [0u64, 100, 350, 600, 1100, 2000] {
                let t = SimTime::from_nanos(t_ns);
                let a = interp.estimate(left, right, t);
                let b = seg.estimate_at(t);
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{interp:?} at {t_ns}: {a} vs {b}"
                );
            }
        }
        // Degenerate bracket falls back to the midpoint constant.
        let seg = Interpolator::Linear.segment(s(500, 10.0), s(500, 30.0));
        assert_eq!(seg, Segment::Const(20.0));
    }

    #[test]
    fn linear_midpoint_of_bracket() {
        let est =
            Interpolator::Linear.estimate(s(0, 100.0), s(1000, 300.0), SimTime::from_nanos(500));
        assert!((est - 200.0).abs() < 1e-9);
    }

    #[test]
    fn linear_at_endpoints_matches_references() {
        let (l, r) = (s(100, 50.0), s(900, 250.0));
        assert_eq!(Interpolator::Linear.estimate(l, r, l.at), 50.0);
        assert_eq!(Interpolator::Linear.estimate(l, r, r.at), 250.0);
    }

    #[test]
    fn linear_clamps_outside_bracket() {
        let (l, r) = (s(100, 50.0), s(900, 250.0));
        assert_eq!(
            Interpolator::Linear.estimate(l, r, SimTime::from_nanos(0)),
            50.0
        );
        assert_eq!(
            Interpolator::Linear.estimate(l, r, SimTime::from_nanos(5000)),
            250.0
        );
    }

    #[test]
    fn linear_is_bounded_by_endpoint_delays() {
        let (l, r) = (s(0, 120.0), s(10_000, 80.0));
        for t in (0..=10_000).step_by(250) {
            let e = Interpolator::Linear.estimate(l, r, SimTime::from_nanos(t));
            assert!((80.0..=120.0).contains(&e), "t={t} est={e}");
        }
    }

    #[test]
    fn degenerate_bracket_uses_average() {
        let est =
            Interpolator::Linear.estimate(s(500, 10.0), s(500, 30.0), SimTime::from_nanos(500));
        assert!((est - 20.0).abs() < 1e-9);
    }

    #[test]
    fn negative_delays_propagate() {
        // Clock skew can make measured reference delays negative; the
        // estimator must not clamp them away.
        let est =
            Interpolator::Linear.estimate(s(0, -100.0), s(100, -50.0), SimTime::from_nanos(50));
        assert!((est - -75.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_variants() {
        let (l, r) = (s(0, 100.0), s(1000, 300.0));
        let t = SimTime::from_nanos(900);
        assert_eq!(Interpolator::LeftConstant.estimate(l, r, t), 100.0);
        assert_eq!(Interpolator::RightConstant.estimate(l, r, t), 300.0);
        assert_eq!(Interpolator::Midpoint.estimate(l, r, t), 200.0);
        let lin = Interpolator::Linear.estimate(l, r, t);
        assert!((lin - 280.0).abs() < 1e-9);
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(Interpolator::all().len(), 4);
        assert_eq!(Interpolator::default(), Interpolator::Linear);
        assert_eq!(Interpolator::Linear.label(), "linear");
    }
}
