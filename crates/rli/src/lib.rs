//! # rlir-rli — Reference Latency Interpolation
//!
//! The RLI mechanism (Lee et al., SIGCOMM 2010) that RLIR deploys across
//! routers — the substrate described in §2 of the paper:
//!
//! * [`policy`] — reference-packet injection: the static *1-and-n* scheme
//!   and the adaptive scheme (1-and-10 … 1-and-300, driven by a windowed
//!   utilization estimate of the sender's own link).
//! * [`sender`] — the sender instance: watches regular traffic, stamps and
//!   emits reference packets (one stream per downstream receiver/path), and
//!   an iterator adapter that instruments a trace in-line.
//! * [`interpolate`] — the linear-interpolation delay estimator plus
//!   ablation variants.
//! * [`receiver`] — the receiver instance: reference-delay measurement,
//!   interpolation buffer, per-packet estimation.
//! * [`flowstats`] — per-flow aggregation of estimated vs true delay (mean
//!   and standard deviation, the paper's two evaluated statistics).
//! * [`epoch`] — epoch-windowed snapshots: the bounded-size per-epoch
//!   export a deployed receiver streams off the router, mergeable across
//!   instances into segment-level latency time-series.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod epoch;
pub mod flowstats;
pub mod interpolate;
pub mod policy;
pub mod receiver;
pub mod sender;

pub use epoch::{merge_epoch_series, EpochSnapshot};
pub use flowstats::{FlowAccumulator, FlowArena, FlowReport, FlowTable, SipFlowTable};
pub use interpolate::{DelaySample, Interpolator, Segment};
pub use policy::{
    AdaptiveConfig, AdaptivePolicy, InjectionPolicy, Policy, PolicyKind, StaticPolicy,
};
pub use receiver::{EstimateRecord, ReceiverConfig, ReceiverCounters, ReceiverReport, RliReceiver};
pub use sender::{InstrumentedStream, RliSender, REF_ID_BASE};
