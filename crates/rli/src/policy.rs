//! Reference-packet injection policies.
//!
//! §3.2/§4.1: "An RLI sender can inject reference packets statically or
//! adaptively. Static injection scheme is a way to inject a reference packet
//! after every n regular packets, which we call 1-and-n scheme. Adaptive
//! scheme dynamically adjusts the injection rate based on the link
//! utilization of a link where the sender is running. The injection rate is
//! controlled by a decreasing function of link utilization … between
//! 1-and-10 and 1-and-300."
//!
//! RLIR's answer to unknown cross traffic is the static scheme at a
//! worst-case-safe rate (1-and-100 in the paper's experiments).

use rlir_stats::UtilizationEstimator;
use serde::{Deserialize, Serialize};

/// Decides, for every regular packet the sender observes, whether to inject
/// a reference packet after it.
pub trait InjectionPolicy {
    /// Observe one regular packet (`now_ns`, `bytes`); return `true` to
    /// inject a reference packet immediately after it.
    fn on_regular(&mut self, now_ns: u64, bytes: u32) -> bool;

    /// The current 1-and-n spacing (for introspection/telemetry).
    fn current_n(&self) -> u32;
}

/// The paper's static *1-and-n* scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticPolicy {
    n: u32,
    since_last: u32,
}

impl StaticPolicy {
    /// Inject one reference after every `n` regular packets (`n ≥ 1`).
    pub fn one_in(n: u32) -> Self {
        assert!(n >= 1, "1-and-n requires n >= 1");
        StaticPolicy { n, since_last: 0 }
    }

    /// The paper's worst-case-safe RLIR setting, 1-and-100.
    pub fn paper_default() -> Self {
        Self::one_in(100)
    }
}

impl InjectionPolicy for StaticPolicy {
    fn on_regular(&mut self, _now_ns: u64, _bytes: u32) -> bool {
        self.since_last += 1;
        if self.since_last >= self.n {
            self.since_last = 0;
            true
        } else {
            false
        }
    }

    fn current_n(&self) -> u32 {
        self.n
    }
}

/// Knobs of the adaptive policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Densest spacing (paper: 10 → 1-and-10).
    pub min_n: u32,
    /// Sparsest spacing (paper: 300 → 1-and-300).
    pub max_n: u32,
    /// Utilization at or below which the densest rate is used.
    pub low_util: f64,
    /// Utilization at or above which the sparsest rate is used.
    pub high_util: f64,
    /// Link rate used for the utilization estimate, bits/s.
    pub link_rate_bps: u64,
    /// Averaging window for the utilization estimate, ns.
    pub window_ns: u64,
    /// EWMA smoothing factor across windows.
    pub alpha: f64,
}

impl AdaptiveConfig {
    /// Paper-configured adaptive scheme on an OC-192 sender link.
    pub fn paper_default() -> Self {
        AdaptiveConfig {
            min_n: 10,
            max_n: 300,
            low_util: 0.30,
            high_util: 0.90,
            link_rate_bps: 9_953_000_000,
            window_ns: 1_000_000, // 1 ms windows
            alpha: 0.25,
        }
    }
}

/// The adaptive scheme: spacing `n` grows from `min_n` to `max_n` as local
/// link utilization rises from `low_util` to `high_util` (injection rate is
/// a *decreasing* function of utilization). The geometric interpolation
/// keeps the rate transition smooth across the order-of-magnitude span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    util: UtilizationEstimator,
    since_last: u32,
}

impl AdaptivePolicy {
    /// Build from configuration.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.min_n >= 1 && cfg.max_n >= cfg.min_n, "bad n range");
        assert!(
            (0.0..1.0).contains(&cfg.low_util) && cfg.high_util > cfg.low_util,
            "bad utilization knots"
        );
        AdaptivePolicy {
            util: UtilizationEstimator::new(cfg.link_rate_bps, cfg.window_ns, cfg.alpha),
            cfg,
            since_last: 0,
        }
    }

    /// The paper's adaptive configuration.
    pub fn paper_default() -> Self {
        Self::new(AdaptiveConfig::paper_default())
    }

    /// Current local-utilization estimate in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.util.utilization()
    }

    /// Spacing for a given utilization (exposed for tests/plots).
    pub fn n_for_utilization(cfg: &AdaptiveConfig, u: f64) -> u32 {
        let span = cfg.high_util - cfg.low_util;
        let x = ((u - cfg.low_util) / span).clamp(0.0, 1.0);
        let ratio = cfg.max_n as f64 / cfg.min_n as f64;
        (cfg.min_n as f64 * ratio.powf(x)).round() as u32
    }
}

impl InjectionPolicy for AdaptivePolicy {
    fn on_regular(&mut self, now_ns: u64, bytes: u32) -> bool {
        self.util.record(now_ns, bytes);
        self.since_last += 1;
        if self.since_last >= self.current_n() {
            self.since_last = 0;
            true
        } else {
            false
        }
    }

    fn current_n(&self) -> u32 {
        Self::n_for_utilization(&self.cfg, self.util.utilization())
    }
}

/// Enum-dispatch policy used on the sender hot path.
///
/// [`crate::RliSender`] consults its policy once per observed regular
/// packet; boxing that behind `dyn InjectionPolicy` costs an indirect call
/// per packet. The two shipped policies are dispatched statically through
/// this enum; the trait remains the extension point — any other
/// implementation rides along as [`Policy::Custom`] (still boxed, still
/// object-dispatched), and the differential test below pins the enum and
/// boxed forms to identical injection sequences.
pub enum Policy {
    /// The static 1-and-n scheme, statically dispatched.
    Static(StaticPolicy),
    /// The adaptive scheme, statically dispatched.
    Adaptive(AdaptivePolicy),
    /// An out-of-tree policy behind the extension trait.
    Custom(Box<dyn InjectionPolicy + Send>),
}

impl std::fmt::Debug for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Static(p) => f.debug_tuple("Static").field(p).finish(),
            Policy::Adaptive(p) => f.debug_tuple("Adaptive").field(p).finish(),
            Policy::Custom(p) => f
                .debug_tuple("Custom")
                .field(&format_args!("1-and-{}", p.current_n()))
                .finish(),
        }
    }
}

impl InjectionPolicy for Policy {
    #[inline]
    fn on_regular(&mut self, now_ns: u64, bytes: u32) -> bool {
        match self {
            Policy::Static(p) => p.on_regular(now_ns, bytes),
            Policy::Adaptive(p) => p.on_regular(now_ns, bytes),
            Policy::Custom(p) => p.on_regular(now_ns, bytes),
        }
    }

    fn current_n(&self) -> u32 {
        match self {
            Policy::Static(p) => p.current_n(),
            Policy::Adaptive(p) => p.current_n(),
            Policy::Custom(p) => p.current_n(),
        }
    }
}

impl From<StaticPolicy> for Policy {
    fn from(p: StaticPolicy) -> Self {
        Policy::Static(p)
    }
}

impl From<AdaptivePolicy> for Policy {
    fn from(p: AdaptivePolicy) -> Self {
        Policy::Adaptive(p)
    }
}

impl From<Box<dyn InjectionPolicy + Send>> for Policy {
    fn from(p: Box<dyn InjectionPolicy + Send>) -> Self {
        Policy::Custom(p)
    }
}

/// Serialisable policy selector used by experiment configs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Static 1-and-n.
    Static {
        /// The spacing n.
        n: u32,
    },
    /// Adaptive with explicit knobs.
    Adaptive(AdaptiveConfig),
}

impl PolicyKind {
    /// Instantiate the policy (enum-dispatched on the hot path).
    pub fn build(&self) -> Policy {
        match self {
            PolicyKind::Static { n } => Policy::Static(StaticPolicy::one_in(*n)),
            PolicyKind::Adaptive(cfg) => Policy::Adaptive(AdaptivePolicy::new(*cfg)),
        }
    }

    /// Short label used in figure legends ("Static"/"Adaptive").
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Static { .. } => "Static",
            PolicyKind::Adaptive(_) => "Adaptive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_one_in_three() {
        let mut p = StaticPolicy::one_in(3);
        let fired: Vec<bool> = (0..9).map(|i| p.on_regular(i, 100)).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(p.current_n(), 3);
    }

    #[test]
    fn static_one_in_one_fires_every_time() {
        let mut p = StaticPolicy::one_in(1);
        assert!(p.on_regular(0, 1));
        assert!(p.on_regular(1, 1));
    }

    #[test]
    fn paper_static_default_is_1_in_100() {
        let mut p = StaticPolicy::paper_default();
        let fired = (0..1000).filter(|i| p.on_regular(*i, 100)).count();
        assert_eq!(fired, 10);
    }

    #[test]
    fn adaptive_n_is_decreasing_rate_function() {
        let cfg = AdaptiveConfig::paper_default();
        assert_eq!(AdaptivePolicy::n_for_utilization(&cfg, 0.0), 10);
        assert_eq!(AdaptivePolicy::n_for_utilization(&cfg, 0.22), 10);
        assert_eq!(AdaptivePolicy::n_for_utilization(&cfg, 0.30), 10);
        assert_eq!(AdaptivePolicy::n_for_utilization(&cfg, 0.95), 300);
        let mid = AdaptivePolicy::n_for_utilization(&cfg, 0.60);
        assert!((10..300).contains(&mid), "mid spacing {mid}");
        // Monotone non-decreasing in utilization.
        let mut last = 0;
        for i in 0..=20 {
            let n = AdaptivePolicy::n_for_utilization(&cfg, i as f64 / 20.0);
            assert!(n >= last);
            last = n;
        }
    }

    #[test]
    fn adaptive_at_paper_load_uses_highest_rate() {
        // §4.2: "we observe about 22% link utilization, which always
        // triggers the highest injection rate (1-and-10)".
        let mut p = AdaptivePolicy::paper_default();
        // Offer ~22% of 9.953 Gb/s for 50 ms: 0.22·9.953e9/8 B/s.
        let bytes_per_ms = (0.22 * 9.953e9 / 8.0 / 1000.0) as u32;
        let mut fired = 0u32;
        let mut total = 0u32;
        for ms in 0..50u64 {
            // 200 packets per ms window.
            for i in 0..200u64 {
                total += 1;
                if p.on_regular(ms * 1_000_000 + i * 5_000, bytes_per_ms / 200) {
                    fired += 1;
                }
            }
        }
        assert_eq!(p.current_n(), 10, "utilization {:.3}", p.utilization());
        // ~1 in 10 fired.
        let rate = fired as f64 / total as f64;
        assert!((0.08..=0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn adaptive_backs_off_under_load() {
        let mut p = AdaptivePolicy::paper_default();
        // Offer ~95% load for 50 ms.
        let bytes_per_pkt = (0.95 * 9.953e9 / 8.0 / 1000.0 / 200.0) as u32;
        for ms in 0..50u64 {
            for i in 0..200u64 {
                p.on_regular(ms * 1_000_000 + i * 5_000, bytes_per_pkt);
            }
        }
        assert!(p.current_n() > 200, "n = {}", p.current_n());
    }

    #[test]
    fn policy_kind_builds_and_labels() {
        let mut s = PolicyKind::Static { n: 2 }.build();
        assert!(!s.on_regular(0, 1));
        assert!(s.on_regular(1, 1));
        assert_eq!(PolicyKind::Static { n: 2 }.label(), "Static");
        let a = PolicyKind::Adaptive(AdaptiveConfig::paper_default());
        assert_eq!(a.label(), "Adaptive");
        assert_eq!(a.build().current_n(), 10);
    }

    /// Feed the same (time, bytes) stream through a policy and record the
    /// firing sequence.
    fn fire_sequence(p: &mut dyn InjectionPolicy, pkts: usize) -> Vec<bool> {
        (0..pkts)
            .map(|i| p.on_regular(i as u64 * 4_000, 400 + (i as u32 * 37) % 1100))
            .collect()
    }

    #[test]
    fn enum_dispatch_matches_boxed_static() {
        let mut devirt = Policy::from(StaticPolicy::one_in(23));
        let mut boxed =
            Policy::from(Box::new(StaticPolicy::one_in(23)) as Box<dyn InjectionPolicy + Send>);
        assert!(matches!(boxed, Policy::Custom(_)));
        assert_eq!(
            fire_sequence(&mut devirt, 500),
            fire_sequence(&mut boxed, 500)
        );
        assert_eq!(devirt.current_n(), boxed.current_n());
    }

    #[test]
    fn enum_dispatch_matches_boxed_adaptive() {
        let mut devirt = Policy::from(AdaptivePolicy::paper_default());
        let mut boxed = Policy::from(
            Box::new(AdaptivePolicy::paper_default()) as Box<dyn InjectionPolicy + Send>
        );
        assert_eq!(
            fire_sequence(&mut devirt, 2_000),
            fire_sequence(&mut boxed, 2_000)
        );
        assert_eq!(devirt.current_n(), boxed.current_n());
    }
}
