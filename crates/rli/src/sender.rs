//! The RLI sender.
//!
//! "An RLI sender regularly injects special packets called reference packets
//! that carry a (hardware) timestamp to an RLI receiver" (§2). The sender
//! watches the regular packet stream crossing its interface, consults its
//! injection policy after every regular packet, and emits reference packets
//! stamped with its local clock.
//!
//! For RLIR, "each sender sends reference packets to all intermediate
//! receivers through which its packets may cross" (§3.1) — so a sender holds
//! a list of *target flow keys*, one per downstream receiver/path, chosen so
//! the fabric's ECMP hashes place each reference stream on the intended
//! path. One injection event emits one reference per target.

use crate::policy::{InjectionPolicy, Policy};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::FlowKey;
use std::borrow::BorrowMut;
use std::collections::VecDeque;

/// Base of the packet-id namespace reserved for reference packets, far above
/// any trace packet id.
pub const REF_ID_BASE: u64 = 1 << 56;

/// An RLI sender instance.
pub struct RliSender {
    id: SenderId,
    clock: ClockModel,
    /// Enum-dispatched on the per-packet hot path; out-of-tree policies
    /// ride along as [`Policy::Custom`].
    policy: Policy,
    targets: Vec<FlowKey>,
    seq: u32,
    next_ref_id: u64,
    regulars_seen: u64,
    refs_emitted: u64,
    /// Reused per-observation output buffer: `observe` fills it and returns
    /// a borrow, so the steady-state hot path performs zero allocations
    /// (the buffer reaches `targets.len()` capacity on the first injection
    /// and never grows past it).
    scratch: Vec<Packet>,
}

impl std::fmt::Debug for RliSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RliSender")
            .field("id", &self.id)
            .field("targets", &self.targets.len())
            .field("seq", &self.seq)
            .field("refs_emitted", &self.refs_emitted)
            .finish()
    }
}

impl RliSender {
    /// Build a sender.
    ///
    /// * `id` — this instance's identity, embedded in every reference packet.
    /// * `clock` — the local (possibly imperfect) timestamping clock.
    /// * `policy` — static or adaptive injection: a [`Policy`], a concrete
    ///   [`crate::StaticPolicy`]/[`crate::AdaptivePolicy`], or a boxed
    ///   custom [`InjectionPolicy`] (anything `Into<Policy>`).
    /// * `targets` — one flow key per reference stream (per downstream
    ///   receiver/path). Must be non-empty.
    pub fn new(
        id: SenderId,
        clock: ClockModel,
        policy: impl Into<Policy>,
        targets: Vec<FlowKey>,
    ) -> Self {
        assert!(!targets.is_empty(), "sender needs at least one target");
        RliSender {
            id,
            clock,
            policy: policy.into(),
            targets,
            seq: 0,
            next_ref_id: REF_ID_BASE ^ ((id.0 as u64) << 40),
            regulars_seen: 0,
            refs_emitted: 0,
            scratch: Vec::new(),
        }
    }

    /// This sender's id.
    pub fn id(&self) -> SenderId {
        self.id
    }

    /// Regular packets observed so far.
    pub fn regulars_seen(&self) -> u64 {
        self.regulars_seen
    }

    /// Reference packets emitted so far.
    pub fn refs_emitted(&self) -> u64 {
        self.refs_emitted
    }

    /// The policy's current 1-and-n spacing.
    pub fn current_n(&self) -> u32 {
        self.policy.current_n()
    }

    /// Observe one packet crossing the sender's interface. Returns the
    /// reference packets (one per target) to inject immediately after it —
    /// empty unless the policy fires. Reference and cross packets never
    /// trigger injection (the sender meters *regular* traffic).
    ///
    /// The returned slice borrows an internal scratch buffer that is
    /// overwritten by the next call: copy the packets out (they are `Copy`)
    /// before observing again. This keeps the per-packet hot path
    /// allocation-free; the seed implementation allocated a fresh
    /// `Vec<Packet>` per observed packet.
    pub fn observe(&mut self, pkt: &Packet) -> &[Packet] {
        self.scratch.clear();
        if !pkt.is_regular() {
            return &self.scratch;
        }
        self.regulars_seen += 1;
        if !self.policy.on_regular(pkt.created_at.as_nanos(), pkt.size) {
            return &self.scratch;
        }
        let stamp = self.clock.observe(pkt.created_at);
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        for flow in &self.targets {
            let id = self.next_ref_id;
            self.next_ref_id += 1;
            let mut r = Packet::reference(id, *flow, self.id, seq, stamp);
            // The reference enters the network at the same instant as the
            // regular packet it follows; `created_at` drives simulation
            // arrival order while `tx_timestamp` is the (possibly skewed)
            // clock reading.
            r.created_at = pkt.created_at;
            self.scratch.push(r);
        }
        self.refs_emitted += self.scratch.len() as u64;
        &self.scratch
    }

    /// Allocating variant of [`RliSender::observe`], preserved as the
    /// seed's batched API: returns a fresh `Vec` per call. Used by the
    /// baseline benchmarks and the streaming-vs-batched equivalence tests;
    /// prefer `observe` everywhere else.
    pub fn observe_alloc(&mut self, pkt: &Packet) -> Vec<Packet> {
        self.observe(pkt).to_vec()
    }

    /// Wrap a time-ordered packet stream, interleaving generated reference
    /// packets immediately after the regular packets that trigger them.
    pub fn instrument<I>(self, stream: I) -> InstrumentedStream<Self, I>
    where
        I: Iterator<Item = Packet>,
    {
        InstrumentedStream {
            sender: self,
            inner: stream,
            pending: VecDeque::new(),
        }
    }

    /// Borrowing variant of [`RliSender::instrument`]: the sender stays
    /// owned by the caller, so its counters remain readable after the
    /// stream is exhausted — the shape streaming pipelines need.
    pub fn instrument_by_ref<I>(&mut self, stream: I) -> InstrumentedStream<&mut Self, I>
    where
        I: Iterator<Item = Packet>,
    {
        InstrumentedStream {
            sender: self,
            inner: stream,
            pending: VecDeque::new(),
        }
    }
}

/// Iterator adapter produced by [`RliSender::instrument`] /
/// [`RliSender::instrument_by_ref`]. The pending queue is reused across
/// packets, so steady-state iteration allocates nothing.
pub struct InstrumentedStream<S: BorrowMut<RliSender>, I: Iterator<Item = Packet>> {
    sender: S,
    inner: I,
    pending: VecDeque<Packet>,
}

impl<S: BorrowMut<RliSender>, I: Iterator<Item = Packet>> InstrumentedStream<S, I> {
    /// Access the wrapped sender (e.g. for its counters after the run).
    pub fn sender(&self) -> &RliSender {
        self.sender.borrow()
    }
}

impl<S: BorrowMut<RliSender>, I: Iterator<Item = Packet>> Iterator for InstrumentedStream<S, I> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if let Some(p) = self.pending.pop_front() {
            return Some(p);
        }
        let pkt = self.inner.next()?;
        self.pending
            .extend(self.sender.borrow_mut().observe(&pkt).iter().copied());
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdaptivePolicy, StaticPolicy};
    use rlir_net::time::SimTime;
    use std::net::Ipv4Addr;

    fn target() -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 250),
            40_000,
            Ipv4Addr::new(10, 3, 0, 250),
            rlir_net::wire::RLI_UDP_PORT,
        )
    }

    fn regular(id: u64, at_ns: u64) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 3, 0, 1), 2),
            500,
            SimTime::from_nanos(at_ns),
        )
    }

    fn sender(n: u32) -> RliSender {
        RliSender::new(
            SenderId(1),
            ClockModel::perfect(),
            StaticPolicy::one_in(n),
            vec![target()],
        )
    }

    #[test]
    fn injects_after_every_nth_regular() {
        let mut s = sender(3);
        let mut refs = 0;
        for i in 0..9 {
            refs += s.observe(&regular(i, i * 100)).len();
        }
        assert_eq!(refs, 3);
        assert_eq!(s.regulars_seen(), 9);
        assert_eq!(s.refs_emitted(), 3);
    }

    #[test]
    fn reference_packets_carry_stamp_and_sequence() {
        let mut s = sender(1);
        let r1 = s.observe(&regular(1, 1000)).last().copied().unwrap();
        let r2 = s.observe(&regular(2, 2000)).last().copied().unwrap();
        let i1 = r1.reference_info().unwrap();
        let i2 = r2.reference_info().unwrap();
        assert_eq!(i1.sender, SenderId(1));
        assert_eq!((i1.seq, i2.seq), (0, 1));
        assert_eq!(i1.tx_timestamp, SimTime::from_nanos(1000));
        assert_eq!(r1.created_at, SimTime::from_nanos(1000));
        assert_eq!(r1.flow, target());
        assert_ne!(r1.id, r2.id);
    }

    #[test]
    fn skewed_clock_skews_stamp_not_arrival() {
        let mut s = RliSender::new(
            SenderId(2),
            ClockModel::with_offset(500),
            StaticPolicy::one_in(1),
            vec![target()],
        );
        let r = s.observe(&regular(1, 1000)).last().copied().unwrap();
        assert_eq!(r.created_at, SimTime::from_nanos(1000));
        assert_eq!(
            r.reference_info().unwrap().tx_timestamp,
            SimTime::from_nanos(1500)
        );
    }

    #[test]
    fn cross_and_reference_packets_do_not_trigger() {
        let mut s = sender(1);
        let cross = Packet::cross(9, target(), 100, SimTime::ZERO);
        assert!(s.observe(&cross).is_empty());
        let rf = Packet::reference(10, target(), SenderId(9), 0, SimTime::ZERO);
        assert!(s.observe(&rf).is_empty());
        assert_eq!(s.regulars_seen(), 0);
    }

    #[test]
    fn multiple_targets_share_sequence() {
        let t2 = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 250),
            40_001,
            Ipv4Addr::new(10, 5, 0, 250),
            rlir_net::wire::RLI_UDP_PORT,
        );
        let mut s = RliSender::new(
            SenderId(3),
            ClockModel::perfect(),
            StaticPolicy::one_in(1),
            vec![target(), t2],
        );
        let refs: Vec<Packet> = s.observe(&regular(1, 100)).to_vec();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].reference_info().unwrap().seq, 0);
        assert_eq!(refs[1].reference_info().unwrap().seq, 0);
        assert_ne!(refs[0].flow, refs[1].flow);
        assert_ne!(refs[0].id, refs[1].id);
    }

    #[test]
    fn instrument_interleaves_in_order() {
        let stream: Vec<Packet> = (0..10).map(|i| regular(i, i * 100)).collect();
        let out: Vec<Packet> = sender(2).instrument(stream.into_iter()).collect();
        // 10 regulars + 5 refs.
        assert_eq!(out.len(), 15);
        // Each ref appears immediately after its triggering regular and
        // shares its created_at; the overall stream stays time-ordered.
        for w in out.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
        let kinds: Vec<bool> = out.iter().map(|p| p.is_reference()).collect();
        assert_eq!(kinds.iter().filter(|r| **r).count(), 5);
        assert!(!kinds[0], "first packet is regular");
        assert!(kinds[2], "ref follows the 2nd regular");
    }

    #[test]
    fn adaptive_policy_integrates() {
        let mut s = RliSender::new(
            SenderId(4),
            ClockModel::perfect(),
            AdaptivePolicy::paper_default(),
            vec![target()],
        );
        // Default spacing before utilization builds is the densest (10).
        assert_eq!(s.current_n(), 10);
        for i in 0..100 {
            s.observe(&regular(i, i * 1000));
        }
        assert_eq!(s.refs_emitted(), 10);
    }

    #[test]
    fn ref_ids_disjoint_from_trace_ids() {
        let mut s = sender(1);
        let r = s
            .observe(&regular(u32::MAX as u64, 0))
            .last()
            .copied()
            .unwrap();
        assert!(r.id.0 >= REF_ID_BASE / 2, "ref id {} collides", r.id);
    }
}
