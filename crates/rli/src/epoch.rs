//! Epoch-windowed aggregation.
//!
//! A deployed RLI instance cannot hold a run's worth of observations in
//! router SRAM and report once at the end; it aggregates into fixed-width
//! **epochs** of event time and exports one bounded-size snapshot per
//! epoch. [`EpochSnapshot`] is that export: the estimate/truth moments and
//! counter deltas of one epoch, mergeable across instances so segment-level
//! series can be folded from per-receiver series. Final (whole-run)
//! aggregates are *not* derived from snapshots — the receiver keeps its
//! cumulative [`crate::FlowTable`] alongside, so enabling epochs never
//! perturbs the per-flow statistics bit-for-bit.
//!
//! Epoch membership is decided by the **observation time** of the packet
//! (not the time its estimate was computed): an estimate produced when the
//! closing reference arrives in epoch `e+2` still lands in the epoch its
//! packet crossed the observation point in.

use rlir_net::time::SimTime;
use rlir_stats::StreamingStats;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One epoch's aggregate: estimate/truth moments plus counter deltas.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Epoch index (`observation time / epoch_ns`).
    pub epoch: u64,
    /// Epoch start (`epoch × epoch_ns`).
    pub start: SimTime,
    /// Per-packet delay estimates whose observation time fell in this epoch.
    pub est: StreamingStats,
    /// Matching ground-truth delays (simulation only).
    pub truth: StreamingStats,
    /// Reference packets accepted in this epoch.
    pub refs_accepted: u64,
    /// Regular packets offered in this epoch.
    pub regulars_seen: u64,
    /// Estimates produced for this epoch.
    pub estimated: u64,
    /// Regular packets of this epoch that could not be estimated (before
    /// the first reference, after the last, or shed by a buffer cap).
    pub unestimated: u64,
    /// Metered packets of this epoch that died *downstream* of the
    /// observation point after being observed. A receiver cannot know this
    /// on its own — the measurement plane fills it in from the engine's
    /// drop events (zero on delivered-gated taps by construction).
    pub dropped_after_metering: u64,
}

impl EpochSnapshot {
    /// An empty snapshot for epoch `epoch` of width `epoch_ns`.
    pub fn empty(epoch: u64, epoch_ns: u64) -> Self {
        EpochSnapshot {
            epoch,
            start: SimTime::from_nanos(epoch * epoch_ns),
            ..Self::default()
        }
    }

    /// Mean estimated delay of the epoch, ns.
    pub fn est_mean(&self) -> Option<f64> {
        self.est.mean()
    }

    /// Mean true delay of the epoch, ns.
    pub fn true_mean(&self) -> Option<f64> {
        self.truth.mean()
    }

    /// Whether nothing at all was observed in this epoch.
    pub fn is_empty(&self) -> bool {
        self.refs_accepted == 0 && self.regulars_seen == 0 && self.dropped_after_metering == 0
    }

    /// Fold another instance's snapshot of the *same* epoch into this one
    /// (counts and moments merge exactly).
    pub fn merge(&mut self, other: &EpochSnapshot) {
        assert_eq!(self.epoch, other.epoch, "merging different epochs");
        self.est.merge(&other.est);
        self.truth.merge(&other.truth);
        self.refs_accepted += other.refs_accepted;
        self.regulars_seen += other.regulars_seen;
        self.estimated += other.estimated;
        self.unestimated += other.unestimated;
        self.dropped_after_metering += other.dropped_after_metering;
    }
}

/// Merge several per-instance epoch series into one dense segment-level
/// series (union of the epoch ranges; gaps filled with empty snapshots).
pub fn merge_epoch_series(series: &[&[EpochSnapshot]], epoch_ns: u64) -> Vec<EpochSnapshot> {
    let lo = series
        .iter()
        .filter_map(|s| s.first().map(|e| e.epoch))
        .min();
    let hi = series
        .iter()
        .filter_map(|s| s.last().map(|e| e.epoch))
        .max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Vec::new();
    };
    let mut out: Vec<EpochSnapshot> = (lo..=hi)
        .map(|e| EpochSnapshot::empty(e, epoch_ns))
        .collect();
    for s in series {
        for snap in *s {
            out[(snap.epoch - lo) as usize].merge(snap);
        }
    }
    out
}

/// The receiver-internal epoch accumulator: a dense window of snapshots
/// indexed by epoch, grown on demand as observation times advance.
#[derive(Debug, Clone)]
pub(crate) struct EpochTracker {
    epoch_ns: u64,
    /// Epoch index of `snaps[0]`.
    first: u64,
    snaps: VecDeque<EpochSnapshot>,
}

impl EpochTracker {
    pub(crate) fn new(epoch_ns: u64) -> Self {
        assert!(epoch_ns > 0, "epoch width must be positive");
        EpochTracker {
            epoch_ns,
            first: 0,
            snaps: VecDeque::new(),
        }
    }

    /// The snapshot covering observation time `at`, created if absent.
    pub(crate) fn snap(&mut self, at: SimTime) -> &mut EpochSnapshot {
        let e = at.as_nanos() / self.epoch_ns;
        if self.snaps.is_empty() {
            self.first = e;
            self.snaps.push_back(EpochSnapshot::empty(e, self.epoch_ns));
        }
        while e < self.first {
            self.first -= 1;
            self.snaps
                .push_front(EpochSnapshot::empty(self.first, self.epoch_ns));
        }
        while self.first + self.snaps.len() as u64 <= e {
            let next = self.first + self.snaps.len() as u64;
            self.snaps
                .push_back(EpochSnapshot::empty(next, self.epoch_ns));
        }
        &mut self.snaps[(e - self.first) as usize]
    }

    /// Snapshots accumulated so far, in epoch order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &EpochSnapshot> {
        self.snaps.iter()
    }

    pub(crate) fn into_vec(self) -> Vec<EpochSnapshot> {
        self.snaps.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_grows_dense_in_both_directions() {
        let mut t = EpochTracker::new(1000);
        t.snap(SimTime::from_nanos(5_500)).estimated += 1;
        t.snap(SimTime::from_nanos(7_100)).estimated += 1;
        t.snap(SimTime::from_nanos(3_000)).estimated += 1; // front growth
        let v = t.into_vec();
        assert_eq!(v.len(), 5); // epochs 3..=7, dense
        assert_eq!(v[0].epoch, 3);
        assert_eq!(v[0].start.as_nanos(), 3_000);
        assert_eq!(v[4].epoch, 7);
        assert_eq!(v[2].estimated, 1); // epoch 5
        for gap in [1usize, 3] {
            assert_eq!(v[gap].estimated, 0, "gap epochs stay empty");
            assert!(v[gap].is_empty());
        }
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let mut a = EpochSnapshot::empty(4, 100);
        let mut b = EpochSnapshot::empty(4, 100);
        a.est.push(10.0);
        a.estimated = 1;
        b.est.push(30.0);
        b.estimated = 1;
        b.unestimated = 2;
        a.merge(&b);
        assert_eq!(a.est_mean(), Some(20.0));
        assert_eq!(a.estimated, 2);
        assert_eq!(a.unestimated, 2);
    }

    #[test]
    #[should_panic(expected = "different epochs")]
    fn merging_mismatched_epochs_panics() {
        let mut a = EpochSnapshot::empty(1, 100);
        a.merge(&EpochSnapshot::empty(2, 100));
    }

    #[test]
    fn series_merge_unions_ranges() {
        let mk = |epoch: u64, est: f64| {
            let mut s = EpochSnapshot::empty(epoch, 10);
            s.est.push(est);
            s.estimated = 1;
            s
        };
        let a = vec![mk(2, 100.0), mk(3, 200.0)];
        let b = vec![mk(3, 400.0), mk(5, 50.0)];
        let merged = merge_epoch_series(&[&a, &b], 10);
        assert_eq!(merged.len(), 4); // 2..=5
        assert_eq!(merged[0].est_mean(), Some(100.0));
        assert_eq!(merged[1].est_mean(), Some(300.0)); // 200 and 400 merged
        assert_eq!(merged[1].estimated, 2);
        assert!(merged[2].is_empty());
        assert_eq!(merged[3].est_mean(), Some(50.0));
        assert!(merge_epoch_series(&[], 10).is_empty());
    }
}
