//! Trajectory sampling (Duffield & Grossglauser, ToN 2000).
//!
//! The third family of related work the paper discusses (§5): "trajectory
//! sampling for collecting packet trajectories across a network … Using
//! these trajectory samples to infer loss and delay at different measurement
//! points has been proposed [16, 6]. Incorporating flow key in trajectory
//! samples also enables per-flow latency estimation."
//!
//! Each measurement point applies the *same* hash to packet-invariant
//! content and samples the packet iff the hash falls below a threshold —
//! so either every point on the path samples a packet, or none does. Joining
//! the (label, timestamp) records of two points yields exact per-packet
//! delays for the sampled subset; aggregating by flow key gives per-flow
//! estimates whose coverage (unlike RLI's interpolation) is limited to
//! sampled packets.

use rlir_net::fxhash::FxHashMap;
use rlir_net::time::SimTime;
use rlir_net::FlowKey;
use rlir_stats::StreamingStats;
use serde::{Deserialize, Serialize};

/// Sampling configuration — identical at every measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Sampling probability in `[0, 1]` (threshold on the label hash).
    pub probability: f64,
    /// Shared hash seed.
    pub seed: u64,
}

impl TrajectoryConfig {
    /// The classic operating point: sample ~1% of traffic.
    pub fn one_percent(seed: u64) -> Self {
        TrajectoryConfig {
            probability: 0.01,
            seed,
        }
    }
}

/// A sampled observation: the packet's invariant label, its flow key, and
/// the local timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// Hash-derived packet label (consistent across points).
    pub label: u64,
    /// The packet's flow key.
    pub flow: FlowKey,
    /// Local observation time.
    pub at: SimTime,
}

/// One measurement point's sampler + sample store.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    cfg: TrajectoryConfig,
    threshold: u64,
    samples: Vec<TrajectorySample>,
    observed: u64,
}

#[inline]
fn label_hash(seed: u64, packet_id: u64) -> u64 {
    let mut z = packet_id ^ seed.rotate_left(29);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TrajectoryPoint {
    /// Create a measurement point.
    pub fn new(cfg: TrajectoryConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.probability),
            "sampling probability out of range"
        );
        TrajectoryPoint {
            cfg,
            threshold: (cfg.probability * u64::MAX as f64) as u64,
            samples: Vec::new(),
            observed: 0,
        }
    }

    /// Observe a packet (identified by invariant id) at local time `at`.
    /// Returns whether it was sampled. Consistency guarantee: every point
    /// with the same config samples the same packets.
    pub fn observe(&mut self, packet_id: u64, flow: FlowKey, at: SimTime) -> bool {
        self.observed += 1;
        let h = label_hash(self.cfg.seed, packet_id);
        if h > self.threshold {
            return false;
        }
        self.samples.push(TrajectorySample { label: h, flow, at });
        true
    }

    /// Packets observed (sampled or not).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Samples collected.
    pub fn samples(&self) -> &[TrajectorySample] {
        &self.samples
    }

    /// Realised sampling fraction.
    pub fn sampling_fraction(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.samples.len() as f64 / self.observed as f64
        }
    }
}

/// Per-flow delay statistics recovered from a joined pair of points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrajectoryFlowEstimate {
    /// The flow.
    pub flow: FlowKey,
    /// Sampled-packet delay statistics (mean/std over the sampled subset).
    pub delays: StreamingStats,
}

/// Result of joining two trajectory points.
#[derive(Debug, Clone)]
pub struct TrajectoryJoin {
    /// Per-flow estimates (flows with ≥1 matched sample), sorted by key.
    pub flows: Vec<TrajectoryFlowEstimate>,
    /// Matched samples.
    pub matched: u64,
    /// Upstream samples that never appeared downstream (lost packets —
    /// trajectory sampling measures loss too).
    pub lost: u64,
    /// Aggregate delay statistics over all matched samples.
    pub aggregate: StreamingStats,
}

/// Join an upstream and a downstream point by label.
///
/// Labels are hash-derived and may collide; collisions are resolved by
/// matching same-label samples in timestamp order (FIFO paths preserve
/// order).
pub fn join(upstream: &TrajectoryPoint, downstream: &TrajectoryPoint) -> TrajectoryJoin {
    assert_eq!(
        upstream.cfg, downstream.cfg,
        "trajectory points must share a sampling configuration"
    );
    let mut down_by_label: FxHashMap<u64, Vec<&TrajectorySample>> = FxHashMap::default();
    for s in &downstream.samples {
        down_by_label.entry(s.label).or_default().push(s);
    }
    for v in down_by_label.values_mut() {
        v.sort_by_key(|s| s.at);
        v.reverse(); // pop() yields earliest first
    }

    let mut per_flow: FxHashMap<FlowKey, StreamingStats> = FxHashMap::default();
    let mut aggregate = StreamingStats::new();
    let mut matched = 0u64;
    let mut lost = 0u64;
    let mut ups: Vec<&TrajectorySample> = upstream.samples.iter().collect();
    ups.sort_by_key(|s| s.at);
    for u in ups {
        match down_by_label.get_mut(&u.label).and_then(|v| v.pop()) {
            Some(d) => {
                let delay = d.at.signed_delta_nanos(u.at) as f64;
                per_flow.entry(u.flow).or_default().push(delay);
                aggregate.push(delay);
                matched += 1;
            }
            None => lost += 1,
        }
    }

    let mut flows: Vec<TrajectoryFlowEstimate> = per_flow
        .into_iter()
        .map(|(flow, delays)| TrajectoryFlowEstimate { flow, delays })
        .collect();
    flows.sort_by_key(|f| f.flow);
    TrajectoryJoin {
        flows,
        matched,
        lost,
        aggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimDuration;
    use std::net::Ipv4Addr;

    fn flow(i: u8) -> FlowKey {
        FlowKey::udp(Ipv4Addr::new(10, 0, 0, i), 7, Ipv4Addr::new(10, 2, 0, 1), 9)
    }

    fn pair(p: f64) -> (TrajectoryPoint, TrajectoryPoint) {
        let cfg = TrajectoryConfig {
            probability: p,
            seed: 0x7247,
        };
        (TrajectoryPoint::new(cfg), TrajectoryPoint::new(cfg))
    }

    #[test]
    fn sampling_is_consistent_across_points() {
        let (mut a, mut b) = pair(0.3);
        for id in 0..10_000u64 {
            let sa = a.observe(id, flow(1), SimTime::from_nanos(id));
            let sb = b.observe(id, flow(1), SimTime::from_nanos(id + 500));
            assert_eq!(sa, sb, "inconsistent sampling for id {id}");
        }
        assert!((a.sampling_fraction() - 0.3).abs() < 0.02);
    }

    #[test]
    fn join_recovers_exact_delays() {
        let (mut up, mut down) = pair(0.5);
        let mut expected = StreamingStats::new();
        for id in 0..5_000u64 {
            let t = SimTime::from_nanos(id * 100);
            let delay = 1_000 + (id % 700);
            if up.observe(id, flow((id % 4) as u8), t) {
                expected.push(delay as f64);
            }
            down.observe(id, flow((id % 4) as u8), t + SimDuration::from_nanos(delay));
        }
        let j = join(&up, &down);
        assert_eq!(j.matched, expected.count());
        assert_eq!(j.lost, 0);
        assert!((j.aggregate.mean().unwrap() - expected.mean().unwrap()).abs() < 1e-9);
        assert_eq!(j.flows.len(), 4);
    }

    #[test]
    fn loss_shows_up_as_unmatched_upstream_samples() {
        let (mut up, mut down) = pair(1.0);
        for id in 0..1_000u64 {
            let t = SimTime::from_nanos(id * 50);
            up.observe(id, flow(1), t);
            if id % 10 != 0 {
                down.observe(id, flow(1), t + SimDuration::from_nanos(99));
            }
        }
        let j = join(&up, &down);
        assert_eq!(j.lost, 100);
        assert_eq!(j.matched, 900);
    }

    #[test]
    fn zero_probability_samples_nothing() {
        let (mut up, _) = pair(0.0);
        for id in 0..100u64 {
            assert!(!up.observe(id, flow(1), SimTime::ZERO));
        }
        assert_eq!(up.samples().len(), 0);
    }

    #[test]
    fn per_flow_estimates_separate_flows() {
        let (mut up, mut down) = pair(1.0);
        for id in 0..200u64 {
            let f = flow((id % 2) as u8);
            let t = SimTime::from_nanos(id * 10);
            let delay = if id % 2 == 0 { 100 } else { 900 };
            up.observe(id, f, t);
            down.observe(id, f, t + SimDuration::from_nanos(delay));
        }
        let j = join(&up, &down);
        assert_eq!(j.flows.len(), 2);
        let means: Vec<f64> = j.flows.iter().map(|f| f.delays.mean().unwrap()).collect();
        assert!(means.contains(&100.0) && means.contains(&900.0));
    }

    #[test]
    #[should_panic(expected = "share a sampling configuration")]
    fn mismatched_configs_rejected() {
        let (up, _) = pair(0.5);
        let (_, down) = pair(0.9);
        join(&up, &down);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let (mut up, mut down) = pair(0.2);
            for id in 0..1000u64 {
                let t = SimTime::from_nanos(id * 10);
                up.observe(id, flow(1), t);
                down.observe(id, flow(1), t + SimDuration::from_nanos(77));
            }
            join(&up, &down).matched
        };
        assert_eq!(run(), run());
    }
}
