//! # rlir-baselines — comparison estimators
//!
//! The two measurement baselines the paper discusses (§5) as the context
//! for RLI/RLIR, implemented on the same substrates so they can run on
//! identical simulator output:
//!
//! * [`lda`] — the Lossy Difference Aggregator (SIGCOMM 2009):
//!   loss-tolerant, aggregate-only mean latency from paired
//!   timestamp-sum/count banks.
//! * [`multiflow`] — the NetFlow "Multiflow" estimator (Infocom 2010):
//!   per-flow but crude (two samples per flow: its first and last packet).
//! * [`trajectory`] — trajectory sampling (ToN 2000): consistent hash-based
//!   sampling at every point, exact delays for the sampled subset.
//!
//! RLIR's pitch is the gap between these: per-flow fidelity (unlike LDA)
//! with per-packet interpolation accuracy (unlike Multiflow), at partial
//! deployment cost.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lda;
pub mod multiflow;
pub mod trajectory;

pub use lda::{Lda, LdaConfig, LdaEstimate};
pub use multiflow::{estimate_all, estimate_flow, MultiflowEstimate};
pub use trajectory::{join as trajectory_join, TrajectoryConfig, TrajectoryJoin, TrajectoryPoint};
