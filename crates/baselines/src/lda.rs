//! The Lossy Difference Aggregator (Kompella et al., SIGCOMM 2009).
//!
//! The aggregate-only baseline the paper positions RLI/RLIR against: "LDA
//! enables high-fidelity low network latency measurements … but it only
//! provides aggregate measurements" (§5). A sender and a receiver each
//! maintain the same array of banks of (timestamp-sum, packet-count)
//! buckets; packets are hashed to buckets, and banks sample packets with
//! geometrically decreasing probability so that *some* bank retains usable
//! buckets at any loss rate. At collection time, buckets whose sender and
//! receiver counts agree contribute `rx_sum − tx_sum` over `count` packets;
//! buckets touched by loss are discarded.

use rlir_net::time::SimTime;
use serde::{Deserialize, Serialize};

/// LDA configuration (must be identical at sender and receiver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of banks with sampling probabilities 1, 1/2, 1/4, …
    pub banks: usize,
    /// Buckets per bank.
    pub buckets_per_bank: usize,
    /// Hash seed (shared by the pair).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        // The SIGCOMM 2009 evaluation's shape: a few banks, O(hundreds) of
        // buckets.
        LdaConfig {
            banks: 4,
            buckets_per_bank: 256,
            seed: 0x1DA,
        }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Bucket {
    sum_ns: u128,
    count: u64,
}

/// One side (sender or receiver) of an LDA pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lda {
    cfg: LdaConfig,
    buckets: Vec<Bucket>, // banks × buckets_per_bank, row-major
    recorded: u64,
}

#[inline]
fn mix(seed: u64, id: u64) -> u64 {
    let mut z = id ^ seed.rotate_left(17);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Lda {
    /// Create one side of the pair.
    pub fn new(cfg: LdaConfig) -> Self {
        assert!(cfg.banks > 0 && cfg.buckets_per_bank > 0, "empty LDA");
        assert!(cfg.banks < 63, "too many banks");
        Lda {
            cfg,
            buckets: vec![Bucket::default(); cfg.banks * cfg.buckets_per_bank],
            recorded: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> LdaConfig {
        self.cfg
    }

    /// Packets recorded on this side.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Record a packet identified by an invariant id (in deployment, a hash
    /// of invariant header fields; here, the simulator packet id) observed
    /// at local time `at`.
    ///
    /// Banks *partition* the packet population geometrically (1/2, 1/4, …,
    /// with the last bank absorbing the tail): every packet lands in exactly
    /// one bank, so the collected estimator is exact when no loss occurs,
    /// while sparse banks keep usable (loss-free) buckets at high loss.
    pub fn record(&mut self, packet_id: u64, at: SimTime) {
        self.recorded += 1;
        let h = mix(self.cfg.seed, packet_id);
        let bank = (h.trailing_ones() as usize).min(self.cfg.banks - 1);
        let bucket = (mix(self.cfg.seed ^ bank as u64, packet_id)
            % self.cfg.buckets_per_bank as u64) as usize;
        let cell = &mut self.buckets[bank * self.cfg.buckets_per_bank + bucket];
        cell.sum_ns += at.as_nanos() as u128;
        cell.count += 1;
    }

    /// Collect the pair into an aggregate latency estimate. `sender` and
    /// `receiver` must share a configuration.
    pub fn estimate(sender: &Lda, receiver: &Lda) -> Option<LdaEstimate> {
        assert_eq!(sender.cfg, receiver.cfg, "mismatched LDA pair");
        let per_bank = sender.cfg.buckets_per_bank;
        let mut usable_packets = 0u64;
        let mut usable_buckets = 0usize;
        let mut delay_sum = 0i128;
        // A bucket is usable iff its sender and receiver counts match (no
        // loss touched it). Banks partition packets, so summing usable
        // buckets across banks counts each surviving packet exactly once —
        // exact with zero loss, unbiased under loss because bucket
        // assignment is independent of delay.
        for bank in 0..sender.cfg.banks {
            for b in 0..per_bank {
                let s = sender.buckets[bank * per_bank + b];
                let r = receiver.buckets[bank * per_bank + b];
                if s.count == 0 || s.count != r.count {
                    continue;
                }
                usable_buckets += 1;
                usable_packets += s.count;
                delay_sum += r.sum_ns as i128 - s.sum_ns as i128;
            }
        }
        if usable_packets == 0 {
            return None;
        }
        Some(LdaEstimate {
            mean_delay_ns: delay_sum as f64 / usable_packets as f64,
            usable_packets,
            usable_buckets,
            total_buckets: sender.cfg.banks * per_bank,
        })
    }
}

/// Result of collecting an LDA pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdaEstimate {
    /// Estimated mean one-way delay, ns.
    pub mean_delay_ns: f64,
    /// Packet samples that survived loss.
    pub usable_packets: u64,
    /// Buckets whose counts matched.
    pub usable_buckets: usize,
    /// Total buckets in the structure.
    pub total_buckets: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pair() -> (Lda, Lda) {
        let cfg = LdaConfig::default();
        (Lda::new(cfg), Lda::new(cfg))
    }

    #[test]
    fn exact_mean_without_loss() {
        let (mut tx, mut rx) = pair();
        let mut true_sum = 0u64;
        let n = 10_000u64;
        for id in 0..n {
            let t0 = id * 1000;
            let delay = 500 + (id % 400); // mean 699.5
            tx.record(id, SimTime::from_nanos(t0));
            rx.record(id, SimTime::from_nanos(t0 + delay));
            true_sum += delay;
        }
        let est = Lda::estimate(&tx, &rx).unwrap();
        let true_mean = true_sum as f64 / n as f64;
        // Banks partition the population and no bucket saw loss → exact.
        assert!(
            (est.mean_delay_ns - true_mean).abs() < 1e-6,
            "{} vs {true_mean}",
            est.mean_delay_ns
        );
        assert_eq!(est.usable_packets, n, "every packet counted exactly once");
    }

    #[test]
    fn survives_loss_with_small_bias() {
        let (mut tx, mut rx) = pair();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000u64;
        let mut kept_sum = 0u64;
        let mut kept_n = 0u64;
        for id in 0..n {
            let t0 = id * 700;
            let delay = 1000 + (id % 2000);
            tx.record(id, SimTime::from_nanos(t0));
            if rng.random::<f64>() < 0.05 {
                continue; // 5% loss
            }
            rx.record(id, SimTime::from_nanos(t0 + delay));
            kept_sum += delay;
            kept_n += 1;
        }
        let est = Lda::estimate(&tx, &rx).expect("some banks survive 5% loss");
        let true_mean = kept_sum as f64 / kept_n as f64;
        let rel = (est.mean_delay_ns - true_mean).abs() / true_mean;
        assert!(
            rel < 0.05,
            "rel err {rel}: {} vs {true_mean}",
            est.mean_delay_ns
        );
        assert!(est.usable_buckets > 0);
        assert!(est.usable_packets < 2 * n);
    }

    #[test]
    fn total_loss_yields_none() {
        let (mut tx, rx) = pair();
        for id in 0..1000 {
            tx.record(id, SimTime::from_nanos(id));
        }
        assert!(Lda::estimate(&tx, &rx).is_none());
    }

    #[test]
    fn empty_pair_yields_none() {
        let (tx, rx) = pair();
        assert!(Lda::estimate(&tx, &rx).is_none());
        assert_eq!(tx.recorded(), 0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_configs_panic() {
        let a = Lda::new(LdaConfig::default());
        let b = Lda::new(LdaConfig {
            banks: 2,
            ..LdaConfig::default()
        });
        let _ = Lda::estimate(&a, &b);
    }

    #[test]
    fn banks_sample_geometrically() {
        let mut lda = Lda::new(LdaConfig {
            banks: 4,
            buckets_per_bank: 64,
            seed: 9,
        });
        for id in 0..100_000u64 {
            lda.record(id, SimTime::ZERO);
        }
        let per_bank = 64;
        let count_of_bank = |b: usize| -> u64 {
            lda.buckets[b * per_bank..(b + 1) * per_bank]
                .iter()
                .map(|x| x.count)
                .sum()
        };
        // Partition: 1/2, 1/4, 1/8, and the last bank absorbs the tail 1/8.
        let total: u64 = (0..4).map(count_of_bank).sum();
        assert_eq!(total, 100_000, "banks must partition the population");
        for (b, expected) in [
            (0usize, 50_000.0),
            (1, 25_000.0),
            (2, 12_500.0),
            (3, 12_500.0),
        ] {
            let c = count_of_bank(b) as f64;
            assert!(
                (c - expected).abs() / expected < 0.1,
                "bank {b}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn estimate_is_deterministic() {
        let run = || {
            let (mut tx, mut rx) = pair();
            for id in 0..5000u64 {
                tx.record(id, SimTime::from_nanos(id * 10));
                rx.record(id, SimTime::from_nanos(id * 10 + 777));
            }
            Lda::estimate(&tx, &rx).unwrap()
        };
        assert_eq!(run(), run());
        assert!((run().mean_delay_ns - 777.0).abs() < 1e-9);
    }
}
