//! The "Multiflow" opportunistic estimator (Lee et al., Infocom 2010).
//!
//! §5: "the two timestamps already stored on a per-flow basis within NetFlow
//! were exploited to obtain a crude estimator called Multiflow estimator."
//! Given a flow's NetFlow record at an upstream and a downstream measurement
//! point, the flow's first and last packets each provide one delay sample —
//! "two samples are enough" — and their average is the per-flow latency
//! estimate. The estimator is per-flow (unlike LDA) but far cruder than RLI:
//! it is exact only for two-packet flows with no loss or reordering.

use rlir_net::fxhash::FxHashMap;
use rlir_net::time::SimDuration;
use rlir_net::FlowKey;
use rlir_trace::FlowRecord;
use serde::{Deserialize, Serialize};

/// Per-flow Multiflow estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiflowEstimate {
    /// The flow.
    pub flow: FlowKey,
    /// Delay of the first packet (downstream first − upstream first), ns.
    pub first_delay_ns: i64,
    /// Delay of the last packet, ns.
    pub last_delay_ns: i64,
    /// The estimator's output: mean of the two samples, ns.
    pub mean_delay_ns: f64,
    /// Packets in the upstream record (context for confidence).
    pub packets: u64,
}

/// Estimate one flow from its two records. Returns `None` when the records
/// disagree on packet counts (loss makes first/last matching unsound).
pub fn estimate_flow(up: &FlowRecord, down: &FlowRecord) -> Option<MultiflowEstimate> {
    if up.key != down.key || up.packets != down.packets || up.packets == 0 {
        return None;
    }
    let first = down.first.signed_delta_nanos(up.first);
    let last = down.last.signed_delta_nanos(up.last);
    Some(MultiflowEstimate {
        flow: up.key,
        first_delay_ns: first,
        last_delay_ns: last,
        mean_delay_ns: (first + last) as f64 / 2.0,
        packets: up.packets,
    })
}

/// Join two record sets by flow key and estimate every matchable flow.
/// Records are matched 1:1 in (first-timestamp) order per key; flows whose
/// record counts differ between the points are skipped.
pub fn estimate_all(up: &[FlowRecord], down: &[FlowRecord]) -> Vec<MultiflowEstimate> {
    let mut down_by_key: FxHashMap<FlowKey, Vec<&FlowRecord>> = FxHashMap::default();
    for r in down {
        down_by_key.entry(r.key).or_default().push(r);
    }
    let mut up_by_key: FxHashMap<FlowKey, Vec<&FlowRecord>> = FxHashMap::default();
    for r in up {
        up_by_key.entry(r.key).or_default().push(r);
    }
    let mut out = Vec::new();
    for (key, mut ups) in up_by_key {
        let Some(mut downs) = down_by_key.remove(&key) else {
            continue;
        };
        if ups.len() != downs.len() {
            continue;
        }
        ups.sort_by_key(|r| r.first);
        downs.sort_by_key(|r| r.first);
        for (u, d) in ups.iter().zip(&downs) {
            if let Some(e) = estimate_flow(u, d) {
                out.push(e);
            }
        }
    }
    out.sort_by_key(|e| e.flow);
    out
}

/// Compare a Multiflow estimate against ground truth mean delay.
pub fn relative_error_vs_truth(est: &MultiflowEstimate, true_mean: SimDuration) -> f64 {
    rlir_stats::relative_error(est.mean_delay_ns, true_mean.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimTime;
    use rlir_trace::{FlowMeter, FlowMeterConfig};
    use std::net::Ipv4Addr;

    fn key(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            5,
            Ipv4Addr::new(10, 9, 0, 1),
            80,
        )
    }

    fn record(k: FlowKey, first_ns: u64, last_ns: u64, packets: u64) -> FlowRecord {
        FlowRecord {
            key: k,
            first: SimTime::from_nanos(first_ns),
            last: SimTime::from_nanos(last_ns),
            packets,
            bytes: packets * 100,
        }
    }

    #[test]
    fn two_sample_average() {
        let up = record(key(1), 1000, 9000, 5);
        let down = record(key(1), 1400, 9800, 5);
        let e = estimate_flow(&up, &down).unwrap();
        assert_eq!(e.first_delay_ns, 400);
        assert_eq!(e.last_delay_ns, 800);
        assert_eq!(e.mean_delay_ns, 600.0);
    }

    #[test]
    fn count_mismatch_rejected() {
        let up = record(key(1), 0, 10, 5);
        let down = record(key(1), 1, 11, 4); // one packet lost
        assert!(estimate_flow(&up, &down).is_none());
        let other = record(key(2), 1, 11, 5);
        assert!(estimate_flow(&up, &other).is_none(), "key mismatch");
    }

    #[test]
    fn join_matches_by_key() {
        let up = vec![record(key(1), 0, 100, 2), record(key(2), 50, 60, 1)];
        let down = vec![record(key(2), 55, 65, 1), record(key(1), 10, 120, 2)];
        let ests = estimate_all(&up, &down);
        assert_eq!(ests.len(), 2);
        let e1 = ests.iter().find(|e| e.flow == key(1)).unwrap();
        assert_eq!(e1.mean_delay_ns, 15.0);
        let e2 = ests.iter().find(|e| e.flow == key(2)).unwrap();
        assert_eq!(e2.mean_delay_ns, 5.0);
    }

    #[test]
    fn unmatched_flows_skipped() {
        let up = vec![record(key(1), 0, 100, 2)];
        let down: Vec<FlowRecord> = vec![];
        assert!(estimate_all(&up, &down).is_empty());
    }

    #[test]
    fn integrates_with_flow_meter() {
        // Meter the same packets at two points with a constant 250 ns shift.
        let mut up = FlowMeter::new(FlowMeterConfig::default());
        let mut down = FlowMeter::new(FlowMeterConfig::default());
        for i in 0..10u64 {
            let at = SimTime::from_micros(i * 3);
            up.observe_at(key(3), at, 100);
            down.observe_at(key(3), at + SimDuration::from_nanos(250), 100);
        }
        let ests = estimate_all(&up.finish(), &down.finish());
        assert_eq!(ests.len(), 1);
        assert_eq!(ests[0].mean_delay_ns, 250.0);
        assert_eq!(
            relative_error_vs_truth(&ests[0], SimDuration::from_nanos(250)),
            0.0
        );
    }

    #[test]
    fn crude_for_varying_delay() {
        // First and last packets happen to see small delays while the middle
        // of the flow queued badly — Multiflow cannot see it (that is the
        // point of RLI's per-packet interpolation).
        let up = record(key(4), 0, 10_000, 50);
        let down = record(key(4), 100, 10_100, 50);
        let e = estimate_flow(&up, &down).unwrap();
        assert_eq!(e.mean_delay_ns, 100.0);
        // True mean including the congested middle was, say, 2 µs:
        let err = relative_error_vs_truth(&e, SimDuration::from_nanos(2000));
        assert!(err > 0.9, "Multiflow should look crude here, err {err}");
    }
}
