//! Random samplers for workload synthesis.
//!
//! The CAIDA traces the paper uses are heavy-tailed in flow size and
//! multi-modal in packet size. We sample from the matching families here —
//! exponential inter-arrivals, bounded Pareto flow sizes, geometric mice,
//! log-uniform rates and an empirical packet-size mix — implemented directly
//! on top of `rand::Rng` so the workspace needs no extra distribution crate
//! (see DESIGN.md's dependency policy).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential distribution with the given rate (events per unit).
/// Sampled by inversion: `-ln(U)/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// `rate` must be positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Mean of the distribution (`1/rate`).
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // random() yields [0,1); complement avoids ln(0).
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

/// Bounded Pareto on `[low, high]` with shape `alpha` — the classic model for
/// heavy-tailed flow sizes. Sampled by inversion of the truncated CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    low: f64,
    high: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Requires `0 < low < high` and `alpha > 0`.
    pub fn new(low: f64, high: f64, alpha: f64) -> Self {
        assert!(low > 0.0 && high > low, "need 0 < low < high");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { low, high, alpha }
    }

    /// Analytic mean of the bounded Pareto.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.low, self.high, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // α = 1 limit: E = ln(h/l) · l·h/(h−l)
            (h * l) / (h - l) * (h / l).ln()
        } else {
            let la = l.powf(a);
            let norm = 1.0 - (l / h).powf(a);
            la / norm * (a / (a - 1.0)) * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let (l, h, a) = (self.low, self.high, self.alpha);
        let ha = h.powf(a);
        let la = l.powf(a);
        // Inverse CDF of the truncated Pareto.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
        x.clamp(l, h)
    }
}

/// Geometric distribution on `{1, 2, …}` with success probability `p`
/// (mean `1/p`) — models "mice" flows of a few packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// `p` must be in `(0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1]");
        Geometric { p }
    }

    /// Build from the desired mean (`mean >= 1`).
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean >= 1.0, "geometric mean must be >= 1");
        Geometric::new(1.0 / mean)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draw one sample (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = 1.0 - rng.random::<f64>();
        let x = (u.ln() / (1.0 - self.p).ln()).ceil();
        (x as u64).max(1)
    }
}

/// Log-uniform distribution on `[low, high]`: `exp(U(ln low, ln high))`.
/// Used for per-flow packet rates, which span orders of magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogUniform {
    ln_low: f64,
    ln_high: f64,
}

impl LogUniform {
    /// Requires `0 < low <= high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low > 0.0 && high >= low, "need 0 < low <= high");
        LogUniform {
            ln_low: low.ln(),
            ln_high: high.ln(),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        (self.ln_low + u * (self.ln_high - self.ln_low)).exp()
    }
}

/// Empirical packet-size mix modelled on Internet backbone traces: spikes at
/// minimum (ACK-sized), 576 B (legacy default MTU) and 1500 B (Ethernet MTU),
/// plus a uniform spread. Weights are configurable; the default approximates
/// the ~730 B average packet size implied by the paper's trace statistics
/// (22.4 M packets ≈ 22% of a 9.953 Gb/s link over 60 s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSizeMix {
    // (cumulative weight, mode) — mode None means "uniform spread".
    modes: Vec<(f64, Option<u32>)>,
    uniform_low: u32,
    uniform_high: u32,
}

impl PacketSizeMix {
    /// Backbone-like default mix (≈35% 40 B, ≈15% 576 B, ≈40% 1500 B, ≈10%
    /// uniform in 64..=1500), averaging ≈ 730–780 B.
    pub fn backbone() -> Self {
        PacketSizeMix::new(
            &[
                (0.35, Some(40)),
                (0.15, Some(576)),
                (0.40, Some(1500)),
                (0.10, None),
            ],
            64,
            1500,
        )
    }

    /// Build from `(weight, size)` entries; a `None` size draws uniformly
    /// from `[uniform_low, uniform_high]`. Weights are normalised.
    pub fn new(entries: &[(f64, Option<u32>)], uniform_low: u32, uniform_high: u32) -> Self {
        assert!(!entries.is_empty(), "need at least one mode");
        assert!(uniform_low > 0 && uniform_high >= uniform_low);
        let total: f64 = entries.iter().map(|(w, _)| *w).sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut acc = 0.0;
        let modes = entries
            .iter()
            .map(|(w, s)| {
                acc += w / total;
                (acc, *s)
            })
            .collect();
        PacketSizeMix {
            modes,
            uniform_low,
            uniform_high,
        }
    }

    /// Analytic mean packet size of the mix.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for &(cum, mode) in &self.modes {
            let w = cum - prev;
            prev = cum;
            let m = match mode {
                Some(s) => s as f64,
                None => (self.uniform_low + self.uniform_high) as f64 / 2.0,
            };
            mean += w * m;
        }
        mean
    }

    /// Draw one packet size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        for &(cum, mode) in &self.modes {
            if u <= cum {
                return match mode {
                    Some(s) => s,
                    None => rng.random_range(self.uniform_low..=self.uniform_high),
                };
            }
        }
        // Floating-point slack: fall into the last mode.
        match self.modes.last().expect("non-empty").1 {
            Some(s) => s,
            None => rng.random_range(self.uniform_low..=self.uniform_high),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    fn sample_mean<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(4.0);
        assert_eq!(d.mean(), 0.25);
        let m = sample_mean(200_000, |r| d.sample(r));
        assert!((m - 0.25).abs() < 0.005, "sample mean {m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(1e9);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let d = BoundedPareto::new(20.0, 50_000.0, 1.2);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((20.0..=50_000.0).contains(&x), "sample {x} out of range");
        }
    }

    #[test]
    fn bounded_pareto_mean_matches_analytic() {
        let d = BoundedPareto::new(20.0, 50_000.0, 1.2);
        let analytic = d.mean();
        // Heavy tail → slow convergence; generous tolerance.
        let m = sample_mean(400_000, |r| d.sample(r));
        assert!(
            (m - analytic).abs() / analytic < 0.15,
            "sample mean {m} vs analytic {analytic}"
        );
    }

    #[test]
    fn bounded_pareto_alpha_one_mean() {
        let d = BoundedPareto::new(1.0, 1000.0, 1.0);
        // E = h·l/(h−l)·ln(h/l) = 1000/999·ln(1000) ≈ 6.9147
        assert!((d.mean() - 6.9146).abs() < 0.01, "{}", d.mean());
    }

    #[test]
    fn geometric_mean_and_support() {
        let d = Geometric::with_mean(4.0);
        assert_eq!(d.mean(), 4.0);
        let mut r = rng();
        let mut sum = 0u64;
        for _ in 0..100_000 {
            let x = d.sample(&mut r);
            assert!(x >= 1);
            sum += x;
        }
        let m = sum as f64 / 100_000.0;
        assert!((m - 4.0).abs() < 0.1, "sample mean {m}");
        assert_eq!(Geometric::new(1.0).sample(&mut r), 1);
    }

    #[test]
    fn log_uniform_range_and_median() {
        let d = LogUniform::new(1e3, 1e7);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(samples[0] >= 1e3 && *samples.last().unwrap() <= 1e7);
        // Median of a log-uniform is the geometric mean of the bounds: 1e5.
        let med = samples[25_000];
        assert!((4.7..=5.3).contains(&med.log10()), "median {med}");
    }

    #[test]
    fn packet_mix_samples_valid_sizes() {
        let mix = PacketSizeMix::backbone();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = mix.sample(&mut r);
            assert!((40..=1500).contains(&s), "size {s}");
        }
    }

    #[test]
    fn packet_mix_mean_close_to_analytic() {
        let mix = PacketSizeMix::backbone();
        let analytic = mix.mean();
        assert!((650.0..850.0).contains(&analytic), "analytic {analytic}");
        let m = sample_mean(200_000, |r| mix.sample(r) as f64);
        assert!((m - analytic).abs() / analytic < 0.03, "{m} vs {analytic}");
    }

    #[test]
    fn determinism_under_same_seed() {
        let d = BoundedPareto::new(1.0, 100.0, 1.5);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
