//! Synthetic OC-192-style trace generation.
//!
//! Stands in for the paper's two 1-minute CAIDA OC-192 traces (§4.1: regular
//! traffic ≈22.4 M packets / 1.45 M flows at ~22% of link rate; cross traffic
//! ≈70.4 M packets at a rate capable of driving the bottleneck above 93%).
//! The generator reproduces the *shape* that matters to the evaluation:
//!
//! * heavy-tailed flow sizes (mice/elephant mixture with a bounded-Pareto
//!   tail, calibrated to the paper's ≈15 packets-per-flow average),
//! * multi-modal packet sizes averaging ≈730 B,
//! * Poisson flow arrivals with per-flow packet trains whose rates span
//!   orders of magnitude (burstiness at the queue),
//! * a configurable aggregate target utilization.
//!
//! Everything is driven by a single seed, so traces are exactly reproducible.

use crate::distributions::{BoundedPareto, Exponential, Geometric, LogUniform, PacketSizeMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlir_net::packet::Packet;
use rlir_net::prefix::Ipv4Prefix;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use serde::{Deserialize, Serialize};

/// Which traffic class the generated packets belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceClass {
    /// Regular (measured) traffic.
    Regular,
    /// Cross traffic (load only).
    Cross,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed; equal seeds yield byte-identical traces.
    pub seed: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Link rate the utilization target refers to (default OC-192 payload
    /// rate, 9.953 Gb/s).
    pub link_rate_bps: u64,
    /// Fraction of `link_rate_bps` the trace should offer on average.
    pub target_utilization: f64,
    /// Source addresses are drawn from this block.
    pub src_prefix: Ipv4Prefix,
    /// Destination addresses are drawn from this block.
    pub dst_prefix: Ipv4Prefix,
    /// Fraction of flows that are "mice".
    pub mice_fraction: f64,
    /// Mean packets per mouse flow (geometric).
    pub mice_mean_pkts: f64,
    /// Bounded-Pareto shape for elephant flows.
    pub elephant_alpha: f64,
    /// Bounded-Pareto lower bound (packets).
    pub elephant_min_pkts: f64,
    /// Bounded-Pareto upper bound (packets).
    pub elephant_max_pkts: f64,
    /// Per-flow packet rate: log-uniform lower bound (packets/s).
    pub flow_rate_low_pps: f64,
    /// Per-flow packet rate: log-uniform upper bound (packets/s).
    pub flow_rate_high_pps: f64,
    /// Packet-size distribution.
    pub size_mix: PacketSizeMix,
    /// Packet ids are assigned sequentially starting here (lets regular and
    /// cross traces share one id namespace).
    pub first_packet_id: u64,
    /// Traffic class stamped on every generated packet.
    pub class: TraceClass,
}

impl TraceConfig {
    /// The paper's *regular* traffic, scaled to `duration`: ~22% of OC-192.
    pub fn paper_regular(seed: u64, duration: SimDuration) -> Self {
        TraceConfig {
            seed,
            duration,
            link_rate_bps: 9_953_000_000,
            target_utilization: 0.22,
            src_prefix: "10.1.0.0/16".parse().expect("static prefix"),
            dst_prefix: "10.200.0.0/16".parse().expect("static prefix"),
            mice_fraction: 0.85,
            mice_mean_pkts: 4.0,
            elephant_alpha: 1.2,
            elephant_min_pkts: 20.0,
            elephant_max_pkts: 50_000.0,
            flow_rate_low_pps: 5_000.0,
            flow_rate_high_pps: 500_000.0,
            size_mix: PacketSizeMix::backbone(),
            first_packet_id: 0,
            class: TraceClass::Regular,
        }
    }

    /// The paper's *cross* traffic: same link, different prefix, offered at
    /// ~71% of OC-192 so that full injection on top of regular traffic
    /// reaches ≈93% bottleneck utilization (§4.1 modifies cross-traffic IP
    /// addresses to distinguish the classes).
    pub fn paper_cross(seed: u64, duration: SimDuration) -> Self {
        TraceConfig {
            target_utilization: 0.71,
            src_prefix: "172.16.0.0/14".parse().expect("static prefix"),
            dst_prefix: "172.20.0.0/14".parse().expect("static prefix"),
            class: TraceClass::Cross,
            first_packet_id: 1 << 40, // disjoint id namespace
            ..Self::paper_regular(seed ^ 0xC505_5EED, duration)
        }
    }

    /// Analytic mean packets per flow of this configuration.
    pub fn mean_flow_pkts(&self) -> f64 {
        let mice = self.mice_mean_pkts;
        let elephant = BoundedPareto::new(
            self.elephant_min_pkts,
            self.elephant_max_pkts,
            self.elephant_alpha,
        )
        .mean();
        self.mice_fraction * mice + (1.0 - self.mice_fraction) * elephant
    }

    /// Expected number of flows needed to hit the utilization target.
    pub fn expected_flows(&self) -> f64 {
        let total_bytes =
            self.target_utilization * self.link_rate_bps as f64 / 8.0 * self.duration.as_secs_f64();
        let bytes_per_flow = self.mean_flow_pkts() * self.size_mix.mean();
        if bytes_per_flow <= 0.0 {
            0.0
        } else {
            total_bytes / bytes_per_flow
        }
    }
}

/// A generated trace: packets sorted by creation time.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Packets ordered by `created_at` (ties broken by id).
    pub packets: Vec<Packet>,
    /// Link rate the utilization target referred to.
    pub link_rate_bps: u64,
    /// Configured duration.
    pub duration: SimDuration,
}

impl Trace {
    /// Total bytes across all packets.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.size as u64).sum()
    }

    /// Offered load as a fraction of `link_rate_bps` over the configured
    /// duration.
    pub fn offered_utilization(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.total_bytes() as f64 * 8.0) / (self.link_rate_bps as f64 * secs)
    }

    /// Number of distinct flow keys.
    pub fn flow_count(&self) -> usize {
        let mut keys: Vec<FlowKey> = self.packets.iter().map(|p| p.flow).collect();
        keys.sort();
        keys.dedup();
        keys.len()
    }

    /// An empty trace.
    pub fn empty(link_rate_bps: u64, duration: SimDuration) -> Self {
        Trace {
            packets: Vec::new(),
            link_rate_bps,
            duration,
        }
    }
}

/// Generate a trace from `cfg`. Deterministic in `cfg.seed`.
pub fn generate(cfg: &TraceConfig) -> Trace {
    assert!(
        (0.0..=1.5).contains(&cfg.target_utilization),
        "target utilization {} out of range",
        cfg.target_utilization
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let duration_s = cfg.duration.as_secs_f64();
    let n_flows = cfg.expected_flows();
    if n_flows < 0.5 || duration_s <= 0.0 {
        return Trace::empty(cfg.link_rate_bps, cfg.duration);
    }

    let mice = Geometric::with_mean(cfg.mice_mean_pkts.max(1.0));
    let elephants = BoundedPareto::new(
        cfg.elephant_min_pkts,
        cfg.elephant_max_pkts,
        cfg.elephant_alpha,
    );
    let rate_dist = LogUniform::new(cfg.flow_rate_low_pps, cfg.flow_rate_high_pps);
    let src_pool = cfg.src_prefix.size();
    let dst_pool = cfg.dst_prefix.size();
    let target_bytes = cfg.target_utilization * cfg.link_rate_bps as f64 / 8.0 * duration_s;
    let bytes_per_flow = cfg.mean_flow_pkts() * cfg.size_mix.mean();

    // (time, flow, size); ids are assigned after the global sort so they are
    // monotone in time, which makes ground-truth joins cache-friendly.
    //
    // Flows whose trains outlive the trace are truncated (like any fixed
    // -length capture), which systematically under-delivers bytes for short
    // traces with heavy-tailed sizes. Top-up rounds superpose additional
    // Poisson flow arrivals until the byte target is met — a superposition
    // of Poisson processes is still Poisson, so the arrival model is
    // preserved while the load calibration becomes exact.
    let mut raw: Vec<(SimTime, FlowKey, u32)> = Vec::new();
    let mut produced_bytes = 0.0f64;
    for _round in 0..12 {
        let deficit = target_bytes - produced_bytes;
        let flows_needed = deficit / bytes_per_flow;
        if flows_needed < 0.5 || produced_bytes >= 0.995 * target_bytes {
            break;
        }
        let flow_arrival = Exponential::new(flows_needed / duration_s);
        let mut t = 0.0f64;
        loop {
            t += flow_arrival.sample(&mut rng);
            if t >= duration_s {
                break;
            }
            let flow = FlowKey::tcp(
                cfg.src_prefix.nth(rng.random_range(0..src_pool)),
                rng.random_range(1024..=u16::MAX),
                cfg.dst_prefix.nth(rng.random_range(0..dst_pool)),
                *[80u16, 443, 8080, 25, 53]
                    .get(rng.random_range(0..5usize))
                    .expect("in range"),
            );
            let pkts = if rng.random::<f64>() < cfg.mice_fraction {
                mice.sample(&mut rng)
            } else {
                elephants.sample(&mut rng).round() as u64
            }
            .max(1);
            let gap = Exponential::new(rate_dist.sample(&mut rng));
            let mut pt = t;
            for _ in 0..pkts {
                if pt >= duration_s {
                    break; // trace snapshot truncates long flows
                }
                let size = cfg.size_mix.sample(&mut rng);
                produced_bytes += size as f64;
                raw.push((SimTime::from_secs_f64(pt), flow, size));
                pt += gap.sample(&mut rng);
            }
        }
    }

    raw.sort_by_key(|(t, flow, _)| (*t, *flow));
    let packets = raw
        .into_iter()
        .enumerate()
        .map(|(i, (at, flow, size))| {
            let id = cfg.first_packet_id + i as u64;
            match cfg.class {
                TraceClass::Regular => Packet::regular(id, flow, size, at),
                TraceClass::Cross => Packet::cross(id, flow, size, at),
            }
        })
        .collect();
    Trace {
        packets,
        link_rate_bps: cfg.link_rate_bps,
        duration: cfg.duration,
    }
}

/// An on/off burst envelope: every `period`, transmission is squeezed into
/// the leading `duty` fraction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BurstShape {
    /// Burst repetition period.
    pub period: SimDuration,
    /// Fraction of the period spent transmitting, in `(0, 1]`.
    pub duty: f64,
}

/// Compress a trace into synchronized bursts: each packet keeps its period
/// but its offset within the period is scaled by `duty`, so all sources
/// sharing the same shape transmit in the same windows (the incast regime —
/// the long-run average load is unchanged while the instantaneous rate is
/// multiplied by `1/duty`).
pub fn compress_into_bursts(trace: &Trace, shape: BurstShape) -> Trace {
    assert!(
        shape.duty > 0.0 && shape.duty <= 1.0,
        "burst duty {} out of (0, 1]",
        shape.duty
    );
    let period = shape.period.as_nanos().max(1);
    let mut packets: Vec<Packet> = trace
        .packets
        .iter()
        .map(|p| {
            let t = p.created_at.as_nanos();
            let offset = (t % period) as f64 * shape.duty;
            let mut q = *p;
            q.created_at = SimTime::from_nanos(t - t % period + offset as u64);
            q
        })
        .collect();
    // Compression preserves order within a period up to rounding; restore
    // the (time, id) invariant every consumer relies on.
    packets.sort_by_key(|p| (p.created_at, p.id));
    Trace {
        packets,
        link_rate_bps: trace.link_rate_bps,
        duration: trace.duration,
    }
}

/// Mirror a trace into the reverse direction: every flow key is reversed
/// (src/dst and ports swapped) while timing and sizes are kept, modelling a
/// response stream of equal shape; packet ids are rebased at
/// `first_packet_id` to stay disjoint from the forward trace.
pub fn reverse(trace: &Trace, first_packet_id: u64) -> Trace {
    let packets = trace
        .packets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut q = *p;
            q.flow = reverse_flow(&p.flow);
            q.id = rlir_net::packet::PacketId(first_packet_id + i as u64);
            q
        })
        .collect();
    Trace {
        packets,
        link_rate_bps: trace.link_rate_bps,
        duration: trace.duration,
    }
}

/// The reverse-direction key of a flow (src/dst and ports swapped).
pub fn reverse_flow(flow: &FlowKey) -> FlowKey {
    FlowKey {
        src: flow.dst,
        dst: flow.src,
        proto: flow.proto,
        sport: flow.dport,
        dport: flow.sport,
    }
}

/// Merge two traces (e.g. regular + cross) into a single time-ordered trace,
/// as the paper's single input trace file contains both classes.
pub fn merge(a: &Trace, b: &Trace) -> Trace {
    debug_assert_eq!(a.link_rate_bps, b.link_rate_bps, "merging unlike traces");
    let mut packets = Vec::with_capacity(a.packets.len() + b.packets.len());
    packets.extend_from_slice(&a.packets);
    packets.extend_from_slice(&b.packets);
    packets.sort_by_key(|p| (p.created_at, p.id));
    Trace {
        packets,
        link_rate_bps: a.link_rate_bps,
        duration: a.duration.max(b.duration),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig::paper_regular(42, SimDuration::from_millis(200))
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.packets.len(), b.packets.len());
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_cfg());
        let mut cfg = small_cfg();
        cfg.seed = 43;
        let b = generate(&cfg);
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn packets_sorted_with_monotone_ids() {
        let t = generate(&small_cfg());
        assert!(!t.packets.is_empty());
        for w in t.packets.windows(2) {
            assert!(w[0].created_at <= w[1].created_at, "unsorted");
            assert!(w[0].id < w[1].id, "ids not monotone");
        }
    }

    #[test]
    fn utilization_near_target() {
        let mut cfg = TraceConfig::paper_regular(7, SimDuration::from_millis(500));
        cfg.target_utilization = 0.22;
        let t = generate(&cfg);
        let u = t.offered_utilization();
        // Heavy-tailed flow sizes make realised load noisy; ±40% is enough to
        // confirm the calibration is wired correctly (experiments measure the
        // realised utilization empirically anyway).
        assert!((0.19..=0.27).contains(&u), "utilization {u}");
    }

    #[test]
    fn timestamps_within_duration() {
        let t = generate(&small_cfg());
        let end = SimTime::ZERO + small_cfg().duration;
        assert!(t.packets.iter().all(|p| p.created_at < end));
    }

    #[test]
    fn addresses_come_from_configured_pools() {
        let cfg = small_cfg();
        let t = generate(&cfg);
        for p in &t.packets {
            assert!(cfg.src_prefix.contains(p.flow.src), "src {}", p.flow.src);
            assert!(cfg.dst_prefix.contains(p.flow.dst), "dst {}", p.flow.dst);
        }
    }

    #[test]
    fn classes_and_id_namespaces_disjoint() {
        let reg = generate(&TraceConfig::paper_regular(1, SimDuration::from_millis(50)));
        let cross = generate(&TraceConfig::paper_cross(1, SimDuration::from_millis(50)));
        assert!(reg.packets.iter().all(|p| p.is_regular()));
        assert!(cross.packets.iter().all(|p| p.is_cross()));
        let max_reg = reg.packets.iter().map(|p| p.id.0).max().unwrap();
        let min_cross = cross.packets.iter().map(|p| p.id.0).min().unwrap();
        assert!(max_reg < min_cross);
    }

    #[test]
    fn mean_flow_pkts_in_paper_ballpark() {
        // The paper's regular trace has 22.4M packets / 1.45M flows ≈ 15.4.
        let m = small_cfg().mean_flow_pkts();
        assert!((10.0..25.0).contains(&m), "mean flow pkts {m}");
    }

    #[test]
    fn flow_count_tracks_expected() {
        let cfg = TraceConfig::paper_regular(3, SimDuration::from_millis(500));
        let t = generate(&cfg);
        let expected = cfg.expected_flows();
        let got = t.flow_count() as f64;
        assert!(
            got > expected * 0.5 && got < expected * 2.0,
            "flows {got} vs expected {expected}"
        );
    }

    #[test]
    fn zero_utilization_yields_empty() {
        let mut cfg = small_cfg();
        cfg.target_utilization = 0.0;
        assert!(generate(&cfg).packets.is_empty());
    }

    #[test]
    fn merge_interleaves_sorted() {
        let reg = generate(&TraceConfig::paper_regular(1, SimDuration::from_millis(20)));
        let cross = generate(&TraceConfig::paper_cross(1, SimDuration::from_millis(20)));
        let m = merge(&reg, &cross);
        assert_eq!(m.packets.len(), reg.packets.len() + cross.packets.len());
        for w in m.packets.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn burst_compression_preserves_bytes_and_order() {
        let t = generate(&small_cfg());
        let shape = BurstShape {
            period: SimDuration::from_millis(5),
            duty: 0.2,
        };
        let b = compress_into_bursts(&t, shape);
        assert_eq!(b.packets.len(), t.packets.len());
        assert_eq!(b.total_bytes(), t.total_bytes());
        for w in b.packets.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
        // Every packet lands inside its period's on-window.
        let period = shape.period.as_nanos();
        let on = (period as f64 * shape.duty) as u64;
        for p in &b.packets {
            assert!(p.created_at.as_nanos() % period <= on, "{:?}", p.created_at);
        }
    }

    #[test]
    fn burst_compression_raises_peak_rate() {
        let t = generate(&small_cfg());
        let shape = BurstShape {
            period: SimDuration::from_millis(10),
            duty: 0.25,
        };
        let b = compress_into_bursts(&t, shape);
        // Count packets in the first on-window vs the rest of the period.
        let period = shape.period.as_nanos();
        let on = (period as f64 * shape.duty) as u64;
        let in_window = b
            .packets
            .iter()
            .filter(|p| p.created_at.as_nanos() % period <= on)
            .count();
        assert_eq!(in_window, b.packets.len(), "all packets inside bursts");
    }

    #[test]
    fn reverse_swaps_flows_and_rebases_ids() {
        let t = generate(&small_cfg());
        let r = reverse(&t, 1 << 39);
        assert_eq!(r.packets.len(), t.packets.len());
        for (f, b) in t.packets.iter().zip(&r.packets) {
            assert_eq!(b.flow, reverse_flow(&f.flow));
            assert_eq!(reverse_flow(&b.flow), f.flow, "reversal is an involution");
            assert_eq!(b.created_at, f.created_at);
            assert_eq!(b.size, f.size);
            assert!(b.id.0 >= 1 << 39);
        }
    }

    #[test]
    fn cross_trace_rate_supports_93pct_total() {
        // regular ~0.22 + cross ~0.71 ≈ 0.93 of the bottleneck (§4.1).
        let cross = TraceConfig::paper_cross(5, SimDuration::from_millis(500));
        let t = generate(&cross);
        let u = t.offered_utilization();
        assert!((0.62..=0.82).contains(&u), "cross utilization {u}");
    }
}
