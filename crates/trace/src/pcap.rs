//! pcap export/import.
//!
//! Writes traces as standard libpcap files (nanosecond-precision variant,
//! `LINKTYPE_RAW` = raw IPv4, header-only snapshots) so synthetic workloads
//! can be inspected with tcpdump/Wireshark and exchanged with other tools —
//! the same interoperability an open-source release of the paper's
//! simulator would need. A matching reader recovers flow keys, sizes and
//! timestamps for round-trip testing and for importing externally captured
//! headers.

use crate::synthetic::Trace;
use rlir_net::time::SimTime;
use rlir_net::wire::{internet_checksum, Ipv4Header, IPV4_HEADER_LEN};
use rlir_net::{FlowKey, Protocol};
use std::io::{self, Read, Write};

/// Nanosecond-resolution pcap magic.
pub const PCAP_MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_RAW: packets begin with the IPv4 header.
pub const LINKTYPE_RAW: u32 = 101;
const TCP_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
/// Snapshot length: enough for IPv4 + TCP headers.
pub const SNAPLEN: u32 = 64;

/// Errors from pcap I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a (nanosecond) pcap file.
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A record was malformed.
    BadRecord(&'static str),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported pcap linktype {l}"),
            PcapError::BadRecord(what) => write!(f, "malformed pcap record: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

fn transport_header(flow: &FlowKey, payload_len: u16) -> Vec<u8> {
    match flow.proto {
        Protocol::Udp => {
            let mut h = Vec::with_capacity(UDP_HEADER_LEN);
            h.extend_from_slice(&flow.sport.to_be_bytes());
            h.extend_from_slice(&flow.dport.to_be_bytes());
            h.extend_from_slice(&(UDP_HEADER_LEN as u16 + payload_len).to_be_bytes());
            h.extend_from_slice(&0u16.to_be_bytes()); // checksum optional
            h
        }
        _ => {
            // TCP (and anything else rendered as TCP-like for inspection).
            let mut h = vec![0u8; TCP_HEADER_LEN];
            h[0..2].copy_from_slice(&flow.sport.to_be_bytes());
            h[2..4].copy_from_slice(&flow.dport.to_be_bytes());
            h[12] = (5 << 4) as u8; // data offset: 5 words
            h[13] = 0x10; // ACK
            h[14..16].copy_from_slice(&65_535u16.to_be_bytes());
            let csum = internet_checksum(&h);
            h[16..18].copy_from_slice(&csum.to_be_bytes());
            h
        }
    }
}

/// Write a trace as a nanosecond pcap (header-only snapshots).
pub fn write_pcap<W: Write>(trace: &Trace, w: &mut W) -> Result<(), PcapError> {
    // Global header.
    w.write_all(&PCAP_MAGIC_NS.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // major
    w.write_all(&4u16.to_le_bytes())?; // minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&SNAPLEN.to_le_bytes())?;
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for p in &trace.packets {
        let transport = transport_header(&p.flow, 0);
        let captured = IPV4_HEADER_LEN + transport.len();
        let orig = (p.size as usize).max(captured);
        let ns = p.created_at.as_nanos();
        w.write_all(&((ns / 1_000_000_000) as u32).to_le_bytes())?;
        w.write_all(&((ns % 1_000_000_000) as u32).to_le_bytes())?;
        w.write_all(&(captured as u32).to_le_bytes())?;
        w.write_all(&(orig as u32).to_le_bytes())?;
        let mut ip = Vec::with_capacity(captured);
        Ipv4Header {
            tos: p.mark,
            total_len: orig.min(u16::MAX as usize) as u16,
            ident: (p.id.0 & 0xFFFF) as u16,
            ttl: 64,
            proto: p.flow.proto,
            src: p.flow.src,
            dst: p.flow.dst,
        }
        .encode(&mut ip);
        ip.extend_from_slice(&transport);
        w.write_all(&ip)?;
    }
    Ok(())
}

/// A packet header recovered from a pcap file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// Original (on-the-wire) length.
    pub orig_len: u32,
    /// Recovered flow key (ports zero for non-TCP/UDP).
    pub flow: FlowKey,
    /// The IPv4 ToS byte (RLIR's mark field).
    pub tos: u8,
}

/// Read a nanosecond raw-IP pcap written by [`write_pcap`] (or any capture
/// with the same framing).
pub fn read_pcap<R: Read>(r: &mut R) -> Result<Vec<PcapRecord>, PcapError> {
    let mut gh = [0u8; 24];
    r.read_exact(&mut gh)?;
    let magic = u32::from_le_bytes(gh[0..4].try_into().expect("4"));
    if magic != PCAP_MAGIC_NS {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32::from_le_bytes(gh[20..24].try_into().expect("4"));
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::BadLinkType(linktype));
    }

    let mut out = Vec::new();
    loop {
        let mut rh = [0u8; 16];
        match r.read_exact(&mut rh) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let sec = u32::from_le_bytes(rh[0..4].try_into().expect("4")) as u64;
        let nsec = u32::from_le_bytes(rh[4..8].try_into().expect("4")) as u64;
        let incl = u32::from_le_bytes(rh[8..12].try_into().expect("4")) as usize;
        let orig = u32::from_le_bytes(rh[12..16].try_into().expect("4"));
        let mut body = vec![0u8; incl];
        r.read_exact(&mut body)?;
        let (ip, ip_len) =
            Ipv4Header::decode(&body).map_err(|_| PcapError::BadRecord("ipv4 header"))?;
        let (sport, dport) = match ip.proto {
            Protocol::Tcp | Protocol::Udp if body.len() >= ip_len + 4 => (
                u16::from_be_bytes([body[ip_len], body[ip_len + 1]]),
                u16::from_be_bytes([body[ip_len + 2], body[ip_len + 3]]),
            ),
            _ => (0, 0),
        };
        out.push(PcapRecord {
            at: SimTime::from_nanos(sec * 1_000_000_000 + nsec),
            orig_len: orig,
            flow: FlowKey {
                src: ip.src,
                dst: ip.dst,
                proto: ip.proto,
                sport,
                dport,
            },
            tos: ip.tos,
        });
    }
    Ok(out)
}

/// Convenience: export a trace to a pcap file on disk.
pub fn save_pcap(trace: &Trace, path: &std::path::Path) -> Result<(), PcapError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_pcap(trace, &mut f)?;
    f.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, TraceConfig};
    use rlir_net::time::SimDuration;

    fn sample() -> Trace {
        generate(&TraceConfig::paper_regular(19, SimDuration::from_millis(5)))
    }

    #[test]
    fn round_trip_preserves_headers() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let records = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(records.len(), t.packets.len());
        for (rec, p) in records.iter().zip(&t.packets) {
            assert_eq!(rec.flow, p.flow, "flow key mismatch");
            assert_eq!(rec.at, p.created_at, "timestamp mismatch");
            assert_eq!(rec.orig_len, p.size.max(40), "length mismatch");
        }
    }

    #[test]
    fn global_header_is_valid_pcap() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC_NS
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn udp_and_tcp_transport_headers() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(10));
        t.packets.push(Packet::regular(
            1,
            FlowKey::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                5353,
                Ipv4Addr::new(5, 6, 7, 8),
                53,
            ),
            200,
            SimTime::from_nanos(42),
        ));
        t.packets.push(Packet::regular(
            2,
            FlowKey::tcp(
                Ipv4Addr::new(9, 9, 9, 9),
                8080,
                Ipv4Addr::new(8, 8, 8, 8),
                443,
            ),
            1500,
            SimTime::from_nanos(43),
        ));
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].flow.sport, 5353);
        assert_eq!(recs[0].flow.dport, 53);
        assert_eq!(recs[1].flow.sport, 8080);
        assert_eq!(recs[1].flow.proto, Protocol::Tcp);
    }

    #[test]
    fn marks_exported_as_tos() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(1));
        let mut p = Packet::regular(
            1,
            FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            100,
            SimTime::ZERO,
        );
        p.mark = 3;
        t.packets.push(p);
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].tos, 3);
    }

    #[test]
    fn rejects_foreign_files() {
        let junk = vec![0u8; 24];
        assert!(matches!(
            read_pcap(&mut junk.as_slice()),
            Err(PcapError::BadMagic(0))
        ));
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("rlir-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pcap");
        save_pcap(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let recs = read_pcap(&mut bytes.as_slice()).unwrap();
        assert_eq!(recs.len(), t.packets.len());
        std::fs::remove_file(&path).ok();
    }
}
