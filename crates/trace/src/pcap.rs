//! pcap export/import.
//!
//! Writes traces as standard libpcap files (nanosecond-precision variant,
//! `LINKTYPE_RAW` = raw IPv4, header-only snapshots) so synthetic workloads
//! can be inspected with tcpdump/Wireshark and exchanged with other tools —
//! the same interoperability an open-source release of the paper's
//! simulator would need. A matching reader recovers flow keys, sizes and
//! timestamps for round-trip testing and for importing externally captured
//! headers.

use crate::synthetic::Trace;
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;
use rlir_net::wire::{internet_checksum, Ipv4Header, IPV4_HEADER_LEN};
use rlir_net::{FlowKey, Protocol};
use std::io::{self, Read, Write};

/// Nanosecond-resolution pcap magic.
pub const PCAP_MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_RAW: packets begin with the IPv4 header.
pub const LINKTYPE_RAW: u32 = 101;
const TCP_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
/// Snapshot length: enough for IPv4 + TCP headers.
pub const SNAPLEN: u32 = 64;

/// Why a record was malformed — with absolute byte offsets into the
/// capture, so strict-mode errors point at the damage and lenient-mode
/// skip counts are auditable against the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadRecord {
    /// EOF inside the 16-byte record header that starts at `offset`.
    TruncatedHeader {
        /// Absolute offset of the truncated record header.
        offset: u64,
    },
    /// EOF inside a record body: the header at `offset` declared
    /// `expected` captured bytes but only `got` were present.
    TruncatedBody {
        /// Absolute offset of the record's header.
        offset: u64,
        /// Captured length the header declared.
        expected: u32,
        /// Bytes actually present before EOF.
        got: u32,
    },
    /// The record body at `offset` does not decode as an IPv4 header.
    BadIpv4 {
        /// Absolute offset of the record's header.
        offset: u64,
    },
}

impl core::fmt::Display for BadRecord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BadRecord::TruncatedHeader { offset } => {
                write!(f, "truncated record header at offset {offset}")
            }
            BadRecord::TruncatedBody {
                offset,
                expected,
                got,
            } => write!(
                f,
                "truncated record body (header at offset {offset}: {expected} bytes declared, {got} present)"
            ),
            BadRecord::BadIpv4 { offset } => {
                write!(f, "undecodable ipv4 header in record at offset {offset}")
            }
        }
    }
}

/// Errors from pcap I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a (nanosecond) pcap file.
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A record was malformed (see [`BadRecord`] for where and why).
    BadRecord(BadRecord),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported pcap linktype {l}"),
            PcapError::BadRecord(what) => write!(f, "malformed pcap record: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Append the transport header for `flow` to `out` (TCP for anything
/// that isn't UDP — "TCP-like for inspection").
fn encode_transport(flow: &FlowKey, payload_len: u16, out: &mut Vec<u8>) {
    match flow.proto {
        Protocol::Udp => {
            out.extend_from_slice(&flow.sport.to_be_bytes());
            out.extend_from_slice(&flow.dport.to_be_bytes());
            out.extend_from_slice(&(UDP_HEADER_LEN as u16 + payload_len).to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // checksum optional
        }
        _ => {
            let start = out.len();
            out.resize(start + TCP_HEADER_LEN, 0);
            let h = &mut out[start..];
            h[0..2].copy_from_slice(&flow.sport.to_be_bytes());
            h[2..4].copy_from_slice(&flow.dport.to_be_bytes());
            h[12] = (5 << 4) as u8; // data offset: 5 words
            h[13] = 0x10; // ACK
            h[14..16].copy_from_slice(&65_535u16.to_be_bytes());
            let csum = internet_checksum(&out[start..]);
            out[start + 16..start + 18].copy_from_slice(&csum.to_be_bytes());
        }
    }
}

fn transport_len(flow: &FlowKey) -> usize {
    match flow.proto {
        Protocol::Udp => UDP_HEADER_LEN,
        _ => TCP_HEADER_LEN,
    }
}

/// Incremental nanosecond-pcap writer: the global header goes out at
/// construction, each [`write`](Self::write) appends one record through a
/// single reused scratch buffer. This is the streaming counterpart of
/// [`write_pcap`] (which is now a thin loop over it): a capture of any
/// length is produced in O(1) memory, so bench harnesses can generate
/// multi-million-packet files chunk by chunk without ever materializing a
/// whole [`Trace`].
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    scratch: Vec<u8>,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the pcap global header and return the writer.
    pub fn new(mut w: W) -> Result<Self, PcapError> {
        w.write_all(&PCAP_MAGIC_NS.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // major
        w.write_all(&4u16.to_le_bytes())?; // minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&SNAPLEN.to_le_bytes())?;
        w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter {
            w,
            scratch: Vec::with_capacity(SNAPLEN as usize + 16),
            records: 0,
        })
    }

    /// Append one packet as a header-only record (timestamp from
    /// `packet.created_at`, identity as the 16-bit IP ident, mark as ToS).
    pub fn write(&mut self, p: &Packet) -> Result<(), PcapError> {
        let captured = IPV4_HEADER_LEN + transport_len(&p.flow);
        let orig = (p.size as usize).max(captured);
        let ns = p.created_at.as_nanos();
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&((ns / 1_000_000_000) as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&((ns % 1_000_000_000) as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&(captured as u32).to_le_bytes());
        self.scratch.extend_from_slice(&(orig as u32).to_le_bytes());
        Ipv4Header {
            tos: p.mark,
            total_len: orig.min(u16::MAX as usize) as u16,
            ident: (p.id.0 & 0xFFFF) as u16,
            ttl: 64,
            proto: p.flow.proto,
            src: p.flow.src,
            dst: p.flow.dst,
        }
        .encode(&mut self.scratch);
        encode_transport(&p.flow, 0, &mut self.scratch);
        self.w.write_all(&self.scratch)?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, PcapError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Write a trace as a nanosecond pcap (header-only snapshots).
pub fn write_pcap<W: Write>(trace: &Trace, w: &mut W) -> Result<(), PcapError> {
    let mut pw = PcapWriter::new(w)?;
    for p in &trace.packets {
        pw.write(p)?;
    }
    Ok(())
}

/// A packet header recovered from a pcap file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// Original (on-the-wire) length.
    pub orig_len: u32,
    /// Recovered flow key (ports zero for non-TCP/UDP).
    pub flow: FlowKey,
    /// The IPv4 ToS byte (RLIR's mark field).
    pub tos: u8,
    /// The 16-bit IPv4 identification field — the wire-visible packet
    /// identity ([`write_pcap`] stores the low 16 bits of the packet id
    /// here; capture-point matching keys on 5-tuple + ident).
    pub ident: u16,
}

/// How [`PcapRecords`] treats damaged input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// Damage is fatal: the first malformed record yields
    /// `Err(PcapError::BadRecord(..))` and iteration ends. The hostile-
    /// ingest oracle — on clean input, lenient mode is byte-identical to
    /// this.
    #[default]
    Strict,
    /// Skip-and-count: truncation becomes a counted clean end, a record
    /// whose body fails IPv4 decode is skipped, and an implausible record
    /// header triggers a byte-at-a-time **resync scan** for the next
    /// plausible record whose body decodes as IPv4. Every decision is
    /// counted ([`PcapRecords::skipped_records`],
    /// [`PcapRecords::skipped_bytes`], [`PcapRecords::resyncs`]) — damage
    /// is survived, never hidden.
    Lenient,
}

/// Streaming record iterator over a nanosecond raw-IP pcap: validates the
/// global header up front, then decodes one record per [`Iterator::next`]
/// through a single reused scratch buffer — O(snaplen) memory for a
/// capture of any length, and the decode path [`read_pcap`] itself now
/// runs on (its old implementation allocated a fresh body `Vec` per
/// record).
///
/// In the default [`IngestMode::Strict`], truncation is an error, not an
/// end: a file that stops mid-record header or mid-body yields
/// `Err(PcapError::BadRecord(..))` — with the damage's byte offset —
/// rather than being silently accepted as complete. Clean EOF at a record
/// boundary ends the iteration. [`PcapRecords::lenient`] opts into
/// skip-and-count survival of damaged captures.
#[derive(Debug)]
pub struct PcapRecords<R: Read> {
    r: R,
    scratch: Vec<u8>,
    done: bool,
    mode: IngestMode,
    /// Absolute offset of the next unconsumed byte (starts at 24, past
    /// the global header).
    offset: u64,
    /// Bytes read ahead and given back during a lenient resync scan;
    /// always empty in strict mode.
    lookahead: std::collections::VecDeque<u8>,
    skipped_records: u64,
    skipped_bytes: u64,
    resyncs: u64,
}

impl<R: Read> PcapRecords<R> {
    /// Read and validate the pcap global header, returning the iterator.
    pub fn new(mut r: R) -> Result<Self, PcapError> {
        let mut gh = [0u8; 24];
        r.read_exact(&mut gh)?;
        let magic = u32::from_le_bytes(gh[0..4].try_into().expect("4"));
        if magic != PCAP_MAGIC_NS {
            return Err(PcapError::BadMagic(magic));
        }
        let linktype = u32::from_le_bytes(gh[20..24].try_into().expect("4"));
        if linktype != LINKTYPE_RAW {
            return Err(PcapError::BadLinkType(linktype));
        }
        Ok(PcapRecords {
            r,
            scratch: Vec::with_capacity(SNAPLEN as usize),
            done: false,
            mode: IngestMode::default(),
            offset: 24,
            lookahead: std::collections::VecDeque::new(),
            skipped_records: 0,
            skipped_bytes: 0,
            resyncs: 0,
        })
    }

    /// Switch to [`IngestMode::Lenient`] (builder style).
    pub fn lenient(mut self) -> Self {
        self.mode = IngestMode::Lenient;
        self
    }

    /// Records skipped by lenient mode (always 0 in strict mode).
    pub fn skipped_records(&self) -> u64 {
        self.skipped_records
    }

    /// Bytes discarded by lenient mode: partial trailing records plus
    /// garbage scanned over during resyncs.
    pub fn skipped_bytes(&self) -> u64 {
        self.skipped_bytes
    }

    /// Resync scans performed by lenient mode.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Fill the scratch buffer with up to `len` bytes (lookahead bytes
    /// first, then the reader) and return how many arrived; fewer than
    /// `len` means EOF. Advances the byte offset.
    fn read_fully(&mut self, len: usize) -> Result<usize, PcapError> {
        self.scratch.clear();
        self.scratch.resize(len, 0);
        let mut got = 0usize;
        while got < len {
            if let Some(b) = self.lookahead.pop_front() {
                self.scratch[got] = b;
                got += 1;
                continue;
            }
            match self.r.read(&mut self.scratch[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.scratch.truncate(got);
        self.offset += got as u64;
        Ok(got)
    }

    /// Could these 16 bytes be a record header of this capture? The
    /// resync filter: captured length must fit an IPv4 header and the
    /// 16-bit length space, and the original length can't be shorter than
    /// the capture.
    fn plausible_header(incl: usize, orig: u32) -> bool {
        (IPV4_HEADER_LEN..=65_535).contains(&incl) && orig as usize >= incl
    }

    /// Decode a record body (scratch) under an already-parsed header.
    fn decode_body(body: &[u8], sec: u64, nsec: u64, orig: u32) -> Option<PcapRecord> {
        let (ip, ip_len) = Ipv4Header::decode(body).ok()?;
        let (sport, dport) = match ip.proto {
            Protocol::Tcp | Protocol::Udp if body.len() >= ip_len + 4 => (
                u16::from_be_bytes([body[ip_len], body[ip_len + 1]]),
                u16::from_be_bytes([body[ip_len + 2], body[ip_len + 3]]),
            ),
            _ => (0, 0),
        };
        Some(PcapRecord {
            at: SimTime::from_nanos(sec * 1_000_000_000 + nsec),
            orig_len: orig,
            flow: FlowKey {
                src: ip.src,
                dst: ip.dst,
                proto: ip.proto,
                sport,
                dport,
            },
            tos: ip.tos,
            ident: ip.ident,
        })
    }

    fn parse_header(h: &[u8]) -> (u64, u64, usize, u32) {
        (
            u32::from_le_bytes(h[0..4].try_into().expect("4")) as u64,
            u32::from_le_bytes(h[4..8].try_into().expect("4")) as u64,
            u32::from_le_bytes(h[8..12].try_into().expect("4")) as usize,
            u32::from_le_bytes(h[12..16].try_into().expect("4")),
        )
    }

    fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        loop {
            let header_off = self.offset;
            let got = self.read_fully(16)?;
            if got == 0 {
                return Ok(None);
            }
            if got < 16 {
                if self.mode == IngestMode::Lenient {
                    // Partial trailing header: a torn capture ends here.
                    self.skipped_bytes += got as u64;
                    return Ok(None);
                }
                return Err(PcapError::BadRecord(BadRecord::TruncatedHeader {
                    offset: header_off,
                }));
            }
            let (sec, nsec, incl, orig) = Self::parse_header(&self.scratch);
            if self.mode == IngestMode::Lenient && !Self::plausible_header(incl, orig) {
                // Corrupt framing: scan forward for the next record.
                return self.resync();
            }
            let got_b = self.read_fully(incl)?;
            if got_b < incl {
                if self.mode == IngestMode::Lenient {
                    // Torn final record.
                    self.skipped_records += 1;
                    self.skipped_bytes += 16 + got_b as u64;
                    return Ok(None);
                }
                return Err(PcapError::BadRecord(BadRecord::TruncatedBody {
                    offset: header_off,
                    expected: incl as u32,
                    got: got_b as u32,
                }));
            }
            match Self::decode_body(&self.scratch, sec, nsec, orig) {
                Some(rec) => return Ok(Some(rec)),
                None if self.mode == IngestMode::Lenient => {
                    // Plausible framing, rotten body: skip this record
                    // (its bytes are consumed) and keep going.
                    self.skipped_records += 1;
                    self.skipped_bytes += 16 + incl as u64;
                }
                None => {
                    return Err(PcapError::BadRecord(BadRecord::BadIpv4 {
                        offset: header_off,
                    }));
                }
            }
        }
    }

    /// Lenient resync: slide a 16-byte window one byte at a time until it
    /// parses as a plausible record header whose body decodes as IPv4 —
    /// the "magic" this raw-IP format has (version/IHL nibble, length
    /// consistency) — counting every discarded byte. The implausible
    /// header that triggered the scan is in scratch on entry.
    fn resync(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        self.resyncs += 1;
        self.skipped_records += 1;
        let mut win: std::collections::VecDeque<u8> = self.scratch.drain(..).collect();
        loop {
            win.pop_front();
            self.skipped_bytes += 1;
            while win.len() < 16 {
                if self.read_fully(1)? == 0 {
                    // EOF mid-scan: whatever is left can't be a record.
                    self.skipped_bytes += win.len() as u64;
                    return Ok(None);
                }
                win.push_back(self.scratch[0]);
            }
            let h: Vec<u8> = win.iter().copied().collect();
            let (sec, nsec, incl, orig) = Self::parse_header(&h);
            if !Self::plausible_header(incl, orig) {
                continue;
            }
            let got = self.read_fully(incl)?;
            if got == incl {
                if let Some(rec) = Self::decode_body(&self.scratch, sec, nsec, orig) {
                    return Ok(Some(rec));
                }
            }
            // Not a record after all (body short of the claimed length,
            // or not IPv4): give the body bytes back and keep sliding —
            // a fake length field must not swallow the genuine records
            // behind it.
            self.offset -= got as u64;
            for b in self.scratch.drain(..).rev() {
                self.lookahead.push_front(b);
            }
        }
    }
}

impl<R: Read> Iterator for PcapRecords<R> {
    type Item = Result<PcapRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Read a nanosecond raw-IP pcap written by [`write_pcap`] (or any capture
/// with the same framing) all at once. Runs on [`PcapRecords`], so decode
/// reuses one scratch buffer; only the output `Vec` grows with the file.
pub fn read_pcap<R: Read>(r: &mut R) -> Result<Vec<PcapRecord>, PcapError> {
    PcapRecords::new(r)?.collect()
}

/// Open a pcap file on disk as a buffered streaming record iterator.
pub fn open_pcap(
    path: &std::path::Path,
) -> Result<PcapRecords<io::BufReader<std::fs::File>>, PcapError> {
    PcapRecords::new(io::BufReader::new(std::fs::File::open(path)?))
}

/// Convenience: export a trace to a pcap file on disk.
pub fn save_pcap(trace: &Trace, path: &std::path::Path) -> Result<(), PcapError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_pcap(trace, &mut f)?;
    f.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, TraceConfig};
    use rlir_net::time::SimDuration;

    fn sample() -> Trace {
        generate(&TraceConfig::paper_regular(19, SimDuration::from_millis(5)))
    }

    #[test]
    fn round_trip_preserves_headers() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let records = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(records.len(), t.packets.len());
        for (rec, p) in records.iter().zip(&t.packets) {
            assert_eq!(rec.flow, p.flow, "flow key mismatch");
            assert_eq!(rec.at, p.created_at, "timestamp mismatch");
            assert_eq!(rec.orig_len, p.size.max(40), "length mismatch");
        }
    }

    #[test]
    fn global_header_is_valid_pcap() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC_NS
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn udp_and_tcp_transport_headers() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(10));
        t.packets.push(Packet::regular(
            1,
            FlowKey::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                5353,
                Ipv4Addr::new(5, 6, 7, 8),
                53,
            ),
            200,
            SimTime::from_nanos(42),
        ));
        t.packets.push(Packet::regular(
            2,
            FlowKey::tcp(
                Ipv4Addr::new(9, 9, 9, 9),
                8080,
                Ipv4Addr::new(8, 8, 8, 8),
                443,
            ),
            1500,
            SimTime::from_nanos(43),
        ));
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].flow.sport, 5353);
        assert_eq!(recs[0].flow.dport, 53);
        assert_eq!(recs[1].flow.sport, 8080);
        assert_eq!(recs[1].flow.proto, Protocol::Tcp);
    }

    #[test]
    fn marks_exported_as_tos() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(1));
        let mut p = Packet::regular(
            1,
            FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            100,
            SimTime::ZERO,
        );
        p.mark = 3;
        t.packets.push(p);
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].tos, 3);
    }

    #[test]
    fn rejects_foreign_files() {
        let junk = vec![0u8; 24];
        assert!(matches!(
            read_pcap(&mut junk.as_slice()),
            Err(PcapError::BadMagic(0))
        ));
    }

    /// n TCP records: 24-byte global header then 56 bytes per record
    /// (16 header + 20 IPv4 + 20 TCP).
    fn tcp_capture(n: u64) -> Vec<u8> {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            w.write(&Packet::regular(
                i,
                FlowKey::tcp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    1000 + i as u16,
                    Ipv4Addr::new(10, 1, 0, 1),
                    80,
                ),
                1000,
                SimTime::from_nanos(i * 100),
            ))
            .unwrap();
        }
        w.finish().unwrap()
    }

    const REC: usize = 16 + IPV4_HEADER_LEN + TCP_HEADER_LEN;

    fn drain_lenient(bytes: &[u8]) -> (Vec<PcapRecord>, u64, u64, u64) {
        let mut it = PcapRecords::new(bytes).unwrap().lenient();
        let recs: Vec<PcapRecord> = (&mut it)
            .map(|r| r.expect("lenient never errors"))
            .collect();
        (recs, it.skipped_records(), it.skipped_bytes(), it.resyncs())
    }

    #[test]
    fn lenient_is_identical_to_strict_on_clean_capture() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let strict: Vec<PcapRecord> = PcapRecords::new(buf.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let (lenient, skipped, bytes, resyncs) = drain_lenient(&buf);
        assert_eq!(strict, lenient);
        assert_eq!((skipped, bytes, resyncs), (0, 0, 0));
    }

    #[test]
    fn lenient_skips_checksum_corrupt_record_strict_errors() {
        let mut buf = tcp_capture(10);
        // Flip the TTL byte of record 4's IPv4 header: framing stays
        // plausible, the checksum no longer verifies.
        let off = 24 + 4 * REC + 16 + 8;
        buf[off] ^= 0xFF;
        let strict_err = PcapRecords::new(buf.as_slice())
            .unwrap()
            .find_map(Result::err)
            .expect("strict must fail");
        assert_eq!(
            strict_err.to_string(),
            PcapError::BadRecord(BadRecord::BadIpv4 {
                offset: (24 + 4 * REC) as u64
            })
            .to_string()
        );
        let (recs, skipped, bytes, resyncs) = drain_lenient(&buf);
        assert_eq!(recs.len(), 9, "one rotten record skipped");
        assert_eq!(skipped, 1);
        assert_eq!(bytes, REC as u64);
        assert_eq!(resyncs, 0, "framing was intact, no scan needed");
        // Every surviving record is genuine.
        assert!(recs.iter().all(|r| r.ident != 4));
    }

    #[test]
    fn lenient_resyncs_over_injected_garbage() {
        let clean = tcp_capture(10);
        // Splice 13 garbage bytes between records 2 and 3: the next
        // "header" parse sees junk and an absurd captured length.
        let cut = 24 + 3 * REC;
        let mut buf = Vec::new();
        buf.extend_from_slice(&clean[..cut]);
        buf.extend_from_slice(&[0xFF; 13]);
        buf.extend_from_slice(&clean[cut..]);
        let (recs, skipped, bytes, resyncs) = drain_lenient(&buf);
        assert_eq!(recs.len(), 10, "every real record survives the splice");
        let idents: Vec<u16> = recs.iter().map(|r| r.ident).collect();
        assert_eq!(idents, (0..10).collect::<Vec<u16>>());
        assert_eq!(resyncs, 1);
        assert_eq!(skipped, 1, "the phantom record the garbage faked");
        assert_eq!(bytes, 13, "exactly the garbage, nothing genuine");
    }

    #[test]
    fn truncated_body_strict_offset_lenient_clean_end() {
        let mut buf = tcp_capture(10);
        buf.truncate(buf.len() - 7);
        let strict_err = PcapRecords::new(buf.as_slice())
            .unwrap()
            .find_map(Result::err)
            .expect("strict must fail");
        match strict_err {
            PcapError::BadRecord(BadRecord::TruncatedBody {
                offset,
                expected,
                got,
            }) => {
                assert_eq!(offset, (24 + 9 * REC) as u64);
                assert_eq!(expected, (IPV4_HEADER_LEN + TCP_HEADER_LEN) as u32);
                assert_eq!(got, (IPV4_HEADER_LEN + TCP_HEADER_LEN - 7) as u32);
            }
            other => panic!("wrong error: {other:?}"),
        }
        let (recs, skipped, bytes, _) = drain_lenient(&buf);
        assert_eq!(recs.len(), 9);
        assert_eq!(skipped, 1);
        assert_eq!(bytes, (REC - 7) as u64);
    }

    #[test]
    fn truncated_header_strict_offset_lenient_clean_end() {
        let mut buf = tcp_capture(3);
        buf.truncate(24 + 2 * REC + 10);
        let strict_err = PcapRecords::new(buf.as_slice())
            .unwrap()
            .find_map(Result::err)
            .expect("strict must fail");
        assert!(matches!(
            strict_err,
            PcapError::BadRecord(BadRecord::TruncatedHeader { offset })
                if offset == (24 + 2 * REC) as u64
        ));
        let (recs, skipped, bytes, _) = drain_lenient(&buf);
        assert_eq!(recs.len(), 2);
        assert_eq!(skipped, 0, "a torn header is not a record");
        assert_eq!(bytes, 10);
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("rlir-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pcap");
        save_pcap(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let recs = read_pcap(&mut bytes.as_slice()).unwrap();
        assert_eq!(recs.len(), t.packets.len());
        std::fs::remove_file(&path).ok();
    }
}
