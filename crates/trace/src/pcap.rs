//! pcap export/import.
//!
//! Writes traces as standard libpcap files (nanosecond-precision variant,
//! `LINKTYPE_RAW` = raw IPv4, header-only snapshots) so synthetic workloads
//! can be inspected with tcpdump/Wireshark and exchanged with other tools —
//! the same interoperability an open-source release of the paper's
//! simulator would need. A matching reader recovers flow keys, sizes and
//! timestamps for round-trip testing and for importing externally captured
//! headers.

use crate::synthetic::Trace;
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;
use rlir_net::wire::{internet_checksum, Ipv4Header, IPV4_HEADER_LEN};
use rlir_net::{FlowKey, Protocol};
use std::io::{self, Read, Write};

/// Nanosecond-resolution pcap magic.
pub const PCAP_MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_RAW: packets begin with the IPv4 header.
pub const LINKTYPE_RAW: u32 = 101;
const TCP_HEADER_LEN: usize = 20;
const UDP_HEADER_LEN: usize = 8;
/// Snapshot length: enough for IPv4 + TCP headers.
pub const SNAPLEN: u32 = 64;

/// Errors from pcap I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a (nanosecond) pcap file.
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A record was malformed.
    BadRecord(&'static str),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "i/o error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported pcap linktype {l}"),
            PcapError::BadRecord(what) => write!(f, "malformed pcap record: {what}"),
        }
    }
}

impl std::error::Error for PcapError {}

/// Append the transport header for `flow` to `out` (TCP for anything
/// that isn't UDP — "TCP-like for inspection").
fn encode_transport(flow: &FlowKey, payload_len: u16, out: &mut Vec<u8>) {
    match flow.proto {
        Protocol::Udp => {
            out.extend_from_slice(&flow.sport.to_be_bytes());
            out.extend_from_slice(&flow.dport.to_be_bytes());
            out.extend_from_slice(&(UDP_HEADER_LEN as u16 + payload_len).to_be_bytes());
            out.extend_from_slice(&0u16.to_be_bytes()); // checksum optional
        }
        _ => {
            let start = out.len();
            out.resize(start + TCP_HEADER_LEN, 0);
            let h = &mut out[start..];
            h[0..2].copy_from_slice(&flow.sport.to_be_bytes());
            h[2..4].copy_from_slice(&flow.dport.to_be_bytes());
            h[12] = (5 << 4) as u8; // data offset: 5 words
            h[13] = 0x10; // ACK
            h[14..16].copy_from_slice(&65_535u16.to_be_bytes());
            let csum = internet_checksum(&out[start..]);
            out[start + 16..start + 18].copy_from_slice(&csum.to_be_bytes());
        }
    }
}

fn transport_len(flow: &FlowKey) -> usize {
    match flow.proto {
        Protocol::Udp => UDP_HEADER_LEN,
        _ => TCP_HEADER_LEN,
    }
}

/// Incremental nanosecond-pcap writer: the global header goes out at
/// construction, each [`write`](Self::write) appends one record through a
/// single reused scratch buffer. This is the streaming counterpart of
/// [`write_pcap`] (which is now a thin loop over it): a capture of any
/// length is produced in O(1) memory, so bench harnesses can generate
/// multi-million-packet files chunk by chunk without ever materializing a
/// whole [`Trace`].
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    scratch: Vec<u8>,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the pcap global header and return the writer.
    pub fn new(mut w: W) -> Result<Self, PcapError> {
        w.write_all(&PCAP_MAGIC_NS.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // major
        w.write_all(&4u16.to_le_bytes())?; // minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&SNAPLEN.to_le_bytes())?;
        w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter {
            w,
            scratch: Vec::with_capacity(SNAPLEN as usize + 16),
            records: 0,
        })
    }

    /// Append one packet as a header-only record (timestamp from
    /// `packet.created_at`, identity as the 16-bit IP ident, mark as ToS).
    pub fn write(&mut self, p: &Packet) -> Result<(), PcapError> {
        let captured = IPV4_HEADER_LEN + transport_len(&p.flow);
        let orig = (p.size as usize).max(captured);
        let ns = p.created_at.as_nanos();
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&((ns / 1_000_000_000) as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&((ns % 1_000_000_000) as u32).to_le_bytes());
        self.scratch
            .extend_from_slice(&(captured as u32).to_le_bytes());
        self.scratch.extend_from_slice(&(orig as u32).to_le_bytes());
        Ipv4Header {
            tos: p.mark,
            total_len: orig.min(u16::MAX as usize) as u16,
            ident: (p.id.0 & 0xFFFF) as u16,
            ttl: 64,
            proto: p.flow.proto,
            src: p.flow.src,
            dst: p.flow.dst,
        }
        .encode(&mut self.scratch);
        encode_transport(&p.flow, 0, &mut self.scratch);
        self.w.write_all(&self.scratch)?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> Result<W, PcapError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Write a trace as a nanosecond pcap (header-only snapshots).
pub fn write_pcap<W: Write>(trace: &Trace, w: &mut W) -> Result<(), PcapError> {
    let mut pw = PcapWriter::new(w)?;
    for p in &trace.packets {
        pw.write(p)?;
    }
    Ok(())
}

/// A packet header recovered from a pcap file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// Original (on-the-wire) length.
    pub orig_len: u32,
    /// Recovered flow key (ports zero for non-TCP/UDP).
    pub flow: FlowKey,
    /// The IPv4 ToS byte (RLIR's mark field).
    pub tos: u8,
    /// The 16-bit IPv4 identification field — the wire-visible packet
    /// identity ([`write_pcap`] stores the low 16 bits of the packet id
    /// here; capture-point matching keys on 5-tuple + ident).
    pub ident: u16,
}

/// Streaming record iterator over a nanosecond raw-IP pcap: validates the
/// global header up front, then decodes one record per [`Iterator::next`]
/// through a single reused scratch buffer — O(snaplen) memory for a
/// capture of any length, and the decode path [`read_pcap`] itself now
/// runs on (its old implementation allocated a fresh body `Vec` per
/// record).
///
/// Truncation is an error, not an end: a file that stops mid-record
/// header or mid-body yields `Err(PcapError::BadRecord(..))` rather than
/// being silently accepted as complete. Clean EOF at a record boundary
/// ends the iteration.
#[derive(Debug)]
pub struct PcapRecords<R: Read> {
    r: R,
    scratch: Vec<u8>,
    done: bool,
}

impl<R: Read> PcapRecords<R> {
    /// Read and validate the pcap global header, returning the iterator.
    pub fn new(mut r: R) -> Result<Self, PcapError> {
        let mut gh = [0u8; 24];
        r.read_exact(&mut gh)?;
        let magic = u32::from_le_bytes(gh[0..4].try_into().expect("4"));
        if magic != PCAP_MAGIC_NS {
            return Err(PcapError::BadMagic(magic));
        }
        let linktype = u32::from_le_bytes(gh[20..24].try_into().expect("4"));
        if linktype != LINKTYPE_RAW {
            return Err(PcapError::BadLinkType(linktype));
        }
        Ok(PcapRecords {
            r,
            scratch: Vec::with_capacity(SNAPLEN as usize),
            done: false,
        })
    }

    /// Fill the scratch buffer with exactly `len` bytes, distinguishing
    /// clean EOF before the first byte (`Ok(false)`, allowed only when
    /// `eof_ok`) from a partial read (truncated file).
    fn read_fully(
        &mut self,
        len: usize,
        eof_ok: bool,
        what: &'static str,
    ) -> Result<bool, PcapError> {
        self.scratch.clear();
        self.scratch.resize(len, 0);
        let mut got = 0usize;
        while got < len {
            match self.r.read(&mut self.scratch[got..]) {
                Ok(0) => {
                    return if got == 0 && eof_ok {
                        Ok(false)
                    } else {
                        Err(PcapError::BadRecord(what))
                    };
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    fn next_record(&mut self) -> Result<Option<PcapRecord>, PcapError> {
        if !self.read_fully(16, true, "truncated record header")? {
            return Ok(None);
        }
        let sec = u32::from_le_bytes(self.scratch[0..4].try_into().expect("4")) as u64;
        let nsec = u32::from_le_bytes(self.scratch[4..8].try_into().expect("4")) as u64;
        let incl = u32::from_le_bytes(self.scratch[8..12].try_into().expect("4")) as usize;
        let orig = u32::from_le_bytes(self.scratch[12..16].try_into().expect("4"));
        self.read_fully(incl, false, "truncated record body")?;
        let body = &self.scratch[..];
        let (ip, ip_len) =
            Ipv4Header::decode(body).map_err(|_| PcapError::BadRecord("ipv4 header"))?;
        let (sport, dport) = match ip.proto {
            Protocol::Tcp | Protocol::Udp if body.len() >= ip_len + 4 => (
                u16::from_be_bytes([body[ip_len], body[ip_len + 1]]),
                u16::from_be_bytes([body[ip_len + 2], body[ip_len + 3]]),
            ),
            _ => (0, 0),
        };
        Ok(Some(PcapRecord {
            at: SimTime::from_nanos(sec * 1_000_000_000 + nsec),
            orig_len: orig,
            flow: FlowKey {
                src: ip.src,
                dst: ip.dst,
                proto: ip.proto,
                sport,
                dport,
            },
            tos: ip.tos,
            ident: ip.ident,
        }))
    }
}

impl<R: Read> Iterator for PcapRecords<R> {
    type Item = Result<PcapRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Read a nanosecond raw-IP pcap written by [`write_pcap`] (or any capture
/// with the same framing) all at once. Runs on [`PcapRecords`], so decode
/// reuses one scratch buffer; only the output `Vec` grows with the file.
pub fn read_pcap<R: Read>(r: &mut R) -> Result<Vec<PcapRecord>, PcapError> {
    PcapRecords::new(r)?.collect()
}

/// Open a pcap file on disk as a buffered streaming record iterator.
pub fn open_pcap(
    path: &std::path::Path,
) -> Result<PcapRecords<io::BufReader<std::fs::File>>, PcapError> {
    PcapRecords::new(io::BufReader::new(std::fs::File::open(path)?))
}

/// Convenience: export a trace to a pcap file on disk.
pub fn save_pcap(trace: &Trace, path: &std::path::Path) -> Result<(), PcapError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_pcap(trace, &mut f)?;
    f.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, TraceConfig};
    use rlir_net::time::SimDuration;

    fn sample() -> Trace {
        generate(&TraceConfig::paper_regular(19, SimDuration::from_millis(5)))
    }

    #[test]
    fn round_trip_preserves_headers() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let records = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(records.len(), t.packets.len());
        for (rec, p) in records.iter().zip(&t.packets) {
            assert_eq!(rec.flow, p.flow, "flow key mismatch");
            assert_eq!(rec.at, p.created_at, "timestamp mismatch");
            assert_eq!(rec.orig_len, p.size.max(40), "length mismatch");
        }
    }

    #[test]
    fn global_header_is_valid_pcap() {
        let t = sample();
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC_NS
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn udp_and_tcp_transport_headers() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(10));
        t.packets.push(Packet::regular(
            1,
            FlowKey::udp(
                Ipv4Addr::new(1, 2, 3, 4),
                5353,
                Ipv4Addr::new(5, 6, 7, 8),
                53,
            ),
            200,
            SimTime::from_nanos(42),
        ));
        t.packets.push(Packet::regular(
            2,
            FlowKey::tcp(
                Ipv4Addr::new(9, 9, 9, 9),
                8080,
                Ipv4Addr::new(8, 8, 8, 8),
                443,
            ),
            1500,
            SimTime::from_nanos(43),
        ));
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].flow.sport, 5353);
        assert_eq!(recs[0].flow.dport, 53);
        assert_eq!(recs[1].flow.sport, 8080);
        assert_eq!(recs[1].flow.proto, Protocol::Tcp);
    }

    #[test]
    fn marks_exported_as_tos() {
        use rlir_net::packet::Packet;
        use std::net::Ipv4Addr;
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(1));
        let mut p = Packet::regular(
            1,
            FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            100,
            SimTime::ZERO,
        );
        p.mark = 3;
        t.packets.push(p);
        let mut buf = Vec::new();
        write_pcap(&t, &mut buf).unwrap();
        let recs = read_pcap(&mut buf.as_slice()).unwrap();
        assert_eq!(recs[0].tos, 3);
    }

    #[test]
    fn rejects_foreign_files() {
        let junk = vec![0u8; 24];
        assert!(matches!(
            read_pcap(&mut junk.as_slice()),
            Err(PcapError::BadMagic(0))
        ));
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("rlir-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pcap");
        save_pcap(&t, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let recs = read_pcap(&mut bytes.as_slice()).unwrap();
        assert_eq!(recs.len(), t.packets.len());
        std::fs::remove_file(&path).ok();
    }
}
