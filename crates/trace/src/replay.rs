//! Streaming pcap trace replay: captures off disk as engine injections.
//!
//! [`PcapReplaySource`] implements `rlir_sim`'s pull-based
//! [`InjectionSource`]: it decodes nanosecond-pcap records incrementally
//! through [`PcapRecords`]' reused scratch buffer, maps each record to a
//! `(NodeId, Packet)` injection via a configurable [`EntryMap`] demux, and
//! re-orders records through a **bounded** min-heap window — total ingest
//! memory is O(reorder buffer), never O(capture). This is what lets a
//! multi-million-packet replay run with flat ingest-side memory
//! (`scripts/trace_bench.sh` gates on it) where the old collect-then-sort
//! ingest materialized the whole capture.
//!
//! ## Ordering and the reorder window
//!
//! The engine requires non-decreasing injection times. Real captures are
//! *almost* sorted (interleaved capture points, timestamping jitter), so
//! the source buffers records in a min-heap and only releases the minimum
//! once every record that could still precede it has been read — i.e.
//! once `min.at + reorder_ns <= newest_read.at` — or the file is
//! exhausted. Records more disordered than `reorder_ns` are counted in
//! [`late_dropped`](PcapReplaySource::late_dropped) and discarded, the
//! same contract the measurement plane applies to its own reorder window.
//! A window of 0 still yields correct output for sorted captures (ties
//! preserve file order via a monotone sequence number).
//!
//! ## Identity
//!
//! Replayed packets get fresh unique ids `(seq << 16) | ident`, so the
//! low 16 bits — the simulated wire identity [`crate::pcap::write_pcap`]
//! would emit, and what capture-point taps match on — reproduce the
//! original capture's IPv4 ident field exactly.

use crate::pcap::{open_pcap, PcapError, PcapRecord, PcapRecords};
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;
use rlir_net::FlowKey;
use rlir_sim::{InjectionSource, NodeId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::io::{BufReader, Read};
use std::path::Path;

/// Per-window cap on records sharing one wire identity in lenient mode: a
/// hostile capture repeating one `(flow, ident)` can otherwise make every
/// tap's duplicate-matching degenerate. Duplicates beyond the cap are
/// counted in [`PcapReplaySource::dup_capped`] and dropped.
const MAX_DUP_IDENT: u32 = 8;

/// Maps a decoded capture record to the switch it enters the simulated
/// fabric at — the replay equivalent of "which router port was this
/// capture taken from".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryMap {
    /// Every record enters at one node.
    Fixed(NodeId),
    /// Records enter at `nodes[hash(src_ip) % nodes.len()]` — a
    /// deterministic per-source spread, the replay stand-in for multiple
    /// ToR-facing capture points.
    SrcHash(Vec<NodeId>),
}

impl EntryMap {
    /// Parse a CLI spec: `fixed:<node>` or `hash:<n0,n1,...>`.
    pub fn parse(spec: &str) -> Result<EntryMap, String> {
        if let Some(node) = spec.strip_prefix("fixed:") {
            let node: NodeId = node
                .parse()
                .map_err(|_| format!("bad entry-map node: {node:?}"))?;
            return Ok(EntryMap::Fixed(node));
        }
        if let Some(list) = spec.strip_prefix("hash:") {
            let nodes: Result<Vec<NodeId>, _> = list.split(',').map(str::parse).collect();
            let nodes = nodes.map_err(|_| format!("bad entry-map node list: {list:?}"))?;
            if nodes.is_empty() {
                return Err("entry-map node list is empty".to_string());
            }
            return Ok(EntryMap::SrcHash(nodes));
        }
        Err(format!(
            "bad entry-map spec {spec:?} (expected fixed:<node> or hash:<n0,n1,...>)"
        ))
    }

    /// The entry node for one record.
    pub fn node_for(&self, rec: &PcapRecord) -> NodeId {
        match self {
            EntryMap::Fixed(node) => *node,
            EntryMap::SrcHash(nodes) => {
                let v = u32::from_be_bytes(rec.flow.src.octets());
                let h = v.wrapping_mul(0x9E37_79B1) >> 16;
                nodes[h as usize % nodes.len()]
            }
        }
    }
}

/// One buffered injection; heap order is `(at, seq)` so same-timestamp
/// records keep file order.
#[derive(Debug, Clone, Copy)]
struct Buffered {
    at_ns: u64,
    seq: u64,
    node: NodeId,
    packet: Packet,
}

impl PartialEq for Buffered {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl Eq for Buffered {}
impl PartialOrd for Buffered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Buffered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

/// A streaming [`InjectionSource`] over a nanosecond pcap (see the module
/// docs): O(reorder buffer) ingest memory, counters for everything it
/// sheds, and an [`error`](Self::error) accessor for mid-file decode
/// failures (the source ends early; the engine has no error channel).
#[derive(Debug)]
pub struct PcapReplaySource<R: Read> {
    records: PcapRecords<R>,
    entry: EntryMap,
    reorder_ns: u64,
    heap: BinaryHeap<Reverse<Buffered>>,
    /// Timestamp of the newest record read off disk (release horizon).
    newest_read: u64,
    /// Timestamp of the last emitted injection (late-record cutoff).
    last_emitted: u64,
    seq: u64,
    emitted: u64,
    late_dropped: u64,
    peak_buffered: usize,
    exhausted: bool,
    error: Option<PcapError>,
    len_hint: Option<usize>,
    span_hint: Option<u64>,
    /// Lenient replay: clamp time regressions instead of dropping them,
    /// cap duplicate wire identities (the record iterator is switched to
    /// lenient decode separately, by the constructor path).
    lenient: bool,
    clamped_regressions: u64,
    dup_capped: u64,
    /// Duplicate-identity occurrence counts for the current dup window.
    dup_counts: BTreeMap<(FlowKey, u16), u32>,
    dup_window_start: u64,
}

impl PcapReplaySource<BufReader<std::fs::File>> {
    /// Open a capture file on disk (buffered reads).
    pub fn from_path(path: &Path, entry: EntryMap, reorder_ns: u64) -> Result<Self, PcapError> {
        Ok(Self::new(open_pcap(path)?, entry, reorder_ns))
    }
}

impl<R: Read> PcapReplaySource<R> {
    /// Wrap an already-validated record iterator.
    pub fn new(records: PcapRecords<R>, entry: EntryMap, reorder_ns: u64) -> Self {
        PcapReplaySource {
            records,
            entry,
            reorder_ns,
            heap: BinaryHeap::new(),
            newest_read: 0,
            last_emitted: 0,
            seq: 0,
            emitted: 0,
            late_dropped: 0,
            peak_buffered: 0,
            exhausted: false,
            error: None,
            len_hint: None,
            span_hint: None,
            lenient: false,
            clamped_regressions: 0,
            dup_capped: 0,
            dup_counts: BTreeMap::new(),
            dup_window_start: 0,
        }
    }

    /// Hostile-ingest mode (builder style): switches the record decoder to
    /// [`crate::pcap::IngestMode::Lenient`], clamps time regressions
    /// beyond the reorder window to the last emitted timestamp instead of
    /// dropping them (counted in [`clamped_regressions`]
    /// (Self::clamped_regressions)), and caps duplicate wire identities
    /// per reorder window (counted in [`dup_capped`](Self::dup_capped)).
    /// On a clean capture, output is byte-identical to strict mode.
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self.records = self.records.lenient();
        self
    }

    /// Provide calendar-geometry evidence (record count / capture span in
    /// nanoseconds) known out-of-band, e.g. recorded next to the capture.
    /// Purely a scheduler hint; never affects results.
    pub fn with_hints(mut self, len: usize, span_ns: u64) -> Self {
        self.len_hint = Some(len);
        self.span_hint = Some(span_ns);
        self
    }

    /// Map one record to its injection. Fresh unique id, original wire
    /// identity in the low 16 bits, ToS restored as the mark.
    fn admit(&mut self, rec: &PcapRecord) -> Buffered {
        let seq = self.seq;
        self.seq += 1;
        let mut p = Packet::regular(
            (seq << 16) | u64::from(rec.ident),
            rec.flow,
            rec.orig_len,
            rec.at,
        );
        p.mark = rec.tos;
        Buffered {
            at_ns: rec.at.as_nanos(),
            seq,
            node: self.entry.node_for(rec),
            packet: p,
        }
    }

    /// Read records until the heap minimum is safe to release (every
    /// record that could still precede it has been read) or the file ends.
    fn refill(&mut self) {
        while !self.exhausted {
            if let Some(Reverse(min)) = self.heap.peek() {
                if min.at_ns + self.reorder_ns <= self.newest_read {
                    break;
                }
            }
            match self.records.next() {
                Some(Ok(rec)) => {
                    if self.lenient && self.dup_capped_out(&rec) {
                        continue;
                    }
                    let buf = self.admit(&rec);
                    self.newest_read = self.newest_read.max(buf.at_ns);
                    self.heap.push(Reverse(buf));
                    self.peak_buffered = self.peak_buffered.max(self.heap.len());
                }
                Some(Err(e)) => {
                    self.error = Some(e);
                    self.exhausted = true;
                }
                None => self.exhausted = true,
            }
        }
    }

    /// Lenient duplicate-identity cap: true (and counted) when this
    /// record's `(flow, ident)` has already appeared [`MAX_DUP_IDENT`]
    /// times within the current reorder window. The count map resets once
    /// the read horizon moves a full window past its start, so memory is
    /// bounded by distinct identities per window, not per capture.
    fn dup_capped_out(&mut self, rec: &PcapRecord) -> bool {
        let at_ns = rec.at.as_nanos();
        if at_ns.saturating_sub(self.dup_window_start) > self.reorder_ns {
            self.dup_counts.clear();
            self.dup_window_start = at_ns;
        }
        let n = self.dup_counts.entry((rec.flow, rec.ident)).or_insert(0);
        if *n >= MAX_DUP_IDENT {
            self.dup_capped += 1;
            return true;
        }
        *n += 1;
        false
    }

    /// Discard buffered records that would violate injection-time
    /// monotonicity (disorder beyond the window), leaving the heap
    /// minimum emittable or the heap empty. Lenient mode clamps such
    /// records to the last emitted timestamp instead — the record
    /// survives (its latency sample is already ruined by the capture
    /// damage, but its flow's packet count is not) and monotonicity
    /// holds.
    fn shed_late(&mut self) {
        while let Some(Reverse(min)) = self.heap.peek() {
            if min.at_ns >= self.last_emitted {
                break;
            }
            if self.lenient {
                let Reverse(mut b) = self.heap.pop().expect("peeked");
                b.at_ns = self.last_emitted;
                b.packet.created_at = SimTime::from_nanos(self.last_emitted);
                self.heap.push(Reverse(b));
                self.clamped_regressions += 1;
                continue;
            }
            self.heap.pop();
            self.late_dropped += 1;
        }
    }

    /// Decode records read off disk so far (including shed ones).
    pub fn records_read(&self) -> u64 {
        self.seq
    }

    /// Injections handed to the engine so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records discarded because they were more disordered than the
    /// reorder window.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// High-water mark of the reorder buffer — the source's whole ingest
    /// memory bound, independent of capture length.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Approximate bytes of the ingest buffer at its peak.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered * std::mem::size_of::<Reverse<Buffered>>()
    }

    /// The decode error that ended the stream early, if any. A source
    /// that hit one still emits everything buffered before the failure.
    pub fn error(&self) -> Option<&PcapError> {
        self.error.as_ref()
    }

    /// Lenient-mode time regressions clamped to the last emitted
    /// timestamp (always 0 in strict mode, where such records are late-
    /// dropped instead).
    pub fn clamped_regressions(&self) -> u64 {
        self.clamped_regressions
    }

    /// Lenient-mode records dropped by the per-window duplicate wire
    /// identity cap.
    pub fn dup_capped(&self) -> u64 {
        self.dup_capped
    }

    /// The wrapped record decoder, for its lenient-ingest counters
    /// (skipped records/bytes, resyncs).
    pub fn decoder(&self) -> &PcapRecords<R> {
        &self.records
    }
}

impl<R: Read> InjectionSource for PcapReplaySource<R> {
    fn peek(&mut self) -> Option<SimTime> {
        loop {
            self.refill();
            self.shed_late();
            match self.heap.peek() {
                // The minimum is releasable once nothing still unread can
                // precede it (or nothing is left to read).
                Some(Reverse(b))
                    if self.exhausted || b.at_ns + self.reorder_ns <= self.newest_read =>
                {
                    return Some(SimTime::from_nanos(b.at_ns));
                }
                // Shedding exposed a not-yet-releasable minimum, or the
                // whole buffer was late: read further.
                Some(_) => continue,
                None if self.exhausted => return None,
                None => continue,
            }
        }
    }

    fn next_injection(&mut self) -> Option<(NodeId, Packet)> {
        self.peek()?;
        let Reverse(min) = self.heap.pop()?;
        self.last_emitted = min.at_ns;
        self.emitted += 1;
        Some((min.node, min.packet))
    }

    fn len_hint(&self) -> Option<usize> {
        self.len_hint
    }

    fn span_hint(&self) -> Option<u64> {
        self.span_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn pkt(id: u64, at_ns: u64, src_last: u8) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, src_last),
                1000 + src_last as u16,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            ),
            1000,
            SimTime::from_nanos(at_ns),
        )
    }

    fn capture(packets: &[Packet]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in packets {
            w.write(p).unwrap();
        }
        w.finish().unwrap()
    }

    fn drain(src: &mut impl InjectionSource) -> Vec<(NodeId, u64, u64)> {
        let mut out = Vec::new();
        while let Some(t) = src.peek() {
            let (node, p) = src.next_injection().unwrap();
            assert_eq!(p.created_at, t);
            out.push((node, p.id.0 & 0xFFFF, p.created_at.as_nanos()));
        }
        out
    }

    #[test]
    fn sorted_capture_streams_in_order_with_tiny_buffer() {
        let packets: Vec<Packet> = (0..100).map(|i| pkt(i, i * 50, 1)).collect();
        let bytes = capture(&packets);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            0,
        );
        let out = drain(&mut src);
        assert_eq!(out.len(), 100);
        for (i, (node, ident, at)) in out.iter().enumerate() {
            assert_eq!(*node, 0);
            assert_eq!(*ident, i as u64);
            assert_eq!(*at, i as u64 * 50);
        }
        assert_eq!(src.late_dropped(), 0);
        assert!(src.error().is_none());
        // Window 0 on a sorted capture: at most a couple of records live
        // in the buffer at once — this is the O(buffer) claim.
        assert!(
            src.peak_buffered() <= 2,
            "peak {} for a sorted capture",
            src.peak_buffered()
        );
    }

    #[test]
    fn jittered_capture_reorders_within_window() {
        // Timestamps 0, 300, 150, 600, 450, ... (each pair swapped by 150
        // ns): a 300 ns window restores full order.
        let mut packets = Vec::new();
        for i in 0..50u64 {
            let base = i * 300;
            packets.push(pkt(2 * i, base + 300, 1));
            packets.push(pkt(2 * i + 1, base + 150, 1));
        }
        let bytes = capture(&packets);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            300,
        );
        let out = drain(&mut src);
        assert_eq!(out.len(), 100);
        for w in out.windows(2) {
            assert!(w[0].2 <= w[1].2, "order not restored: {w:?}");
        }
        assert_eq!(src.late_dropped(), 0);
        assert!(src.peak_buffered() >= 2, "window must actually buffer");
    }

    #[test]
    fn disorder_beyond_window_is_shed_and_counted() {
        // One record 10 µs behind its neighbours, window far smaller.
        let packets = vec![
            pkt(0, 10_000, 1),
            pkt(1, 10_100, 1),
            pkt(2, 100, 1), // hopelessly late
            pkt(3, 10_200, 1),
        ];
        let bytes = capture(&packets);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            50,
        );
        let out = drain(&mut src);
        let times: Vec<u64> = out.iter().map(|&(_, _, t)| t).collect();
        assert_eq!(times, vec![10_000, 10_100, 10_200]);
        assert_eq!(src.late_dropped(), 1);
        assert_eq!(src.emitted(), 3);
        assert_eq!(src.records_read(), 4);
    }

    #[test]
    fn src_hash_demux_spreads_and_is_deterministic() {
        let packets: Vec<Packet> = (0..64).map(|i| pkt(i, i * 10, (i % 7) as u8)).collect();
        let bytes = capture(&packets);
        let run = |bytes: &[u8]| {
            let mut src = PcapReplaySource::new(
                PcapRecords::new(bytes).unwrap(),
                EntryMap::SrcHash(vec![0, 1, 2]),
                0,
            );
            drain(&mut src)
        };
        let a = run(&bytes);
        let b = run(&bytes);
        assert_eq!(a, b, "demux must be deterministic");
        let nodes: std::collections::BTreeSet<NodeId> =
            a.iter().map(|&(node, _, _)| node).collect();
        assert!(nodes.len() > 1, "hash demux never spread: {nodes:?}");
        assert!(nodes.iter().all(|&n| n < 3));
    }

    #[test]
    fn entry_map_parses_and_rejects() {
        assert_eq!(EntryMap::parse("fixed:3"), Ok(EntryMap::Fixed(3)));
        assert_eq!(
            EntryMap::parse("hash:0,1,2"),
            Ok(EntryMap::SrcHash(vec![0, 1, 2]))
        );
        assert!(EntryMap::parse("fixed:x").is_err());
        assert!(EntryMap::parse("hash:").is_err());
        assert!(EntryMap::parse("nonsense").is_err());
        assert!(EntryMap::parse("hash:1,,2").is_err());
    }

    #[test]
    fn lenient_replay_identical_to_strict_on_clean_capture() {
        let mut packets = Vec::new();
        for i in 0..50u64 {
            let base = i * 300;
            packets.push(pkt(2 * i, base + 300, 1));
            packets.push(pkt(2 * i + 1, base + 150, 1));
        }
        let bytes = capture(&packets);
        let strict = {
            let mut src = PcapReplaySource::new(
                PcapRecords::new(bytes.as_slice()).unwrap(),
                EntryMap::Fixed(0),
                300,
            );
            drain(&mut src)
        };
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            300,
        )
        .lenient();
        let lenient = drain(&mut src);
        assert_eq!(strict, lenient);
        assert_eq!(src.clamped_regressions(), 0);
        assert_eq!(src.dup_capped(), 0);
        assert_eq!(src.decoder().skipped_records(), 0);
    }

    #[test]
    fn lenient_clamps_time_regressions_instead_of_dropping() {
        let packets = vec![
            pkt(0, 10_000, 1),
            pkt(1, 10_100, 1),
            pkt(2, 100, 1), // hopelessly late
            pkt(3, 10_200, 1),
        ];
        let bytes = capture(&packets);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            50,
        )
        .lenient();
        let mut out = Vec::new();
        while let Some(t) = src.peek() {
            let (_, p) = src.next_injection().unwrap();
            assert_eq!(p.created_at, t, "clamped time must be consistent");
            out.push((p.id.0 & 0xFFFF, p.created_at.as_nanos()));
        }
        // Monotone, nothing lost: the late record rides at the clamp time.
        assert_eq!(
            out,
            vec![(0, 10_000), (2, 10_000), (1, 10_100), (3, 10_200)]
        );
        assert_eq!(src.clamped_regressions(), 1);
        assert_eq!(src.late_dropped(), 0);
        assert_eq!(src.emitted(), 4);
    }

    #[test]
    fn lenient_caps_duplicate_wire_identities_per_window() {
        // Twelve records sharing one (flow, ident) inside one reorder
        // window: the cap admits MAX_DUP_IDENT and counts the rest.
        let packets: Vec<Packet> = (0..12).map(|i| pkt(7, i * 10, 1)).collect();
        let bytes = capture(&packets);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            1_000,
        )
        .lenient();
        let out = drain(&mut src);
        assert_eq!(out.len(), MAX_DUP_IDENT as usize);
        assert_eq!(src.dup_capped(), 12 - u64::from(MAX_DUP_IDENT));
        // A strict replay admits all twelve — the cap is lenient-only.
        let mut strict = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            1_000,
        );
        assert_eq!(drain(&mut strict).len(), 12);
    }

    #[test]
    fn truncated_capture_surfaces_error_after_draining_buffer() {
        let packets: Vec<Packet> = (0..10).map(|i| pkt(i, i * 100, 1)).collect();
        let mut bytes = capture(&packets);
        bytes.truncate(bytes.len() - 7); // mid-body
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(0),
            0,
        );
        let out = drain(&mut src);
        assert_eq!(out.len(), 9, "everything before the torn record plays");
        assert!(matches!(src.error(), Some(PcapError::BadRecord(_))));
    }
}
