//! # rlir-trace — workload substrate
//!
//! Replaces the CAIDA OC-192 traces and YAF toolchain of the paper's
//! evaluation (§4.1) with fully synthetic, reproducible equivalents:
//!
//! * [`distributions`] — hand-rolled samplers (exponential, bounded Pareto,
//!   geometric, log-uniform, empirical packet-size mix).
//! * [`synthetic`] — the trace generator, with presets
//!   [`synthetic::TraceConfig::paper_regular`] (~22% of OC-192, heavy-tailed
//!   flows) and [`synthetic::TraceConfig::paper_cross`] (~71%, disjoint
//!   prefixes) matching the paper's two traces.
//! * [`divider`] — the Fig. 3 "traffic divider" classifying regular vs cross
//!   traffic by source prefix.
//! * [`flowmeter`] — YAF/NetFlow-style flow metering (feeds the Multiflow
//!   baseline).
//! * [`io`] — binary trace files for write-once/replay-many workloads.
//! * [`pcap`] — libpcap export/import (inspect workloads in Wireshark),
//!   including the streaming [`pcap::PcapRecords`] reader and
//!   [`pcap::PcapWriter`] (O(1)-memory either direction).
//! * [`replay`] — the streaming trace-replay front end: a pcap capture
//!   off disk as a pull-based engine [`rlir_sim::InjectionSource`], with
//!   a bounded reorder window and configurable entry-node demux.
//! * [`stats`] — the summary numbers the paper quotes per trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod divider;
pub mod flowmeter;
pub mod io;
pub mod pcap;
pub mod replay;
pub mod stats;
pub mod synthetic;

pub use divider::{TrafficClass, TrafficDivider, UnmatchedPolicy};
pub use flowmeter::{FlowMeter, FlowMeterConfig, FlowRecord};
pub use pcap::{
    open_pcap, read_pcap, write_pcap, BadRecord, IngestMode, PcapError, PcapRecord, PcapRecords,
    PcapWriter,
};
pub use replay::{EntryMap, PcapReplaySource};
pub use stats::TraceStats;
pub use synthetic::{
    compress_into_bursts, generate, merge, reverse, reverse_flow, BurstShape, Trace, TraceClass,
    TraceConfig,
};
