//! Traffic divider.
//!
//! The first block in the paper's simulator (Fig. 3): "reads a packet trace
//! and classifies packets as either regular traffic ones or cross traffic
//! ones based on IP addresses". The divider matches each packet's source
//! address against configured prefix sets using the LPM trie and rewrites its
//! traffic class; packets matching no configured class can be dropped or
//! passed through unchanged.

use rlir_net::packet::{Packet, PacketKind};
use rlir_net::prefix::Ipv4Prefix;
use rlir_net::trie::PrefixTrie;
use serde::{Deserialize, Serialize};

/// Classification verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Regular (measured) traffic.
    Regular,
    /// Cross traffic.
    Cross,
}

/// Policy for packets whose source matches no configured prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnmatchedPolicy {
    /// Drop the packet from the divided output.
    Drop,
    /// Keep the packet with its existing class.
    Passthrough,
}

/// Classifies packets into regular vs cross traffic by source prefix.
#[derive(Debug, Clone)]
pub struct TrafficDivider {
    trie: PrefixTrie<TrafficClass>,
    unmatched: UnmatchedPolicy,
    dropped: u64,
}

impl TrafficDivider {
    /// Build from `(prefix, class)` pairs and an unmatched-packet policy.
    pub fn new(rules: &[(Ipv4Prefix, TrafficClass)], unmatched: UnmatchedPolicy) -> Self {
        let trie = rules.iter().copied().collect();
        TrafficDivider {
            trie,
            unmatched,
            dropped: 0,
        }
    }

    /// Classify a packet by source address.
    pub fn classify(&self, p: &Packet) -> Option<TrafficClass> {
        self.trie.lookup(p.flow.src).copied()
    }

    /// Number of packets dropped by the [`UnmatchedPolicy::Drop`] policy so
    /// far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Process one packet: rewrite its class per the matching rule. Returns
    /// `None` if the packet is dropped by policy. Reference packets are never
    /// reclassified (their class is structural).
    pub fn divide(&mut self, mut p: Packet) -> Option<Packet> {
        if p.is_reference() {
            return Some(p);
        }
        match self.classify(&p) {
            Some(TrafficClass::Regular) => {
                p.kind = PacketKind::Regular;
                Some(p)
            }
            Some(TrafficClass::Cross) => {
                p.kind = PacketKind::Cross;
                Some(p)
            }
            None => match self.unmatched {
                UnmatchedPolicy::Passthrough => Some(p),
                UnmatchedPolicy::Drop => {
                    self.dropped += 1;
                    None
                }
            },
        }
    }

    /// Divide a whole packet sequence, dropping per policy.
    pub fn divide_all(&mut self, packets: impl IntoIterator<Item = Packet>) -> Vec<Packet> {
        packets.into_iter().filter_map(|p| self.divide(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimTime;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn divider(unmatched: UnmatchedPolicy) -> TrafficDivider {
        TrafficDivider::new(
            &[
                ("10.1.0.0/16".parse().unwrap(), TrafficClass::Regular),
                ("172.16.0.0/14".parse().unwrap(), TrafficClass::Cross),
            ],
            unmatched,
        )
    }

    fn pkt(src: Ipv4Addr) -> Packet {
        Packet::cross(
            1,
            FlowKey::tcp(src, 1000, Ipv4Addr::new(10, 200, 0, 1), 80),
            100,
            SimTime::ZERO,
        )
    }

    #[test]
    fn classifies_by_source_prefix() {
        let mut d = divider(UnmatchedPolicy::Drop);
        let reg = d.divide(pkt(Ipv4Addr::new(10, 1, 2, 3))).unwrap();
        assert!(reg.is_regular(), "should be rewritten to regular");
        let cross = d.divide(pkt(Ipv4Addr::new(172, 17, 0, 1))).unwrap();
        assert!(cross.is_cross());
    }

    #[test]
    fn unmatched_drop_counts() {
        let mut d = divider(UnmatchedPolicy::Drop);
        assert!(d.divide(pkt(Ipv4Addr::new(192, 168, 0, 1))).is_none());
        assert_eq!(d.dropped(), 1);
    }

    #[test]
    fn unmatched_passthrough_keeps_class() {
        let mut d = divider(UnmatchedPolicy::Passthrough);
        let p = d.divide(pkt(Ipv4Addr::new(192, 168, 0, 1))).unwrap();
        assert!(p.is_cross(), "class untouched");
        assert_eq!(d.dropped(), 0);
    }

    #[test]
    fn reference_packets_never_reclassified() {
        let mut d = divider(UnmatchedPolicy::Drop);
        let r = Packet::reference(
            9,
            FlowKey::udp(
                Ipv4Addr::new(192, 168, 9, 9), // would be dropped if classified
                1,
                Ipv4Addr::new(10, 200, 0, 1),
                2,
            ),
            rlir_net::SenderId(1),
            0,
            SimTime::ZERO,
        );
        let out = d.divide(r).unwrap();
        assert!(out.is_reference());
    }

    #[test]
    fn divide_all_filters() {
        let mut d = divider(UnmatchedPolicy::Drop);
        let out = d.divide_all(vec![
            pkt(Ipv4Addr::new(10, 1, 0, 1)),
            pkt(Ipv4Addr::new(8, 8, 8, 8)),
            pkt(Ipv4Addr::new(172, 16, 0, 1)),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(d.dropped(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        // A /24 carve-out inside the cross block is regular.
        let mut d = TrafficDivider::new(
            &[
                ("172.16.0.0/14".parse().unwrap(), TrafficClass::Cross),
                ("172.16.5.0/24".parse().unwrap(), TrafficClass::Regular),
            ],
            UnmatchedPolicy::Drop,
        );
        assert!(d
            .divide(pkt(Ipv4Addr::new(172, 16, 5, 9)))
            .unwrap()
            .is_regular());
        assert!(d
            .divide(pkt(Ipv4Addr::new(172, 16, 6, 9)))
            .unwrap()
            .is_cross());
    }
}
