//! Binary trace files.
//!
//! The paper feeds pre-recorded traces into its simulator; this module
//! provides the equivalent persistent format so generated workloads can be
//! written once and replayed across experiments (and inspected with external
//! tools). The format is a little-endian fixed-record layout:
//!
//! ```text
//! header:  magic "RLTR" | version u8 | link_rate_bps u64 | duration_ns u64 | count u64
//! record:  id u64 | ts_ns u64 | src u32 | dst u32 | sport u16 | dport u16
//!          | proto u8 | kind u8 | mark u8 | size u32          (= 37 bytes)
//! ```
//!
//! Only regular and cross packets are serialisable: reference packets are
//! generated live by RLI senders, never replayed from disk.

use crate::synthetic::Trace;
use rlir_net::packet::{Packet, PacketKind};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::{FlowKey, Protocol};
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

/// File magic.
pub const TRACE_MAGIC: [u8; 4] = *b"RLTR";
/// Current format version.
pub const TRACE_VERSION: u8 = 1;
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8;
const RECORD_LEN: usize = 37;

/// Errors reading or writing trace files.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic bytes.
    BadMagic([u8; 4]),
    /// Unsupported version.
    BadVersion(u8),
    /// Record count in the header does not match the body.
    Truncated {
        /// Records promised by the header.
        expected: u64,
        /// Records actually read.
        got: u64,
    },
    /// Attempted to serialise a reference packet.
    ReferenceNotSerialisable,
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic(m) => write!(f, "bad trace magic {m:?}"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated { expected, got } => {
                write!(
                    f,
                    "trace truncated: header said {expected} records, read {got}"
                )
            }
            TraceIoError::ReferenceNotSerialisable => {
                write!(f, "reference packets cannot be serialised into traces")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

fn encode_record(p: &Packet, out: &mut [u8; RECORD_LEN]) -> Result<(), TraceIoError> {
    let kind = match p.kind {
        PacketKind::Regular => 0u8,
        PacketKind::Cross => 1u8,
        PacketKind::Reference(_) => return Err(TraceIoError::ReferenceNotSerialisable),
    };
    out[0..8].copy_from_slice(&p.id.0.to_le_bytes());
    out[8..16].copy_from_slice(&p.created_at.as_nanos().to_le_bytes());
    out[16..20].copy_from_slice(&u32::from(p.flow.src).to_le_bytes());
    out[20..24].copy_from_slice(&u32::from(p.flow.dst).to_le_bytes());
    out[24..26].copy_from_slice(&p.flow.sport.to_le_bytes());
    out[26..28].copy_from_slice(&p.flow.dport.to_le_bytes());
    out[28] = p.flow.proto.number();
    out[29] = kind;
    out[30] = p.mark;
    out[31..35].copy_from_slice(&p.size.to_le_bytes());
    // bytes 35..37 reserved (zero)
    out[35] = 0;
    out[36] = 0;
    Ok(())
}

fn decode_record(buf: &[u8; RECORD_LEN]) -> Packet {
    let id = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
    let ts = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
    let src = Ipv4Addr::from(u32::from_le_bytes(buf[16..20].try_into().expect("4")));
    let dst = Ipv4Addr::from(u32::from_le_bytes(buf[20..24].try_into().expect("4")));
    let sport = u16::from_le_bytes(buf[24..26].try_into().expect("2"));
    let dport = u16::from_le_bytes(buf[26..28].try_into().expect("2"));
    let proto = Protocol::from_number(buf[28]);
    let flow = FlowKey {
        src,
        dst,
        proto,
        sport,
        dport,
    };
    let size = u32::from_le_bytes(buf[31..35].try_into().expect("4"));
    let at = SimTime::from_nanos(ts);
    let mut p = if buf[29] == 1 {
        Packet::cross(id, flow, size, at)
    } else {
        Packet::regular(id, flow, size, at)
    };
    p.mark = buf[30];
    p
}

/// Write a trace to `w`.
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> Result<(), TraceIoError> {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&TRACE_MAGIC);
    header[4] = TRACE_VERSION;
    header[5..13].copy_from_slice(&trace.link_rate_bps.to_le_bytes());
    header[13..21].copy_from_slice(&trace.duration.as_nanos().to_le_bytes());
    header[21..29].copy_from_slice(&(trace.packets.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    let mut rec = [0u8; RECORD_LEN];
    for p in &trace.packets {
        encode_record(p, &mut rec)?;
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Read a trace from `r`.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, TraceIoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4");
    if magic != TRACE_MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    if header[4] != TRACE_VERSION {
        return Err(TraceIoError::BadVersion(header[4]));
    }
    let link_rate_bps = u64::from_le_bytes(header[5..13].try_into().expect("8"));
    let duration =
        SimDuration::from_nanos(u64::from_le_bytes(header[13..21].try_into().expect("8")));
    let count = u64::from_le_bytes(header[21..29].try_into().expect("8"));
    let mut packets = Vec::with_capacity(count.min(1 << 26) as usize);
    let mut rec = [0u8; RECORD_LEN];
    for i in 0..count {
        if let Err(e) = r.read_exact(&mut rec) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(TraceIoError::Truncated {
                    expected: count,
                    got: i,
                });
            }
            return Err(e.into());
        }
        packets.push(decode_record(&rec));
    }
    Ok(Trace {
        packets,
        link_rate_bps,
        duration,
    })
}

/// Convenience: write a trace to a filesystem path.
pub fn save_trace(trace: &Trace, path: &std::path::Path) -> Result<(), TraceIoError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(trace, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Convenience: read a trace from a filesystem path.
pub fn load_trace(path: &std::path::Path) -> Result<Trace, TraceIoError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_trace(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, TraceConfig};
    use rlir_net::SenderId;

    fn sample_trace() -> Trace {
        generate(&TraceConfig::paper_regular(
            11,
            SimDuration::from_millis(20),
        ))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        assert!(!t.packets.is_empty());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + t.packets.len() * RECORD_LEN);
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.packets, t.packets);
        assert_eq!(back.link_rate_bps, t.link_rate_bps);
        assert_eq!(back.duration, t.duration);
    }

    #[test]
    fn mark_and_cross_survive() {
        let mut t = Trace::empty(1_000_000, SimDuration::from_micros(10));
        let mut p = Packet::cross(
            5,
            FlowKey::udp(Ipv4Addr::new(1, 2, 3, 4), 5, Ipv4Addr::new(6, 7, 8, 9), 10),
            4242,
            SimTime::from_nanos(77),
        );
        p.mark = 3;
        t.packets.push(p);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.packets[0], p);
    }

    #[test]
    fn rejects_reference_packets() {
        let mut t = Trace::empty(1, SimDuration::ZERO);
        t.packets.push(Packet::reference(
            1,
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            SenderId(0),
            0,
            SimTime::ZERO,
        ));
        let mut buf = Vec::new();
        assert!(matches!(
            write_trace(&t, &mut buf),
            Err(TraceIoError::ReferenceNotSerialisable)
        ));
    }

    #[test]
    fn detects_bad_magic_and_version() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_trace(&mut bad.as_slice()),
            Err(TraceIoError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_trace(&mut bad.as_slice()),
            Err(TraceIoError::BadVersion(99))
        ));
    }

    #[test]
    fn detects_truncation() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceIoError::Truncated { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("rlir-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.rltr");
        save_trace(&t, &path).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back.packets.len(), t.packets.len());
        std::fs::remove_file(&path).ok();
    }
}
