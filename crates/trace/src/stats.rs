//! Trace statistics.
//!
//! Computes the summary numbers the paper quotes for its traces ("the number
//! of packets is about 22.4M and the number of flows is about 1.45M") so
//! generated workloads can be validated against the same yardsticks.

use crate::synthetic::Trace;
use rlir_net::fxhash::FxHashMap;
use rlir_net::time::SimTime;
use rlir_net::FlowKey;
use rlir_stats::StreamingStats;
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total packets.
    pub packets: u64,
    /// Distinct 5-tuples.
    pub flows: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Mean packet size in bytes.
    pub mean_packet_size: f64,
    /// Mean packets per flow.
    pub mean_flow_pkts: f64,
    /// Offered rate in bits/s over the trace duration.
    pub offered_bps: f64,
    /// Offered rate as a fraction of the trace's link rate.
    pub utilization: f64,
    /// Timestamp of the first packet.
    pub first_packet: Option<SimTime>,
    /// Timestamp of the last packet.
    pub last_packet: Option<SimTime>,
}

impl TraceStats {
    /// Compute statistics for `trace`.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut sizes = StreamingStats::new();
        let mut bytes = 0u64;
        let mut per_flow: FxHashMap<FlowKey, u64> = FxHashMap::default();
        let mut first = None;
        let mut last = None;
        for p in &trace.packets {
            sizes.push(p.size as f64);
            bytes += p.size as u64;
            *per_flow.entry(p.flow).or_insert(0) += 1;
            first = Some(first.map_or(p.created_at, |f: SimTime| f.min(p.created_at)));
            last = Some(last.map_or(p.created_at, |l: SimTime| l.max(p.created_at)));
        }
        let packets = trace.packets.len() as u64;
        let flows = per_flow.len() as u64;
        let secs = trace.duration.as_secs_f64();
        let offered_bps = if secs > 0.0 {
            bytes as f64 * 8.0 / secs
        } else {
            0.0
        };
        TraceStats {
            packets,
            flows,
            bytes,
            mean_packet_size: sizes.mean().unwrap_or(0.0),
            mean_flow_pkts: if flows > 0 {
                packets as f64 / flows as f64
            } else {
                0.0
            },
            offered_bps,
            utilization: if trace.link_rate_bps > 0 {
                offered_bps / trace.link_rate_bps as f64
            } else {
                0.0
            },
            first_packet: first,
            last_packet: last,
        }
    }
}

impl core::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} pkts, {} flows ({:.1} pkts/flow), {:.1} MB, avg pkt {:.0} B, {:.2} Gb/s ({:.1}% util)",
            self.packets,
            self.flows,
            self.mean_flow_pkts,
            self.bytes as f64 / 1e6,
            self.mean_packet_size,
            self.offered_bps / 1e9,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, TraceConfig};
    use rlir_net::time::SimDuration;

    #[test]
    fn stats_of_generated_trace() {
        let cfg = TraceConfig::paper_regular(9, SimDuration::from_millis(200));
        let t = generate(&cfg);
        let s = TraceStats::compute(&t);
        assert_eq!(s.packets, t.packets.len() as u64);
        assert!(s.flows > 0 && s.flows <= s.packets);
        assert!(s.mean_packet_size > 40.0 && s.mean_packet_size < 1500.0);
        assert!(s.mean_flow_pkts >= 1.0);
        assert!((s.utilization - t.offered_utilization()).abs() < 1e-9);
        assert!(s.first_packet.unwrap() <= s.last_packet.unwrap());
    }

    #[test]
    fn stats_of_empty_trace() {
        let t = Trace::empty(1_000_000_000, SimDuration::from_secs(1));
        let s = TraceStats::compute(&t);
        assert_eq!(s.packets, 0);
        assert_eq!(s.flows, 0);
        assert_eq!(s.utilization, 0.0);
        assert!(s.first_packet.is_none());
    }

    #[test]
    fn display_mentions_flows() {
        let cfg = TraceConfig::paper_regular(9, SimDuration::from_millis(20));
        let s = TraceStats::compute(&generate(&cfg));
        let text = s.to_string();
        assert!(text.contains("flows"), "{text}");
        assert!(text.contains("util"), "{text}");
    }
}
