//! YAF-style flow metering.
//!
//! The paper's simulator is "based on an open-source NetFlow software — YAF"
//! (§4.1). This module reproduces the metering core of such a tool: packets
//! are aggregated into flow records keyed by 5-tuple, with first/last
//! timestamps, packet and byte counters, and active/idle timeout expiry.
//!
//! Beyond fidelity to the paper's toolchain, the records feed the *Multiflow*
//! baseline estimator (`rlir-baselines`), which exploits exactly "the two
//! timestamps already stored on a per-flow basis within NetFlow" (§5).

use rlir_net::fxhash::FxHashMap;
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use serde::{Deserialize, Serialize};

/// One NetFlow-style record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The 5-tuple.
    pub key: FlowKey,
    /// Timestamp of the first packet in the record.
    pub first: SimTime,
    /// Timestamp of the last packet in the record.
    pub last: SimTime,
    /// Packets accumulated.
    pub packets: u64,
    /// Bytes accumulated.
    pub bytes: u64,
}

impl FlowRecord {
    fn open(key: FlowKey, at: SimTime, bytes: u32) -> Self {
        FlowRecord {
            key,
            first: at,
            last: at,
            packets: 1,
            bytes: bytes as u64,
        }
    }

    fn update(&mut self, at: SimTime, bytes: u32) {
        self.last = self.last.max(at);
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Flow duration (last − first).
    pub fn duration(&self) -> SimDuration {
        self.last.saturating_since(self.first)
    }
}

/// Flow meter configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowMeterConfig {
    /// A flow idle for longer than this is expired (NetFlow default 15 s;
    /// YAF default 300 s — short traces rarely trigger it).
    pub idle_timeout: SimDuration,
    /// A flow active for longer than this is expired and restarted
    /// (NetFlow default 30 min).
    pub active_timeout: SimDuration,
}

impl Default for FlowMeterConfig {
    fn default() -> Self {
        FlowMeterConfig {
            idle_timeout: SimDuration::from_secs(15),
            active_timeout: SimDuration::from_secs(1800),
        }
    }
}

/// Aggregates packets into flow records with timeout-based expiry.
#[derive(Debug, Clone)]
pub struct FlowMeter {
    cfg: FlowMeterConfig,
    active: FxHashMap<FlowKey, FlowRecord>,
    exported: Vec<FlowRecord>,
    packets_seen: u64,
}

impl FlowMeter {
    /// Build with the given timeouts.
    pub fn new(cfg: FlowMeterConfig) -> Self {
        FlowMeter {
            cfg,
            active: FxHashMap::default(),
            exported: Vec::new(),
            packets_seen: 0,
        }
    }

    /// Observe one packet at its `created_at` time. Reference packets are
    /// not metered (YAF in the paper's pipeline only sees trace traffic).
    pub fn observe(&mut self, p: &Packet) {
        if p.is_reference() {
            return;
        }
        self.observe_at(p.flow, p.created_at, p.size);
    }

    /// Observe a (key, time, bytes) triple directly.
    pub fn observe_at(&mut self, key: FlowKey, at: SimTime, bytes: u32) {
        self.packets_seen += 1;
        match self.active.get_mut(&key) {
            Some(rec) => {
                let idle = at.saturating_since(rec.last);
                let active = at.saturating_since(rec.first);
                if idle > self.cfg.idle_timeout || active > self.cfg.active_timeout {
                    // Export and restart the record.
                    self.exported.push(*rec);
                    *rec = FlowRecord::open(key, at, bytes);
                } else {
                    rec.update(at, bytes);
                }
            }
            None => {
                self.active.insert(key, FlowRecord::open(key, at, bytes));
            }
        }
    }

    /// Number of packets metered.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Number of currently active (unexpired) flows.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// Records exported by timeouts so far (excludes active flows).
    pub fn exported(&self) -> &[FlowRecord] {
        &self.exported
    }

    /// Flush all remaining active flows and return the complete record set,
    /// sorted by (first, key) for determinism.
    pub fn finish(mut self) -> Vec<FlowRecord> {
        self.exported.extend(self.active.drain().map(|(_, r)| r));
        self.exported.sort_by_key(|r| (r.first, r.key));
        self.exported
    }
}

impl Default for FlowMeter {
    fn default() -> Self {
        Self::new(FlowMeterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u8) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, i),
            1000,
            Ipv4Addr::new(10, 1, 0, 1),
            53,
        )
    }

    #[test]
    fn aggregates_packets_into_one_record() {
        let mut m = FlowMeter::default();
        m.observe_at(key(1), SimTime::from_micros(10), 100);
        m.observe_at(key(1), SimTime::from_micros(30), 200);
        m.observe_at(key(1), SimTime::from_micros(20), 50); // out of order
        let recs = m.finish();
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert_eq!(r.packets, 3);
        assert_eq!(r.bytes, 350);
        assert_eq!(r.first, SimTime::from_micros(10));
        assert_eq!(r.last, SimTime::from_micros(30));
        assert_eq!(r.duration(), SimDuration::from_micros(20));
    }

    #[test]
    fn distinct_keys_distinct_records() {
        let mut m = FlowMeter::default();
        m.observe_at(key(1), SimTime::ZERO, 10);
        m.observe_at(key(2), SimTime::ZERO, 10);
        assert_eq!(m.active_flows(), 2);
        assert_eq!(m.finish().len(), 2);
    }

    #[test]
    fn idle_timeout_splits_records() {
        let cfg = FlowMeterConfig {
            idle_timeout: SimDuration::from_millis(1),
            active_timeout: SimDuration::from_secs(3600),
        };
        let mut m = FlowMeter::new(cfg);
        m.observe_at(key(1), SimTime::ZERO, 10);
        m.observe_at(key(1), SimTime::from_millis(5), 10); // > idle timeout
        assert_eq!(m.exported().len(), 1);
        let recs = m.finish();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.packets == 1));
    }

    #[test]
    fn active_timeout_splits_records() {
        let cfg = FlowMeterConfig {
            idle_timeout: SimDuration::from_secs(3600),
            active_timeout: SimDuration::from_millis(10),
        };
        let mut m = FlowMeter::new(cfg);
        // Packets every 4 ms keep the flow never-idle, but the active
        // timeout fires after 10 ms.
        for i in 0..5u64 {
            m.observe_at(key(1), SimTime::from_millis(i * 4), 10);
        }
        let recs = m.finish();
        assert!(recs.len() >= 2, "active timeout should split, got {recs:?}");
        assert_eq!(recs.iter().map(|r| r.packets).sum::<u64>(), 5);
    }

    #[test]
    fn reference_packets_ignored() {
        let mut m = FlowMeter::default();
        let p = Packet::reference(1, key(1), rlir_net::SenderId(0), 0, SimTime::ZERO);
        m.observe(&p);
        assert_eq!(m.packets_seen(), 0);
        assert!(m.finish().is_empty());
    }

    #[test]
    fn finish_is_sorted_and_deterministic() {
        let mut m = FlowMeter::default();
        for i in (1..20u8).rev() {
            m.observe_at(key(i), SimTime::from_micros(i as u64), 1);
        }
        let recs = m.finish();
        for w in recs.windows(2) {
            assert!(w[0].first <= w[1].first);
        }
    }

    #[test]
    fn meters_trace_packets() {
        let mut m = FlowMeter::default();
        let p = Packet::regular(1, key(3), 120, SimTime::from_micros(5));
        m.observe(&p);
        assert_eq!(m.packets_seen(), 1);
        let recs = m.finish();
        assert_eq!(recs[0].bytes, 120);
    }
}
