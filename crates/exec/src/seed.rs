//! Deterministic per-point seed derivation.
//!
//! Sweep points must not share RNG streams (a point's randomness would then
//! depend on which points ran before it on the same thread), and the
//! derivation must not depend on the thread count. `splitmix64` over
//! `(master, index)` gives every point an independent, well-mixed 64-bit
//! seed that is a pure function of the scenario configuration.

/// One splitmix64 scramble round.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for sweep point `index` from the scenario's `master`
/// seed. Pure, stable across releases, and collision-resistant enough that
/// adjacent points and adjacent master seeds share no low-bit structure.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    splitmix64(splitmix64(master) ^ index.wrapping_mul(0xA24B_AED4_963E_E407))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn distinct_across_points_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..16u64 {
            for idx in 0..64u64 {
                assert!(seen.insert(derive_seed(master, idx)), "collision");
            }
        }
    }

    #[test]
    fn not_the_identity_and_well_mixed() {
        // Flipping one master bit flips roughly half the output bits.
        let a = derive_seed(0, 0);
        let b = derive_seed(1, 0);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "{flipped} bits flipped");
        assert_ne!(derive_seed(0, 5), 5);
    }
}
