//! # rlir-exec — the scenario engine
//!
//! Every experiment in this repository is a *sweep*: a list of points
//! (utilization targets, policy × load grids, demux modes, fan-in degrees…)
//! each mapped through a deterministic per-point run and folded into one
//! aggregate. Before this crate existed each harness hand-rolled its own
//! `std::thread::scope` + work-queue loop; now there is exactly one:
//!
//! * [`scenario`] — the [`Scenario`] trait: config → points → deterministic
//!   per-point seed derivation → `run_point` → in-order aggregation.
//! * [`runner`] — the shared [`SweepRunner`]: the workspace's only scoped
//!   worker pool. Point ordering and per-point RNG seeds are independent of
//!   the thread count, so an N-thread run is byte-identical to a 1-thread
//!   run.
//! * [`seed`] — [`derive_seed`], the splitmix64 stream every scenario uses
//!   to give each point an independent, reproducible RNG seed.
//! * [`registry`] — the string-keyed [`ScenarioRegistry`] behind
//!   `experiments run <name>`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod registry;
pub mod runner;
pub mod scenario;
pub mod seed;

pub use registry::{RegistryError, ScenarioRegistry};
pub use runner::{shards_from_env, SweepRunner};
pub use scenario::{PointContext, Scenario};
pub use seed::derive_seed;
