//! The [`Scenario`] abstraction every experiment harness implements.

use crate::seed::derive_seed;

/// Everything a sweep point needs besides the point itself: its position in
/// the deterministic point order and its derived RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointContext {
    /// Index of this point in [`Scenario::points`] order.
    pub index: usize,
    /// Total number of points in the sweep.
    pub total: usize,
    /// Per-point RNG seed, [`derive_seed`]`(scenario.seed(), index)` — a
    /// pure function of the configuration, never of scheduling.
    pub seed: u64,
}

impl PointContext {
    /// Build the context for point `index` of a `total`-point sweep seeded
    /// by `master`.
    pub fn new(master: u64, index: usize, total: usize) -> Self {
        PointContext {
            index,
            total,
            seed: derive_seed(master, index as u64),
        }
    }
}

/// One experiment: a finite list of points, a deterministic per-point run,
/// and an order-preserving aggregation.
///
/// The contract that makes [`crate::SweepRunner`] thread-count-invariant:
///
/// * [`points`](Scenario::points) is deterministic in the configuration;
/// * [`run_point`](Scenario::run_point) depends only on `(ctx, point)` —
///   all randomness must come from `ctx.seed` (or be fixed in the point);
/// * [`aggregate`](Scenario::aggregate) receives outcomes **in point
///   order** regardless of which worker finished first, so it needs no
///   order-independence of its own.
pub trait Scenario: Sync {
    /// One sweep point (a utilization target, a labeled config, …).
    type Point: Sync;
    /// What one point produces.
    type Outcome: Send;
    /// What the whole sweep produces.
    type Aggregate;

    /// Master seed; every point derives its own seed from it.
    fn seed(&self) -> u64;

    /// The sweep points, in deterministic order.
    fn points(&self) -> Vec<Self::Point>;

    /// Run one point. Must be a pure function of `(ctx, point)` plus the
    /// scenario's immutable shared state (e.g. pre-generated base traces).
    fn run_point(&self, ctx: &PointContext, point: &Self::Point) -> Self::Outcome;

    /// Fold the outcomes, streamed in point order, into the final result.
    fn aggregate(&self, outcomes: impl Iterator<Item = Self::Outcome>) -> Self::Aggregate;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_seed_is_derived_not_positional() {
        let a = PointContext::new(42, 3, 9);
        assert_eq!(a.seed, derive_seed(42, 3));
        assert_ne!(a.seed, PointContext::new(42, 4, 9).seed);
        assert_ne!(a.seed, PointContext::new(43, 3, 9).seed);
    }
}
