//! The shared parallel sweep executor.
//!
//! This module owns the sweep layer's only `std::thread::scope` call
//! site. Every harness that previously hand-rolled a scoped worker pool
//! (`loss_sweep`, the two copies in `figures.rs`) now routes through
//! [`SweepRunner::run`]. (The one other scoped pool in the workspace is
//! orthogonal: `rlir_sim::shard` parallelises *within* one simulation,
//! this runner *across* independent runs; [`shards_from_env`] reads its
//! `RLIR_SHARDS` knob next to this module's `RLIR_THREADS`.)

use crate::scenario::{PointContext, Scenario};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Executes a [`Scenario`]'s points on a scoped worker pool.
///
/// Work distribution is an atomic index counter (no `Mutex<IntoIter>` work
/// queues); outcomes are re-ordered to point order before aggregation, and
/// every point's RNG seed is derived from the scenario seed — so the result
/// is byte-identical for any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner (runs points inline, no threads spawned).
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Thread count from the environment: `RLIR_THREADS` if set, else the
    /// host's available parallelism (falling back to 4).
    pub fn from_env() -> Self {
        let threads = std::env::var("RLIR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        Self::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every point of `scenario` and aggregate the outcomes in point
    /// order. With one thread (or one point) everything runs inline on the
    /// calling thread.
    pub fn run<S: Scenario>(&self, scenario: &S) -> S::Aggregate {
        let points = scenario.points();
        let n = points.len();
        let master = scenario.seed();
        let workers = self.threads.min(n.max(1));

        let mut outcomes: Vec<(usize, S::Outcome)> = Vec::with_capacity(n);
        if workers <= 1 {
            for (i, point) in points.iter().enumerate() {
                let ctx = PointContext::new(master, i, n);
                outcomes.push((i, scenario.run_point(&ctx, point)));
            }
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, S::Outcome)>> = Mutex::new(Vec::with_capacity(n));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let ctx = PointContext::new(master, i, n);
                            local.push((i, scenario.run_point(&ctx, &points[i])));
                        }
                        collected
                            .lock()
                            .expect("sweep outcomes poisoned")
                            .extend(local);
                    });
                }
            });
            outcomes = collected.into_inner().expect("sweep outcomes poisoned");
            // Completion order depends on scheduling; point order does not.
            outcomes.sort_by_key(|(i, _)| *i);
        }
        scenario.aggregate(outcomes.into_iter().map(|(_, o)| o))
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Shard count for the in-run pod-sharded engine from the `RLIR_SHARDS`
/// environment variable: `Some(n)` for a positive integer, `None` when
/// unset or unparsable (scenarios then keep the sequential engine). The
/// CLI's `--shards` flag overrides this, mirroring `--threads` vs
/// [`SweepRunner::from_env`]'s `RLIR_THREADS`.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("RLIR_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::derive_seed;

    /// Each point hashes its derived seed a few thousand times — enough
    /// work to interleave threads, fully seed-determined.
    struct HashSweep {
        master: u64,
        n: usize,
    }

    impl Scenario for HashSweep {
        type Point = usize;
        type Outcome = u64;
        type Aggregate = Vec<u64>;

        fn seed(&self) -> u64 {
            self.master
        }

        fn points(&self) -> Vec<usize> {
            (0..self.n).collect()
        }

        fn run_point(&self, ctx: &PointContext, point: &usize) -> u64 {
            assert_eq!(ctx.index, *point);
            assert_eq!(ctx.total, self.n);
            let mut x = ctx.seed;
            for _ in 0..4096 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        }

        fn aggregate(&self, outcomes: impl Iterator<Item = u64>) -> Vec<u64> {
            outcomes.collect()
        }
    }

    #[test]
    fn one_thread_and_many_threads_agree() {
        let s = HashSweep { master: 99, n: 23 };
        let one = SweepRunner::single().run(&s);
        let four = SweepRunner::new(4).run(&s);
        let eight = SweepRunner::new(8).run(&s);
        assert_eq!(one.len(), 23);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn outcomes_arrive_in_point_order() {
        let s = HashSweep { master: 5, n: 40 };
        let expected: Vec<u64> = (0..40)
            .map(|i| s.run_point(&PointContext::new(5, i, 40), &i))
            .collect();
        assert_eq!(SweepRunner::new(6).run(&s), expected);
    }

    #[test]
    fn empty_sweep_aggregates_nothing() {
        let s = HashSweep { master: 1, n: 0 };
        assert!(SweepRunner::new(4).run(&s).is_empty());
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let s = HashSweep { master: 3, n: 2 };
        assert_eq!(SweepRunner::new(16).run(&s), SweepRunner::single().run(&s));
    }

    #[test]
    fn runner_clamps_to_one_thread() {
        assert_eq!(SweepRunner::new(0).threads(), 1);
        assert_eq!(SweepRunner::single().threads(), 1);
    }

    #[test]
    fn point_seeds_match_public_derivation() {
        struct SeedProbe;
        impl Scenario for SeedProbe {
            type Point = usize;
            type Outcome = u64;
            type Aggregate = Vec<u64>;
            fn seed(&self) -> u64 {
                77
            }
            fn points(&self) -> Vec<usize> {
                vec![0, 1, 2]
            }
            fn run_point(&self, ctx: &PointContext, _p: &usize) -> u64 {
                ctx.seed
            }
            fn aggregate(&self, o: impl Iterator<Item = u64>) -> Vec<u64> {
                o.collect()
            }
        }
        let seeds = SweepRunner::new(3).run(&SeedProbe);
        assert_eq!(
            seeds,
            vec![derive_seed(77, 0), derive_seed(77, 1), derive_seed(77, 2)]
        );
    }
}
