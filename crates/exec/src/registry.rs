//! String-keyed scenario registry.
//!
//! The `experiments` binary resolves scenario names (`experiments run
//! loss_sweep --threads 4`) through a [`ScenarioRegistry`]. The registry is
//! generic over a context type `Ctx` (scale knobs, output directory, …) so
//! this crate stays free of harness-specific types; the concrete
//! registrations live next to the harnesses.

use crate::runner::SweepRunner;

/// The boxed run function a registry entry stores.
type RunFn<Ctx> = Box<dyn Fn(&Ctx, &SweepRunner) -> std::io::Result<()> + Send + Sync>;

/// A registered, runnable scenario.
pub struct ScenarioEntry<Ctx> {
    name: &'static str,
    summary: &'static str,
    run: RunFn<Ctx>,
}

impl<Ctx> ScenarioEntry<Ctx> {
    /// The key `run <name>` resolves.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description shown by `list`.
    pub fn summary(&self) -> &'static str {
        self.summary
    }
}

/// Why [`ScenarioRegistry::run`] failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No scenario registered under the requested name; carries the list
    /// of known names (in registration order) for the error message.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registration order.
        known: Vec<&'static str>,
    },
    /// The scenario ran but its output failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unknown { name, known } => {
                write!(f, "unknown scenario {name:?}; known: {}", known.join(", "))
            }
            RegistryError::Io(e) => write!(f, "scenario output failed: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Maps scenario names to runnable entries.
pub struct ScenarioRegistry<Ctx> {
    entries: Vec<ScenarioEntry<Ctx>>,
}

impl<Ctx> Default for ScenarioRegistry<Ctx> {
    fn default() -> Self {
        ScenarioRegistry {
            entries: Vec::new(),
        }
    }
}

impl<Ctx> ScenarioRegistry<Ctx> {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` → `run`. Panics on duplicate names — registries are
    /// built once at startup, so a duplicate is a programming error.
    pub fn register(
        &mut self,
        name: &'static str,
        summary: &'static str,
        run: impl Fn(&Ctx, &SweepRunner) -> std::io::Result<()> + Send + Sync + 'static,
    ) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate scenario name {name:?}"
        );
        self.entries.push(ScenarioEntry {
            name,
            summary,
            run: Box::new(run),
        });
    }

    /// Registered entries, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &ScenarioEntry<Ctx>> {
        self.entries.iter()
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve `name` and run it with the given context and runner.
    pub fn run(&self, name: &str, ctx: &Ctx, runner: &SweepRunner) -> Result<(), RegistryError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| RegistryError::Unknown {
                name: name.to_string(),
                known: self.names(),
            })?;
        (entry.run)(ctx, runner).map_err(RegistryError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn registers_lists_and_runs() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut reg: ScenarioRegistry<u32> = ScenarioRegistry::new();
        let h = hits.clone();
        reg.register("alpha", "first", move |ctx, runner| {
            assert_eq!(*ctx, 7);
            assert_eq!(runner.threads(), 2);
            h.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        reg.register("beta", "second", |_, _| Ok(()));
        assert_eq!(reg.names(), vec!["alpha", "beta"]);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        reg.run("alpha", &7, &SweepRunner::new(2)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unknown_name_lists_known() {
        let mut reg: ScenarioRegistry<()> = ScenarioRegistry::new();
        reg.register("alpha", "first", |_, _| Ok(()));
        let err = reg.run("nope", &(), &SweepRunner::single()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("alpha"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_panic() {
        let mut reg: ScenarioRegistry<()> = ScenarioRegistry::new();
        reg.register("alpha", "first", |_, _| Ok(()));
        reg.register("alpha", "again", |_, _| Ok(()));
    }
}
