//! Longest-prefix-match (LPM) trie.
//!
//! The RLIR receiver performs "simple IP prefix matching" (§3.1) on every
//! regular packet to identify its origin ToR — this runs on the per-packet
//! hot path, so it is implemented as a flat binary trie over arena-indexed
//! nodes rather than a pointer-chasing tree. The same structure backs the
//! fat-tree routing tables in `rlir-topo`.

use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    children: [u32; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [NO_NODE, NO_NODE],
            value: None,
        }
    }
}

/// A binary trie mapping IPv4 prefixes to values, supporting exact and
/// longest-prefix lookups.
///
/// ```
/// use rlir_net::trie::PrefixTrie;
/// use rlir_net::prefix::Ipv4Prefix;
/// use std::net::Ipv4Addr;
///
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "pod");
/// t.insert("10.1.0.0/16".parse().unwrap(), "tor-1");
/// assert_eq!(t.longest_match(Ipv4Addr::new(10, 1, 2, 3)), Some((&"tor-1", "10.1.0.0/16".parse().unwrap())));
/// assert_eq!(t.longest_match(Ipv4Addr::new(10, 9, 2, 3)).unwrap().0, &"pod");
/// assert_eq!(t.longest_match(Ipv4Addr::new(11, 0, 0, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `prefix -> value`, returning the previous value if the prefix
    /// was already present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut idx = 0usize;
        for bit in prefix.bits() {
            let b = bit as usize;
            let child = self.nodes[idx].children[b];
            idx = if child == NO_NODE {
                self.nodes.push(Node::new());
                let new = (self.nodes.len() - 1) as u32;
                self.nodes[idx].children[b] = new;
                new as usize
            } else {
                child as usize
            };
        }
        let old = self.nodes[idx].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&T> {
        let mut idx = 0usize;
        for bit in prefix.bits() {
            let child = self.nodes[idx].children[bit as usize];
            if child == NO_NODE {
                return None;
            }
            idx = child as usize;
        }
        self.nodes[idx].value.as_ref()
    }

    /// Remove a prefix, returning its value. (Nodes are not compacted; the
    /// routing tables in this project are built once and queried many times.)
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<T> {
        let mut idx = 0usize;
        for bit in prefix.bits() {
            let child = self.nodes[idx].children[bit as usize];
            if child == NO_NODE {
                return None;
            }
            idx = child as usize;
        }
        let old = self.nodes[idx].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, together with that prefix.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(&T, Ipv4Prefix)> {
        let raw = u32::from(addr);
        let mut idx = 0usize;
        let mut best: Option<(&T, u8)> = self.nodes[0].value.as_ref().map(|v| (v, 0));
        for depth in 0..32u8 {
            let bit = ((raw >> (31 - depth)) & 1) as usize;
            let child = self.nodes[idx].children[bit];
            if child == NO_NODE {
                break;
            }
            idx = child as usize;
            if let Some(v) = self.nodes[idx].value.as_ref() {
                best = Some((v, depth + 1));
            }
        }
        best.map(|(v, len)| {
            let pfx = Ipv4Prefix::new(addr, len).expect("len <= 32");
            (v, pfx)
        })
    }

    /// Longest-prefix match returning only the value.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&T> {
        self.longest_match(addr).map(|(v, _)| v)
    }

    /// Visit every stored `(prefix, value)` pair in unspecified order.
    pub fn for_each<F: FnMut(Ipv4Prefix, &T)>(&self, mut f: F) {
        // Depth-first walk reconstructing the prefix from the path.
        let mut stack: Vec<(usize, u32, u8)> = vec![(0, 0, 0)];
        while let Some((idx, addr, len)) = stack.pop() {
            if let Some(v) = self.nodes[idx].value.as_ref() {
                f(
                    Ipv4Prefix::new(Ipv4Addr::from(addr), len).expect("len <= 32"),
                    v,
                );
            }
            for b in 0..2u32 {
                let child = self.nodes[idx].children[b as usize];
                if child != NO_NODE {
                    debug_assert!(len < 32, "trie deeper than 32 bits");
                    let child_addr = addr | (b << (31 - len));
                    stack.push((child as usize, child_addr, len + 1));
                }
            }
        }
    }

    /// Collect all `(prefix, value)` pairs (cloning values), sorted by prefix.
    pub fn entries(&self) -> Vec<(Ipv4Prefix, T)>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|p, v| out.push((p, v.clone())));
        out.sort_by_key(|(p, _)| (*p, p.len()));
        out
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "net");
        t.insert(p("10.1.0.0/16"), "pod");
        t.insert(p("10.1.2.0/24"), "tor");
        t.insert(p("10.1.2.3/32"), "host");

        let cases = [
            (Ipv4Addr::new(10, 1, 2, 3), "host"),
            (Ipv4Addr::new(10, 1, 2, 4), "tor"),
            (Ipv4Addr::new(10, 1, 9, 9), "pod"),
            (Ipv4Addr::new(10, 200, 0, 1), "net"),
            (Ipv4Addr::new(172, 16, 0, 1), "default"),
        ];
        for (addr, want) in cases {
            let (got, _) = t.longest_match(addr).unwrap();
            assert_eq!(*got, want, "addr {addr}");
        }
    }

    #[test]
    fn longest_match_reports_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.2.0.0/16"), ());
        let (_, matched) = t.longest_match(Ipv4Addr::new(10, 2, 200, 1)).unwrap();
        assert_eq!(matched, p("10.2.0.0/16"));
    }

    #[test]
    fn no_default_means_misses() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(Ipv4Addr::new(11, 0, 0, 1)).is_none());
        assert!(t.lookup(Ipv4Addr::new(9, 255, 255, 255)).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 42);
        assert_eq!(t.lookup(Ipv4Addr::new(1, 2, 3, 4)), Some(&42));
        assert_eq!(t.lookup(Ipv4Addr::new(255, 255, 255, 255)), Some(&42));
    }

    #[test]
    fn for_each_visits_all() {
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24", "0.0.0.0/0"];
        let t: PrefixTrie<usize> = prefixes
            .iter()
            .enumerate()
            .map(|(i, s)| (p(s), i))
            .collect();
        let entries = t.entries();
        assert_eq!(entries.len(), prefixes.len());
        for (i, s) in prefixes.iter().enumerate() {
            assert!(entries.contains(&(p(s), i)), "missing {s}");
        }
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/9"), "low");
        t.insert(p("10.128.0.0/9"), "high");
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(&"low"));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 200, 0, 1)), Some(&"high"));
    }
}
