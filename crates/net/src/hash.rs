//! ECMP hash functions.
//!
//! Routers spread flows over equal-cost next hops by hashing the 5-tuple.
//! RLIR's *reverse ECMP computation* (§3.1) re-runs the upstream switches'
//! hash functions at the receiver to infer which core router a packet crossed
//! — so the exact same deterministic function must be usable both in the
//! forwarding plane (`rlir-topo`) and in the measurement plane (`rlir`).
//!
//! Switch vendors do not publish their hash functions; the paper assumes they
//! can be obtained. We therefore provide several concrete functions behind
//! the [`EcmpHasher`] trait plus a serialisable [`HashAlgo`] descriptor, and
//! a per-switch `seed` so that different switches can hash differently
//! (real deployments salt per-switch to avoid traffic polarisation).

use crate::flow::FlowKey;
use serde::{Deserialize, Serialize};

/// A deterministic flow-key hash used for ECMP next-hop selection.
pub trait EcmpHasher {
    /// Hash the flow key to a 64-bit value. Must be a pure function of the
    /// key (and the hasher's own configuration).
    fn hash_flow(&self, key: &FlowKey) -> u64;

    /// Select one of `n` equal-cost next hops for this key.
    ///
    /// Panics in debug builds if `n == 0`.
    fn select(&self, key: &FlowKey, n: usize) -> usize {
        debug_assert!(n > 0, "ECMP selection over an empty next-hop set");
        (self.hash_flow(key) % n as u64) as usize
    }
}

/// CRC-32 (IEEE 802.3 polynomial) with a seed-keyed non-linear finaliser.
///
/// A raw CRC is GF(2)-linear, so two CRC hashers that differ only in an
/// input salt compute the *same* linear map plus a constant — conditioned on
/// the first-level ECMP choice, a second CRC level becomes deterministic
/// (the classic multi-stage *traffic polarisation* pathology). Merchant
/// silicon avoids this with vendor-specific post-processing of the CRC;
/// we model that with a SplitMix64 finalisation keyed by the seed, keeping
/// the per-switch functions genuinely distinct. Use [`crc32`] directly for
/// the raw checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32Hasher {
    seed: u32,
}

/// FNV-1a folded over the canonical key bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnvHasher {
    seed: u64,
}

/// A deliberately weak xor-fold hash; useful in tests for *provoking*
/// polarisation and collision pathologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorFoldHasher {
    seed: u64,
}

const CRC32_POLY: u32 = 0xEDB8_8320; // reflected IEEE polynomial

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC32_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Raw CRC-32 over a byte slice (IEEE, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

impl Crc32Hasher {
    /// Build with a per-switch seed that is mixed into the CRC input.
    pub fn new(seed: u32) -> Self {
        Crc32Hasher { seed }
    }
}

impl EcmpHasher for Crc32Hasher {
    fn hash_flow(&self, key: &FlowKey) -> u64 {
        let kb = key.to_bytes();
        let mut input = [0u8; 17];
        input[..4].copy_from_slice(&self.seed.to_be_bytes());
        input[4..].copy_from_slice(&kb);
        let crc = crc32(&input) as u64;
        // Seed-keyed non-linear finalisation (see type docs: polarisation).
        splitmix64(crc ^ ((self.seed as u64) << 32))
    }
}

#[inline]
fn splitmix64(s: u64) -> u64 {
    let mut z = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FnvHasher {
    /// Build with a per-switch seed folded into the FNV offset basis.
    pub fn new(seed: u64) -> Self {
        FnvHasher { seed }
    }
}

impl EcmpHasher for FnvHasher {
    fn hash_flow(&self, key: &FlowKey) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h = FNV_OFFSET ^ self.seed;
        for b in key.to_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl XorFoldHasher {
    /// Build with a per-switch seed xored into the fold.
    pub fn new(seed: u64) -> Self {
        XorFoldHasher { seed }
    }
}

impl EcmpHasher for XorFoldHasher {
    fn hash_flow(&self, key: &FlowKey) -> u64 {
        let kb = key.to_bytes();
        let mut h = self.seed;
        for chunk in kb.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h ^= u64::from_be_bytes(word);
            h = h.rotate_left(13);
        }
        h
    }
}

/// Serialisable descriptor of a hash algorithm + seed, from which a concrete
/// hasher is built. This is what topology configurations store per switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashAlgo {
    /// CRC-32 with a 32-bit seed.
    Crc32 {
        /// Per-switch salt mixed into the CRC input.
        seed: u32,
    },
    /// FNV-1a with a 64-bit seed.
    Fnv {
        /// Per-switch salt folded into the FNV offset basis.
        seed: u64,
    },
    /// Weak xor-fold with a 64-bit seed.
    XorFold {
        /// Per-switch salt xored into the fold.
        seed: u64,
    },
}

impl Default for HashAlgo {
    fn default() -> Self {
        HashAlgo::Crc32 { seed: 0 }
    }
}

impl HashAlgo {
    /// Instantiate the described hasher as a boxed trait object.
    pub fn build(&self) -> Box<dyn EcmpHasher + Send + Sync> {
        match *self {
            HashAlgo::Crc32 { seed } => Box::new(Crc32Hasher::new(seed)),
            HashAlgo::Fnv { seed } => Box::new(FnvHasher::new(seed)),
            HashAlgo::XorFold { seed } => Box::new(XorFoldHasher::new(seed)),
        }
    }

    /// Hash a key directly without boxing (dispatches internally).
    pub fn hash_flow(&self, key: &FlowKey) -> u64 {
        match *self {
            HashAlgo::Crc32 { seed } => Crc32Hasher::new(seed).hash_flow(key),
            HashAlgo::Fnv { seed } => FnvHasher::new(seed).hash_flow(key),
            HashAlgo::XorFold { seed } => XorFoldHasher::new(seed).hash_flow(key),
        }
    }

    /// Select one of `n` next hops for `key` (see [`EcmpHasher::select`]).
    pub fn select(&self, key: &FlowKey, n: usize) -> usize {
        debug_assert!(n > 0, "ECMP selection over an empty next-hop set");
        (self.hash_flow(key) % n as u64) as usize
    }

    /// A variant of the same algorithm re-seeded for a particular switch.
    /// Deterministic: the same `(base, switch_index)` always yields the same
    /// algorithm, which is what makes reverse ECMP computation possible.
    pub fn reseeded(&self, switch_index: u64) -> HashAlgo {
        // SplitMix64 step decorrelates per-switch seeds derived from a base.
        let mix = splitmix64;
        match *self {
            HashAlgo::Crc32 { seed } => HashAlgo::Crc32 {
                seed: mix(seed as u64 ^ switch_index) as u32,
            },
            HashAlgo::Fnv { seed } => HashAlgo::Fnv {
                seed: mix(seed ^ switch_index),
            },
            HashAlgo::XorFold { seed } => HashAlgo::XorFold {
                seed: mix(seed ^ switch_index),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(i: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from(0x0A00_0000 | i),
            (1000 + i) as u16,
            Ipv4Addr::new(10, 3, 0, 2),
            80,
        )
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn hashing_is_deterministic() {
        let k = key(7);
        for algo in [
            HashAlgo::Crc32 { seed: 5 },
            HashAlgo::Fnv { seed: 5 },
            HashAlgo::XorFold { seed: 5 },
        ] {
            assert_eq!(algo.hash_flow(&k), algo.hash_flow(&k), "{algo:?}");
            let h = algo.build();
            assert_eq!(h.hash_flow(&k), algo.hash_flow(&k), "{algo:?}");
        }
    }

    #[test]
    fn different_seeds_give_different_selections() {
        // Over many keys, two differently-seeded CRC hashers must disagree on
        // at least some 2-way selections (they are different functions).
        let a = HashAlgo::Crc32 { seed: 1 };
        let b = HashAlgo::Crc32 { seed: 2 };
        let disagreements = (0..512)
            .filter(|&i| a.select(&key(i), 2) != b.select(&key(i), 2))
            .count();
        assert!(disagreements > 100, "only {disagreements} disagreements");
    }

    #[test]
    fn selection_in_range_and_reasonably_balanced() {
        // Decorrelate the synthetic keys: real traffic does not advance the
        // source address and port in lockstep, and CRC-32 is linear enough
        // that lockstep inputs bias its low bits.
        let diverse_key = |i: u32| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            FlowKey::tcp(
                Ipv4Addr::from(0x0A00_0000 | (h as u32 & 0xFFFF)),
                (h >> 16) as u16,
                Ipv4Addr::new(10, 3, 0, 2),
                80,
            )
        };
        for algo in [HashAlgo::Crc32 { seed: 9 }, HashAlgo::Fnv { seed: 9 }] {
            let n = 4;
            let mut counts = vec![0usize; n];
            for i in 0..4000 {
                let s = algo.select(&diverse_key(i), n);
                assert!(s < n);
                counts[s] += 1;
            }
            for (hop, &c) in counts.iter().enumerate() {
                // Expect ~1000 per bucket; allow a wide tolerance.
                assert!(
                    (600..=1400).contains(&c),
                    "{algo:?} bucket {hop} got {c}/4000"
                );
            }
        }
    }

    #[test]
    fn reseeded_is_deterministic_and_distinct() {
        let base = HashAlgo::Crc32 { seed: 0xDEAD };
        let a1 = base.reseeded(3);
        let a2 = base.reseeded(3);
        let b = base.reseeded(4);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        let k = key(11);
        assert_eq!(a1.hash_flow(&k), a2.hash_flow(&k));
    }

    #[test]
    fn hash_depends_on_all_tuple_fields() {
        let algo = HashAlgo::Crc32 { seed: 0 };
        let base = key(1);
        let h0 = algo.hash_flow(&base);
        let mut v = base;
        v.sport = base.sport.wrapping_add(1);
        assert_ne!(algo.hash_flow(&v), h0, "sport ignored");
        let mut v = base;
        v.dport = base.dport.wrapping_add(1);
        assert_ne!(algo.hash_flow(&v), h0, "dport ignored");
        let mut v = base;
        v.dst = Ipv4Addr::new(10, 3, 0, 3);
        assert_ne!(algo.hash_flow(&v), h0, "dst ignored");
        let mut v = base;
        v.proto = crate::flow::Protocol::Udp;
        assert_ne!(algo.hash_flow(&v), h0, "proto ignored");
    }

    #[test]
    #[should_panic(expected = "empty next-hop set")]
    #[cfg(debug_assertions)]
    fn select_zero_panics_in_debug() {
        HashAlgo::default().select(&key(0), 0);
    }

    #[test]
    fn no_cross_stage_polarisation() {
        // Regression for the raw-CRC pathology: conditioned on the first
        // stage's 2-way choice, the second (differently-seeded) stage must
        // still split traffic. With a purely linear CRC both stages differ
        // only by a constant and the conditional split collapses.
        let stage1 = HashAlgo::Crc32 { seed: 11 }.reseeded(1);
        let stage2 = HashAlgo::Crc32 { seed: 11 }.reseeded(2);
        let mut split = [[0usize; 2]; 2];
        for i in 0..2000u32 {
            let k = key(i);
            split[stage1.select(&k, 2)][stage2.select(&k, 2)] += 1;
        }
        for (s1, row) in split.iter().enumerate() {
            for (s2, &count) in row.iter().enumerate() {
                assert!(
                    count > 200,
                    "stage1={s1} stage2={s2} starved ({count}/2000): polarised"
                );
            }
        }
    }
}
