//! Wire formats.
//!
//! RLI reference packets are real packets on the wire: an IPv4 + UDP
//! datagram whose payload carries the RLI header (sender id, sequence
//! number, egress timestamp). This module implements the full encode/decode
//! path — IPv4 header with internet checksum, UDP header, and the RLI
//! payload with its own CRC — so a deployment could interoperate with a
//! software implementation of the receiver, and so tests can exercise
//! corruption detection.
//!
//! Layout of the RLI payload (20 bytes, network byte order):
//!
//! ```text
//!  0      2      3       5          9                 17      20
//!  | magic | ver  | sender | seq      | tx_timestamp_ns | crc16 |
//!  |  u16  |  u8  |  u16   | u32      |       u64       |  u16  | (+1 pad)
//! ```

use crate::flow::{FlowKey, Protocol};
use crate::packet::{ReferenceInfo, SenderId};
use crate::time::SimTime;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use core::fmt;
use std::net::Ipv4Addr;

/// Magic identifying an RLI payload ("RL").
pub const RLI_MAGIC: u16 = 0x524C;
/// Current RLI payload version.
pub const RLI_VERSION: u8 = 1;
/// UDP destination port reserved for RLI reference packets.
pub const RLI_UDP_PORT: u16 = 54912;
/// Size in bytes of the RLI payload.
pub const RLI_PAYLOAD_LEN: usize = 20;
/// IPv4 header length without options.
pub const IPV4_HEADER_LEN: usize = 20;
/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// Errors from decoding wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the fixed header.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        got: usize,
    },
    /// Bad magic value in the RLI payload.
    BadMagic(u16),
    /// Unsupported RLI version.
    BadVersion(u8),
    /// RLI payload CRC mismatch.
    BadPayloadCrc {
        /// CRC computed over the received bytes.
        expected: u16,
        /// CRC carried in the packet.
        got: u16,
    },
    /// IPv4 header checksum mismatch.
    BadIpChecksum {
        /// Checksum computed over the received header.
        expected: u16,
        /// Checksum carried in the header.
        got: u16,
    },
    /// Unsupported IP version or header length.
    BadIpHeader(u8),
    /// The datagram is not an RLI reference packet (wrong proto/port).
    NotReference,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated: need {need} bytes, got {got}")
            }
            WireError::BadMagic(m) => write!(f, "bad RLI magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported RLI version {v}"),
            WireError::BadPayloadCrc { expected, got } => {
                write!(
                    f,
                    "RLI payload CRC mismatch: expected {expected:#06x}, got {got:#06x}"
                )
            }
            WireError::BadIpChecksum { expected, got } => {
                write!(
                    f,
                    "IPv4 checksum mismatch: expected {expected:#06x}, got {got:#06x}"
                )
            }
            WireError::BadIpHeader(b) => write!(f, "unsupported IPv4 version/IHL byte {b:#04x}"),
            WireError::NotReference => write!(f, "not an RLI reference packet"),
        }
    }
}

impl std::error::Error for WireError {}

/// The RFC 1071 internet checksum over a byte slice (odd trailing byte padded
/// with zero).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// CRC-16/CCITT (poly 0x1021, init 0xFFFF) protecting the RLI payload.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// A minimal IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Type-of-service / DSCP byte; RLIR's packet-marking demux writes here.
    pub tos: u8,
    /// Total datagram length (header + payload).
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub proto: Protocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Encode into `buf`, computing the header checksum.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.tos;
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // flags/fragment offset zero
        hdr[8] = self.ttl;
        hdr[9] = self.proto.number();
        // checksum at [10..12] computed over header with zero placeholder
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Decode and verify the checksum.
    pub fn decode(data: &[u8]) -> Result<(Ipv4Header, usize), WireError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                need: IPV4_HEADER_LEN,
                got: data.len(),
            });
        }
        if data[0] != 0x45 {
            return Err(WireError::BadIpHeader(data[0]));
        }
        // Verify checksum: sum over header including checksum field is 0.
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr.copy_from_slice(&data[..IPV4_HEADER_LEN]);
        let got = u16::from_be_bytes([hdr[10], hdr[11]]);
        hdr[10] = 0;
        hdr[11] = 0;
        let expected = internet_checksum(&hdr);
        if expected != got {
            return Err(WireError::BadIpChecksum { expected, got });
        }
        Ok((
            Ipv4Header {
                tos: hdr[1],
                total_len: u16::from_be_bytes([hdr[2], hdr[3]]),
                ident: u16::from_be_bytes([hdr[4], hdr[5]]),
                ttl: hdr[8],
                proto: Protocol::from_number(hdr[9]),
                src: Ipv4Addr::new(hdr[12], hdr[13], hdr[14], hdr[15]),
                dst: Ipv4Addr::new(hdr[16], hdr[17], hdr[18], hdr[19]),
            },
            IPV4_HEADER_LEN,
        ))
    }
}

/// Encode the 20-byte RLI payload.
pub fn encode_rli_payload(info: &ReferenceInfo) -> [u8; RLI_PAYLOAD_LEN] {
    let mut p = [0u8; RLI_PAYLOAD_LEN];
    p[0..2].copy_from_slice(&RLI_MAGIC.to_be_bytes());
    p[2] = RLI_VERSION;
    p[3..5].copy_from_slice(&info.sender.0.to_be_bytes());
    p[5..9].copy_from_slice(&info.seq.to_be_bytes());
    p[9..17].copy_from_slice(&info.tx_timestamp.as_nanos().to_be_bytes());
    let crc = crc16_ccitt(&p[..17]);
    p[17..19].copy_from_slice(&crc.to_be_bytes());
    // p[19] is padding, kept zero.
    p
}

/// Decode and validate the 20-byte RLI payload.
pub fn decode_rli_payload(data: &[u8]) -> Result<ReferenceInfo, WireError> {
    if data.len() < RLI_PAYLOAD_LEN {
        return Err(WireError::Truncated {
            need: RLI_PAYLOAD_LEN,
            got: data.len(),
        });
    }
    let magic = u16::from_be_bytes([data[0], data[1]]);
    if magic != RLI_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if data[2] != RLI_VERSION {
        return Err(WireError::BadVersion(data[2]));
    }
    let expected = crc16_ccitt(&data[..17]);
    let got = u16::from_be_bytes([data[17], data[18]]);
    if expected != got {
        return Err(WireError::BadPayloadCrc { expected, got });
    }
    Ok(ReferenceInfo {
        sender: SenderId(u16::from_be_bytes([data[3], data[4]])),
        seq: u32::from_be_bytes([data[5], data[6], data[7], data[8]]),
        tx_timestamp: SimTime::from_nanos(u64::from_be_bytes(
            data[9..17].try_into().expect("8 bytes"),
        )),
    })
}

/// Encode a complete reference packet: IPv4 + UDP + RLI payload.
///
/// The flow key's addresses/ports are used for the IP/UDP headers so the
/// packet hashes onto the intended ECMP path; `tos` carries an optional mark.
pub fn encode_reference_packet(flow: &FlowKey, info: &ReferenceInfo, tos: u8) -> Bytes {
    let total = IPV4_HEADER_LEN + UDP_HEADER_LEN + RLI_PAYLOAD_LEN;
    let mut buf = BytesMut::with_capacity(total);
    Ipv4Header {
        tos,
        total_len: total as u16,
        ident: info.seq as u16,
        ttl: 64,
        proto: Protocol::Udp,
        src: flow.src,
        dst: flow.dst,
    }
    .encode(&mut buf);
    // UDP header: sport from the flow key, dport = RLI port.
    buf.put_u16(flow.sport);
    buf.put_u16(RLI_UDP_PORT);
    buf.put_u16((UDP_HEADER_LEN + RLI_PAYLOAD_LEN) as u16);
    buf.put_u16(0); // UDP checksum optional over IPv4; zero = unused
    buf.put_slice(&encode_rli_payload(info));
    buf.freeze()
}

/// Decoded view of a reference packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedReference {
    /// The outer IPv4 header.
    pub ip: Ipv4Header,
    /// UDP source port (the sender's flow-key port).
    pub sport: u16,
    /// The validated RLI header.
    pub info: ReferenceInfo,
}

/// Decode a complete reference packet produced by [`encode_reference_packet`].
pub fn decode_reference_packet(data: &[u8]) -> Result<DecodedReference, WireError> {
    let (ip, ip_len) = Ipv4Header::decode(data)?;
    if ip.proto != Protocol::Udp {
        return Err(WireError::NotReference);
    }
    let mut rest = &data[ip_len..];
    if rest.len() < UDP_HEADER_LEN {
        return Err(WireError::Truncated {
            need: UDP_HEADER_LEN,
            got: rest.len(),
        });
    }
    let sport = rest.get_u16();
    let dport = rest.get_u16();
    let _len = rest.get_u16();
    let _csum = rest.get_u16();
    if dport != RLI_UDP_PORT {
        return Err(WireError::NotReference);
    }
    let info = decode_rli_payload(rest)?;
    Ok(DecodedReference { ip, sport, info })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ReferenceInfo {
        ReferenceInfo {
            sender: SenderId(7),
            seq: 123_456,
            tx_timestamp: SimTime::from_nanos(987_654_321_012),
        }
    }

    fn flow() -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, 0, 1, 254),
            40001,
            Ipv4Addr::new(10, 3, 1, 254),
            RLI_UDP_PORT,
        )
    }

    #[test]
    fn checksum_rfc1071_vector() {
        // Classic example from RFC 1071 documentation.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }

    #[test]
    fn crc16_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn payload_round_trip() {
        let i = info();
        let enc = encode_rli_payload(&i);
        assert_eq!(decode_rli_payload(&enc).unwrap(), i);
    }

    #[test]
    fn payload_detects_corruption() {
        let mut enc = encode_rli_payload(&info());
        for byte in 3..17 {
            enc[byte] ^= 0x40;
            assert!(
                matches!(
                    decode_rli_payload(&enc),
                    Err(WireError::BadPayloadCrc { .. })
                ),
                "corruption at byte {byte} undetected"
            );
            enc[byte] ^= 0x40;
        }
    }

    #[test]
    fn payload_rejects_bad_magic_and_version() {
        let mut enc = encode_rli_payload(&info());
        enc[0] = 0;
        assert!(matches!(
            decode_rli_payload(&enc),
            Err(WireError::BadMagic(_))
        ));
        let mut enc = encode_rli_payload(&info());
        enc[2] = 9;
        assert!(matches!(
            decode_rli_payload(&enc),
            Err(WireError::BadVersion(9))
        ));
        assert!(matches!(
            decode_rli_payload(&[0u8; 4]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn ipv4_header_round_trip_and_checksum() {
        let hdr = Ipv4Header {
            tos: 0x04,
            total_len: 48,
            ident: 99,
            ttl: 64,
            proto: Protocol::Udp,
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 1, 0, 1),
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let (dec, len) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(len, IPV4_HEADER_LEN);
        assert_eq!(dec, hdr);

        // Flip a bit: checksum must catch it.
        let mut bad = buf.to_vec();
        bad[15] ^= 1;
        assert!(matches!(
            Ipv4Header::decode(&bad),
            Err(WireError::BadIpChecksum { .. })
        ));
    }

    #[test]
    fn full_reference_packet_round_trip() {
        let enc = encode_reference_packet(&flow(), &info(), 0x2C);
        assert_eq!(
            enc.len(),
            IPV4_HEADER_LEN + UDP_HEADER_LEN + RLI_PAYLOAD_LEN
        );
        let dec = decode_reference_packet(&enc).unwrap();
        assert_eq!(dec.info, info());
        assert_eq!(dec.ip.tos, 0x2C);
        assert_eq!(dec.ip.src, flow().src);
        assert_eq!(dec.sport, 40001);
    }

    #[test]
    fn non_rli_udp_rejected() {
        let mut flow = flow();
        flow.dport = 53;
        // Encode with the RLI encoder but then clobber the dport bytes.
        let enc = encode_reference_packet(&flow, &info(), 0);
        let mut raw = enc.to_vec();
        raw[IPV4_HEADER_LEN + 2..IPV4_HEADER_LEN + 4].copy_from_slice(&53u16.to_be_bytes());
        assert_eq!(decode_reference_packet(&raw), Err(WireError::NotReference));
    }

    #[test]
    fn wire_size_fits_reference_packet_constant() {
        // The simulated reference-packet size must be able to carry the real
        // encoding (plus 14B Ethernet + 4B FCS = 66 > 64 is fine since 64 is
        // the minimum frame and our payload fits in a minimum frame's 46B
        // payload: 20 + 8 + 20 = 48B > 46B — we account headers at L3).
        let l3 = IPV4_HEADER_LEN + UDP_HEADER_LEN + RLI_PAYLOAD_LEN;
        assert!(l3 as u32 <= crate::packet::REFERENCE_PACKET_BYTES);
    }
}
