//! Flow identification.
//!
//! RLI aggregates per-packet latency estimates by *flow key* — the classic
//! 5-tuple (source address, destination address, protocol, source port,
//! destination port). The paper's traces carry ~1.45 M flows over 22.4 M
//! packets, so the key is designed to be a compact, hashable value type.

use core::fmt;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Transport protocol carried in the IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Protocol {
    /// Transmission Control Protocol (IP protocol 6).
    Tcp = 6,
    /// User Datagram Protocol (IP protocol 17).
    Udp = 17,
    /// Anything else, carrying the raw IP protocol number.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    #[inline]
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Build from an IANA protocol number, canonicalising TCP/UDP.
    #[inline]
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The 5-tuple flow key used for per-flow latency aggregation and for ECMP
/// hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: Protocol,
    /// Transport source port (0 for protocols without ports).
    pub sport: u16,
    /// Transport destination port (0 for protocols without ports).
    pub dport: u16,
}

// Hand-rolled: the derived impl feeds the hasher one field at a time (five
// hasher rounds); packing the 13 canonical bytes into two words halves the
// per-lookup cost in the hot per-flow tables. Semantically identical to any
// correct `Hash` impl (equal keys → equal packed words).
impl core::hash::Hash for FlowKey {
    #[inline]
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        let w1 = (u32::from(self.src) as u64) << 32 | u32::from(self.dst) as u64;
        let w2 = (self.proto.number() as u64) << 32 | (self.sport as u64) << 16 | self.dport as u64;
        state.write_u64(w1);
        state.write_u64(w2);
    }
}

impl FlowKey {
    /// Construct a TCP flow key.
    pub fn tcp(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            proto: Protocol::Tcp,
            sport,
            dport,
        }
    }

    /// Construct a UDP flow key.
    pub fn udp(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            proto: Protocol::Udp,
            sport,
            dport,
        }
    }

    /// The key with source and destination (address and port) swapped —
    /// the key of the reverse direction of the same conversation.
    pub fn reversed(self) -> Self {
        FlowKey {
            src: self.dst,
            dst: self.src,
            proto: self.proto,
            sport: self.dport,
            dport: self.sport,
        }
    }

    /// Serialise the key into the 13-byte canonical layout used by the ECMP
    /// hash functions and the wire format:
    /// `src(4) | dst(4) | proto(1) | sport(2) | dport(2)`.
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src.octets());
        b[4..8].copy_from_slice(&self.dst.octets());
        b[8] = self.proto.number();
        b[9..11].copy_from_slice(&self.sport.to_be_bytes());
        b[11..13].copy_from_slice(&self.dport.to_be_bytes());
        b
    }

    /// Inverse of [`FlowKey::to_bytes`].
    pub fn from_bytes(b: &[u8; 13]) -> Self {
        FlowKey {
            src: Ipv4Addr::new(b[0], b[1], b[2], b[3]),
            dst: Ipv4Addr::new(b[4], b[5], b[6], b[7]),
            proto: Protocol::from_number(b[8]),
            sport: u16::from_be_bytes([b[9], b[10]]),
            dport: u16::from_be_bytes([b[11], b[12]]),
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src, self.sport, self.dst, self.dport, self.proto
        )
    }
}

/// A dense numeric flow identifier handed out by flow tables.
///
/// Mapping 5-tuples to dense ids once and then working with `FlowId` keeps
/// per-flow state in flat vectors instead of hash maps on hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 1, 2),
            43120,
            Ipv4Addr::new(10, 3, 0, 2),
            80,
        )
    }

    #[test]
    fn protocol_numbers_round_trip() {
        assert_eq!(Protocol::from_number(6), Protocol::Tcp);
        assert_eq!(Protocol::from_number(17), Protocol::Udp);
        assert_eq!(Protocol::from_number(47), Protocol::Other(47));
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn byte_layout_round_trips() {
        let k = key();
        let b = k.to_bytes();
        assert_eq!(FlowKey::from_bytes(&b), k);
        // Spot-check the layout: sport big-endian at offset 9.
        assert_eq!(u16::from_be_bytes([b[9], b[10]]), 43120);
        assert_eq!(b[8], 6);
    }

    #[test]
    fn reversal_is_involutive() {
        let k = key();
        assert_ne!(k.reversed(), k);
        assert_eq!(k.reversed().reversed(), k);
        assert_eq!(k.reversed().sport, k.dport);
        assert_eq!(k.reversed().src, k.dst);
    }

    #[test]
    fn display_is_readable() {
        let k = key();
        assert_eq!(k.to_string(), "10.0.1.2:43120 -> 10.3.0.2:80 (tcp)");
        assert_eq!(FlowId(7).to_string(), "flow#7");
    }

    #[test]
    fn udp_constructor() {
        let k = FlowKey::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            53,
            Ipv4Addr::new(5, 6, 7, 8),
            5353,
        );
        assert_eq!(k.proto, Protocol::Udp);
        assert_eq!(k.to_bytes()[8], 17);
    }
}
