//! Fast deterministic hashing for hot-path tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of nanoseconds per 13-byte [`FlowKey`] —
//! measurable at per-packet rates. The measurement plane hashes *simulated*
//! flow keys (no adversarial input reaches these tables), so the workspace
//! swaps in the FxHash function used by rustc: one rotate + xor + multiply
//! per 8-byte word.
//!
//! [`FxHashMap`]/[`FxHashSet`] are drop-in aliases; construct with
//! `FxHashMap::default()`. The hasher is fully deterministic (no per-process
//! random state), which also makes experiment table iteration order stable
//! across runs of the same binary.
//!
//! [`FlowKey`]: crate::flow::FlowKey

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc FxHash implementation
/// (64-bit golden-ratio constant).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash state: one `u64` folded with rotate-xor-multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use std::hash::{BuildHasher, Hash};
    use std::net::Ipv4Addr;

    fn fx_hash<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    fn key(i: u32) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from(0x0A00_0000 | (i & 0xFFFF)),
            (i >> 8) as u16,
            Ipv4Addr::from(0x0A30_0000 | (i >> 4)),
            (80 + (i % 7)) as u16,
        )
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let k = key(12345);
        assert_eq!(fx_hash(&k), fx_hash(&k));
        assert_eq!(fx_hash(&0xDEAD_BEEFu64), fx_hash(&0xDEAD_BEEFu64));
    }

    #[test]
    fn distinct_flow_keys_stay_distinct_in_a_table() {
        // Collision sanity for the hot-path table swap: 100k structured,
        // near-adjacent flow keys (the worst case for weak hashes) must all
        // land as distinct entries.
        let n = 100_000u32;
        let mut map: FxHashMap<FlowKey, u32> = FxHashMap::default();
        for i in 0..n {
            map.insert(key(i), i);
        }
        assert_eq!(map.len() as u32, n, "flow keys collided in the table");
        for i in (0..n).step_by(997) {
            assert_eq!(map.get(&key(i)), Some(&i));
        }
    }

    #[test]
    fn hash64_collision_rate_is_negligible() {
        // Direct 64-bit collision check over sequential flow keys: with
        // 100k keys the birthday bound predicts ~2.7e-10 expected
        // collisions, so observing even one means the mixer is broken.
        let mut hashes: FxHashSet<u64> = FxHashSet::default();
        let n = 100_000u32;
        for i in 0..n {
            hashes.insert(fx_hash(&key(i)));
        }
        assert_eq!(hashes.len() as u32, n, "64-bit hash collision on flow keys");
    }

    #[test]
    fn low_bits_are_well_mixed() {
        // HashMap uses the low bits for bucket selection; sequential keys
        // must not bias them. Chi-square-ish sanity over 16 buckets.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u32 {
            buckets[(fx_hash(&key(i)) & 0xF) as usize] += 1;
        }
        for (b, &c) in buckets.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "bucket {b} got {c}/16000 — low bits biased"
            );
        }
    }

    #[test]
    fn chunked_write_matches_padded_remainder() {
        // A 13-byte input must hash as one full 8-byte word plus the
        // trailing 5 bytes zero-padded into a second word — the remainder
        // path must neither drop bytes nor misplace them in the word.
        let bytes = key(7).to_bytes();
        let mut chunked = FxHasher::default();
        chunked.write(&bytes);

        let mut manual = FxHasher::default();
        manual.write_u64(u64::from_le_bytes(bytes[..8].try_into().expect("8")));
        let mut tail = [0u8; 8];
        tail[..5].copy_from_slice(&bytes[8..]);
        manual.write_u64(u64::from_le_bytes(tail));

        assert_eq!(chunked.finish(), manual.finish());

        // And the trailing bytes must actually participate.
        let mut truncated = FxHasher::default();
        truncated.write(&bytes[..8]);
        assert_ne!(chunked.finish(), truncated.finish());
    }
}
