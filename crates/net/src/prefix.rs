//! IPv4 prefixes.
//!
//! RLIR's upstream demultiplexer identifies the origin ToR switch of a regular
//! packet by matching its *source address* against the address block assigned
//! to each ToR ("the origin of regular packets can be easily identified by IP
//! address block assigned for hosts in each ToR switch" — §3.1). This module
//! provides the prefix value type; [`crate::trie`] provides longest-prefix
//! matching over sets of them.

use core::fmt;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix, stored in canonical form (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

/// Errors produced when parsing or constructing a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// The prefix length was greater than 32.
    LengthOutOfRange(u8),
    /// The textual form was not `a.b.c.d/len`.
    Malformed(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(l) => {
                write!(f, "prefix length {l} out of range (0..=32)")
            }
            PrefixError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Ipv4Prefix {
    /// The default route `0.0.0.0/0`, matching every address.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Build a prefix, canonicalising by masking off host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        let raw = u32::from(addr);
        Ok(Ipv4Prefix {
            addr: raw & mask(len),
            len,
        })
    }

    /// Build a host route (`/32`) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix {
            addr: u32::from(addr),
            len: 32,
        }
    }

    /// The network address (host bits zero).
    #[inline]
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The prefix length in bits.
    // `is_empty` would be meaningless for a bit-length, not a container.
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (default) prefix.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Does `addr` fall inside this prefix?
    #[inline]
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.addr
    }

    /// Is `other` entirely contained in `self` (i.e. `self` is a supernet of
    /// or equal to `other`)?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.addr & mask(self.len)) == self.addr
    }

    /// The raw network address as a `u32` (useful for tries and hashing).
    #[inline]
    pub fn raw(&self) -> u32 {
        self.addr
    }

    /// The first `self.len` bits as an iterator of booleans, most significant
    /// first. Drives trie insertion/lookup.
    pub fn bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| (self.addr >> (31 - i)) & 1 == 1)
    }

    /// The number of addresses covered by this prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// `i`-th address within the prefix (0-based), wrapping inside the block.
    /// Convenient for assigning synthetic host addresses from a ToR block.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        let off = (i % self.size()) as u32;
        Ipv4Addr::from(self.addr | off)
    }
}

#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::Malformed(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::Malformed(s.to_string()))?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let pfx = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(pfx.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(pfx.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "10.2.1.0/24", "192.168.1.17/32"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("banana/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn containment() {
        let pfx = p("10.2.0.0/16");
        assert!(pfx.contains(Ipv4Addr::new(10, 2, 255, 1)));
        assert!(!pfx.contains(Ipv4Addr::new(10, 3, 0, 1)));
        assert!(Ipv4Prefix::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn covers_partial_order() {
        let a = p("10.0.0.0/8");
        let b = p("10.2.0.0/16");
        let c = p("10.2.3.0/24");
        assert!(a.covers(&b) && b.covers(&c) && a.covers(&c));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert!(!b.covers(&p("11.0.0.0/16")));
    }

    #[test]
    fn bits_iterate_msb_first() {
        let pfx = p("192.0.0.0/3");
        let bits: Vec<bool> = pfx.bits().collect();
        assert_eq!(bits, vec![true, true, false]); // 192 = 0b1100_0000
        assert_eq!(Ipv4Prefix::DEFAULT.bits().count(), 0);
        assert_eq!(p("255.255.255.255/32").bits().filter(|b| *b).count(), 32);
    }

    #[test]
    fn size_and_nth() {
        let pfx = p("10.0.1.0/24");
        assert_eq!(pfx.size(), 256);
        assert_eq!(pfx.nth(0), Ipv4Addr::new(10, 0, 1, 0));
        assert_eq!(pfx.nth(17), Ipv4Addr::new(10, 0, 1, 17));
        assert_eq!(pfx.nth(256), Ipv4Addr::new(10, 0, 1, 0)); // wraps
        assert_eq!(Ipv4Prefix::host(Ipv4Addr::new(1, 1, 1, 1)).size(), 1);
    }

    #[test]
    fn host_route() {
        let h = Ipv4Prefix::host(Ipv4Addr::new(10, 1, 1, 9));
        assert_eq!(h.len(), 32);
        assert!(h.contains(Ipv4Addr::new(10, 1, 1, 9)));
        assert!(!h.contains(Ipv4Addr::new(10, 1, 1, 8)));
    }
}
