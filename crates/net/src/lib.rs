//! # rlir-net — packet and addressing substrate
//!
//! Foundation types shared by every crate in the RLIR reproduction:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`flow`] — 5-tuple [`FlowKey`]s and dense [`FlowId`]s.
//! * [`prefix`] / [`trie`] — IPv4 CIDR prefixes and a longest-prefix-match
//!   trie (the receiver-side "simple IP prefix matching" of RLIR §3.1 and the
//!   fat-tree routing tables).
//! * [`hash`] — deterministic ECMP hash functions, shared between the
//!   forwarding plane and RLIR's reverse-ECMP demultiplexer.
//! * [`fxhash`] — the FxHash function behind [`FxHashMap`], used by every
//!   per-flow table on the packet hot path (SipHash is overkill for
//!   simulated keys).
//! * [`packet`] — the simulated [`Packet`] record with traffic classes and
//!   embedded RLI reference headers.
//! * [`wire`] — real on-the-wire encodings (IPv4 + UDP + RLI payload with
//!   checksums) for reference packets.
//! * [`clock`] — imperfect-clock models for studying synchronisation error.
//!
//! The crate is dependency-light (only `bytes` and `serde`) and contains no
//! I/O or simulation logic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod flow;
pub mod fxhash;
pub mod hash;
pub mod packet;
pub mod prefix;
pub mod time;
pub mod trie;
pub mod wire;

pub use clock::{ClockModel, ClockPair};
pub use flow::{FlowId, FlowKey, Protocol};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hash::{EcmpHasher, HashAlgo};
pub use packet::{Packet, PacketId, PacketKind, ReferenceInfo, SenderId};
pub use prefix::Ipv4Prefix;
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
