//! Simulated time.
//!
//! All timestamps in the simulator and in the RLI/RLIR measurement plane are
//! expressed as [`SimTime`], a nanosecond count since the start of the
//! simulation. Durations are [`SimDuration`]. Both are thin `u64` wrappers so
//! they are `Copy`, totally ordered and cheap to store in packet records; the
//! arithmetic provided here is deliberately checked (saturating) because
//! event-driven simulations are notorious for silently wrapping timestamps.
//!
//! The paper's measurement plane works at microsecond granularity ("tens of
//! µseconds to forward requests"); a nanosecond base unit leaves headroom for
//! sub-microsecond queueing on 10 Gb/s links (a 40-byte packet serialises in
//! ~32 ns at OC-192 rate).

use core::fmt;
use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later
    /// (which can happen with skewed measurement clocks).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in nanoseconds. Needed when a skewed
    /// receiver clock makes a one-way delay measurement negative.
    #[inline]
    pub fn signed_delta_nanos(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Checked subtraction producing a duration.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Serialisation time of `bytes` at `rate_bps` bits per second, rounded up
    /// so that back-to-back packets never overlap on the wire.
    #[inline]
    pub fn transmission(bytes: u32, rate_bps: u64) -> Self {
        debug_assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(rate_bps as u128);
        SimDuration(ns as u64)
    }

    /// Scale by a non-negative factor, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl core::ops::Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction would underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl core::ops::Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-friendly rendering of a nanosecond count (`832ns`, `83.2µs`, `1.2ms`,
/// `3.5s`), chosen to match how the paper quotes latencies.
fn format_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn fractional_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
        let t = SimTime::from_nanos(83_000);
        assert!((t.as_micros_f64() - 83.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t - d).as_nanos(), 60);
        assert_eq!((t + d) - t, d);
        let mut u = t;
        u += d;
        assert_eq!(u.as_nanos(), 140);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 40);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_nanos(40)));
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn signed_delta() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(a.signed_delta_nanos(b), -150);
        assert_eq!(b.signed_delta_nanos(a), 150);
    }

    #[test]
    fn transmission_time_oc192() {
        // A 1250-byte packet at exactly 10 Gb/s serialises in 1 µs.
        let d = SimDuration::transmission(1250, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_000);
        // 40-byte minimum TCP segment at OC-192 payload rate (9.953 Gb/s):
        // 320 bits / 9.953e9 bps ≈ 32.2 ns, rounded up.
        let d = SimDuration::transmission(40, 9_953_000_000);
        assert_eq!(d.as_nanos(), 33);
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bps = 8/3 s ≈ 2.666..s, must round *up*.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(832).to_string(), "832ns");
        assert_eq!(SimDuration::from_nanos(83_200).to_string(), "83.2µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.0ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.00s");
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(2),
                SimTime::from_nanos(5)
            ]
        );
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 6);
    }
}
