//! Measurement-clock model.
//!
//! RLI requires time synchronisation between sender and receiver ("that can
//! be achieved by GPS-based clock synchronization or IEEE 1588", §2). The
//! simulator keeps one true timeline; each measurement instance *observes* it
//! through a [`ClockModel`] with configurable offset, drift and jitter, which
//! lets experiments quantify how much synchronisation error RLI/RLIR
//! tolerates (ablation A4 in DESIGN.md).
//!
//! Jitter is *stateless*: it is derived by hashing the true time with the
//! model's seed, so observing the same instant twice yields the same reading
//! and simulations stay reproducible regardless of call order.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A model of an imperfect local clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Constant offset from true time, in nanoseconds (positive = fast).
    pub offset_ns: i64,
    /// Frequency error in parts-per-million (positive = ticks fast).
    pub drift_ppm: f64,
    /// Half-width of uniform reading jitter, in nanoseconds.
    pub jitter_ns: u64,
    /// Seed for the stateless jitter hash.
    pub seed: u64,
}

impl Default for ClockModel {
    fn default() -> Self {
        Self::perfect()
    }
}

impl ClockModel {
    /// A perfectly synchronised clock (what GPS sync approximates).
    pub const fn perfect() -> Self {
        ClockModel {
            offset_ns: 0,
            drift_ppm: 0.0,
            jitter_ns: 0,
            seed: 0,
        }
    }

    /// A clock typical of a good IEEE 1588 (PTP) deployment: sub-µs offset,
    /// small residual drift and tens of nanoseconds of jitter.
    pub fn ptp(seed: u64) -> Self {
        ClockModel {
            offset_ns: 200,
            drift_ppm: 0.05,
            jitter_ns: 50,
            seed,
        }
    }

    /// Build a fixed-offset clock.
    pub fn with_offset(offset_ns: i64) -> Self {
        ClockModel {
            offset_ns,
            ..Self::perfect()
        }
    }

    /// Is this clock exactly synchronised to true time?
    pub fn is_perfect(&self) -> bool {
        self.offset_ns == 0 && self.drift_ppm == 0.0 && self.jitter_ns == 0
    }

    /// The local reading this clock produces when true time is `t`.
    ///
    /// Saturates at zero: a clock cannot report a negative timestamp.
    pub fn observe(&self, t: SimTime) -> SimTime {
        let true_ns = t.as_nanos();
        let drift = (true_ns as f64 * self.drift_ppm * 1e-6) as i64;
        let jitter = if self.jitter_ns == 0 {
            0
        } else {
            let h = splitmix64(self.seed ^ true_ns);
            let span = 2 * self.jitter_ns as i64 + 1;
            (h % span as u64) as i64 - self.jitter_ns as i64
        };
        let reading = true_ns as i64 + self.offset_ns + drift + jitter;
        SimTime::from_nanos(reading.max(0) as u64)
    }

    /// The worst-case absolute error of a reading taken at true time `t`
    /// (useful for test bounds).
    pub fn max_error_at(&self, t: SimTime) -> u64 {
        let drift = (t.as_nanos() as f64 * self.drift_ppm.abs() * 1e-6).ceil() as u64;
        self.offset_ns.unsigned_abs() + drift + self.jitter_ns
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synchronised sender/receiver clock pair, as RLI assumes. The one-way
/// delay measured by the pair for a packet stamped at `tx` (sender clock) and
/// received at `rx` (receiver clock) is `receiver.observe(rx) -
/// sender.observe(tx)`, which equals the true delay when both clocks are
/// perfect.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClockPair {
    /// The sender-side clock.
    pub sender: ClockModel,
    /// The receiver-side clock.
    pub receiver: ClockModel,
}

impl ClockPair {
    /// Two perfect clocks.
    pub const fn perfect() -> Self {
        ClockPair {
            sender: ClockModel::perfect(),
            receiver: ClockModel::perfect(),
        }
    }

    /// The one-way delay as *measured* by this clock pair, in signed
    /// nanoseconds (clock skew can drive the measurement negative).
    pub fn measured_delay_ns(&self, tx_true: SimTime, rx_true: SimTime) -> i64 {
        let tx = self.sender.observe(tx_true);
        let rx = self.receiver.observe(rx_true);
        rx.signed_delta_nanos(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let c = ClockModel::perfect();
        for ns in [0u64, 1, 1_000_000, u64::MAX / 2] {
            assert_eq!(c.observe(SimTime::from_nanos(ns)).as_nanos(), ns);
        }
        assert!(c.is_perfect());
    }

    #[test]
    fn offset_shifts_reading() {
        let fast = ClockModel::with_offset(500);
        assert_eq!(fast.observe(SimTime::from_nanos(1000)).as_nanos(), 1500);
        let slow = ClockModel::with_offset(-500);
        assert_eq!(slow.observe(SimTime::from_nanos(1000)).as_nanos(), 500);
        // Saturation at zero.
        assert_eq!(slow.observe(SimTime::from_nanos(100)).as_nanos(), 0);
    }

    #[test]
    fn drift_accumulates() {
        let c = ClockModel {
            drift_ppm: 100.0, // 100 µs per second
            ..ClockModel::perfect()
        };
        let reading = c.observe(SimTime::from_secs(10));
        let expected = 10_000_000_000u64 + 1_000_000; // +1 ms after 10 s
        assert_eq!(reading.as_nanos(), expected);
    }

    #[test]
    fn jitter_bounded_and_reproducible() {
        let c = ClockModel {
            jitter_ns: 100,
            seed: 42,
            ..ClockModel::perfect()
        };
        let mut seen_nonzero = false;
        for i in 0..1000u64 {
            let t = SimTime::from_nanos(1_000_000 + i * 13);
            let r1 = c.observe(t);
            let r2 = c.observe(t);
            assert_eq!(r1, r2, "jitter must be stateless");
            let err = r1.signed_delta_nanos(t).unsigned_abs();
            assert!(err <= 100, "jitter {err} exceeds bound");
            seen_nonzero |= err > 0;
        }
        assert!(seen_nonzero, "jitter never fired");
    }

    #[test]
    fn max_error_bounds_observation() {
        let c = ClockModel::ptp(7);
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 17);
            let err = c.observe(t).signed_delta_nanos(t).unsigned_abs();
            assert!(err <= c.max_error_at(t), "error {err} over bound");
        }
    }

    #[test]
    fn clock_pair_measures_true_delay_when_perfect() {
        let pair = ClockPair::perfect();
        let d = pair.measured_delay_ns(SimTime::from_nanos(100), SimTime::from_nanos(350));
        assert_eq!(d, 250);
    }

    #[test]
    fn skewed_pair_biases_measurement() {
        let pair = ClockPair {
            sender: ClockModel::with_offset(0),
            receiver: ClockModel::with_offset(-1000),
        };
        let d = pair.measured_delay_ns(SimTime::from_micros(10), SimTime::from_micros(11));
        assert_eq!(d, 0); // true 1 µs delay erased by 1 µs receiver lag
        let pair = ClockPair {
            sender: ClockModel::with_offset(2000),
            receiver: ClockModel::with_offset(0),
        };
        let d = pair.measured_delay_ns(SimTime::from_micros(10), SimTime::from_micros(11));
        assert_eq!(d, -1000); // negative measured delay is representable
    }
}
