//! Simulated packet records.
//!
//! A [`Packet`] is the unit that flows through the `rlir-sim` queues and that
//! the RLI/RLIR measurement instances observe. It carries the flow key, the
//! wire size, its traffic class ([`PacketKind`]), an optional ToS-style
//! *mark* (stamped by core switches when the packet-marking demultiplexing
//! strategy is enabled, §3.1), and, for reference packets, the embedded RLI
//! header.

use crate::flow::FlowKey;
use crate::time::SimTime;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Globally unique packet identifier, assigned at trace-generation or
/// injection time. Used to join simulator ground truth with estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Identifier of an RLI sender instance (an interface hosting a sender).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SenderId(pub u16);

impl fmt::Display for SenderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The RLI header embedded in a reference packet: which sender emitted it,
/// its sequence number in that sender's stream, and the hardware timestamp
/// taken at the sender's egress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReferenceInfo {
    /// Emitting sender instance.
    pub sender: SenderId,
    /// Sequence number within the sender's reference stream.
    pub seq: u32,
    /// Egress (transmit) timestamp stamped by the sender, on the sender's
    /// clock.
    pub tx_timestamp: SimTime,
}

/// Traffic class of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Regular (measured) traffic: traverses the full sender→receiver path.
    Regular,
    /// Cross traffic: shares only part of the path (§3.2); never measured
    /// per-flow, only contributes load.
    Cross,
    /// An RLI reference packet.
    Reference(ReferenceInfo),
}

impl PacketKind {
    /// Is this a reference packet?
    #[inline]
    pub fn is_reference(&self) -> bool {
        matches!(self, PacketKind::Reference(_))
    }
}

/// Size on the wire of a reference packet: minimum Ethernet-ish frame able to
/// carry IPv4 + UDP + the 20-byte RLI payload (see [`crate::wire`]).
pub const REFERENCE_PACKET_BYTES: u32 = 64;

/// A packet moving through the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id for ground-truth bookkeeping.
    pub id: PacketId,
    /// 5-tuple flow key (for reference packets: the synthetic key the sender
    /// uses so the packet follows the measured path under ECMP).
    pub flow: FlowKey,
    /// Bytes on the wire (headers included).
    pub size: u32,
    /// Traffic class.
    pub kind: PacketKind,
    /// Timestamp at which the packet entered the simulation (trace time).
    pub created_at: SimTime,
    /// ToS/DSCP-style mark; `0` means unmarked. Core switches stamp a
    /// non-zero identifier here when packet marking is enabled.
    pub mark: u8,
}

impl Packet {
    /// A regular (measured) packet.
    pub fn regular(id: u64, flow: FlowKey, size: u32, created_at: SimTime) -> Self {
        Packet {
            id: PacketId(id),
            flow,
            size,
            kind: PacketKind::Regular,
            created_at,
            mark: 0,
        }
    }

    /// A cross-traffic packet.
    pub fn cross(id: u64, flow: FlowKey, size: u32, created_at: SimTime) -> Self {
        Packet {
            id: PacketId(id),
            flow,
            size,
            kind: PacketKind::Cross,
            created_at,
            mark: 0,
        }
    }

    /// A reference packet emitted by `sender` with sequence `seq`, stamped
    /// with `tx_timestamp`, following `flow` through the network.
    pub fn reference(
        id: u64,
        flow: FlowKey,
        sender: SenderId,
        seq: u32,
        tx_timestamp: SimTime,
    ) -> Self {
        Packet {
            id: PacketId(id),
            flow,
            size: REFERENCE_PACKET_BYTES,
            kind: PacketKind::Reference(ReferenceInfo {
                sender,
                seq,
                tx_timestamp,
            }),
            created_at: tx_timestamp,
            mark: 0,
        }
    }

    /// Is this a reference packet?
    #[inline]
    pub fn is_reference(&self) -> bool {
        self.kind.is_reference()
    }

    /// Is this a regular (measured) packet?
    #[inline]
    pub fn is_regular(&self) -> bool {
        matches!(self.kind, PacketKind::Regular)
    }

    /// Is this cross traffic?
    #[inline]
    pub fn is_cross(&self) -> bool {
        matches!(self.kind, PacketKind::Cross)
    }

    /// The embedded RLI header, if this is a reference packet.
    #[inline]
    pub fn reference_info(&self) -> Option<&ReferenceInfo> {
        match &self.kind {
            PacketKind::Reference(info) => Some(info),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn fk() -> FlowKey {
        FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 9, Ipv4Addr::new(10, 1, 0, 1), 9)
    }

    #[test]
    fn constructors_set_kind() {
        let r = Packet::regular(1, fk(), 1500, SimTime::from_nanos(10));
        assert!(r.is_regular() && !r.is_cross() && !r.is_reference());
        let c = Packet::cross(2, fk(), 40, SimTime::ZERO);
        assert!(c.is_cross());
        let p = Packet::reference(3, fk(), SenderId(4), 17, SimTime::from_micros(2));
        assert!(p.is_reference());
        assert_eq!(p.size, REFERENCE_PACKET_BYTES);
        assert_eq!(p.created_at, SimTime::from_micros(2));
    }

    #[test]
    fn reference_info_accessor() {
        let p = Packet::reference(3, fk(), SenderId(4), 17, SimTime::from_micros(2));
        let info = p.reference_info().unwrap();
        assert_eq!(info.sender, SenderId(4));
        assert_eq!(info.seq, 17);
        assert_eq!(info.tx_timestamp, SimTime::from_micros(2));
        assert!(Packet::regular(1, fk(), 100, SimTime::ZERO)
            .reference_info()
            .is_none());
    }

    #[test]
    fn marks_default_to_zero() {
        let mut p = Packet::regular(1, fk(), 100, SimTime::ZERO);
        assert_eq!(p.mark, 0);
        p.mark = 3;
        assert_eq!(p.mark, 3);
    }

    #[test]
    fn ids_display() {
        assert_eq!(PacketId(9).to_string(), "pkt#9");
        assert_eq!(SenderId(2).to_string(), "S2");
    }
}
