//! Pull-based injection sources for the slab engine.
//!
//! Before this module the engine's only ingest path collected **every**
//! injection into a time-sorted `Vec<(NodeId, Packet)>` — O(run) memory
//! that undoes the slab's O(max in-flight) bound the moment a workload is
//! replayed from a multi-million-packet capture. An [`InjectionSource`] is
//! the streaming replacement: the engine *pulls* injections one at a time,
//! in non-decreasing `created_at` order, and merges them lazily against
//! the scheduler head exactly as it merged the sorted Vec. Pending
//! injections live wherever the source keeps them — for
//! [`SortedVecSource`] that is still a sorted Vec (byte-identical to the
//! old path, kept as its differential oracle); for a streaming source
//! (e.g. `rlir_trace`'s pcap replay) it is a fixed reorder buffer, so
//! engine-side ingest memory is O(buffer), not O(run).
//!
//! ## Contract
//!
//! * [`peek`](InjectionSource::peek) returns the injection time of the
//!   next packet without consuming it; [`next_injection`]
//!   (InjectionSource::next_injection) consumes and returns it. After
//!   `peek` returns `Some(t)`, `next_injection` must return a packet with
//!   `created_at == t`.
//! * Emission order is **non-decreasing** in `created_at`; ties keep the
//!   source's own order (for `SortedVecSource`, the input list order —
//!   exactly the moving oracle's sequence-number tie-breaking). The
//!   engine asserts monotonicity (debug builds assert per pull).
//! * [`span_hint`](InjectionSource::span_hint) /
//!   [`len_hint`](InjectionSource::len_hint) feed
//!   `CalendarQueue::for_spacing` the same geometry evidence the sorted
//!   Vec's ends used to provide. Sources that cannot know them up front
//!   return `None` and the scheduler falls back to its default geometry
//!   (identical to `for_spacing(0, 0)`).

use crate::network::NodeId;
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;

/// A time-ordered stream of `(entry_node, packet)` injections the slab
/// engine pulls from (see the module docs for the ordering contract).
pub trait InjectionSource {
    /// Injection time of the next packet, without consuming it. `None`
    /// means the source is exhausted (a source must never "recover" after
    /// returning `None`).
    fn peek(&mut self) -> Option<SimTime>;

    /// Consume and return the next injection. Named `next_injection` (not
    /// `next`) so sources may also implement [`Iterator`] without a
    /// method-resolution clash.
    fn next_injection(&mut self) -> Option<(NodeId, Packet)>;

    /// Total number of injections, if known up front — calendar-geometry
    /// evidence only, never used for control flow.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// `last.created_at - first.created_at` in nanoseconds, if known up
    /// front — calendar-geometry evidence only.
    fn span_hint(&self) -> Option<u64> {
        None
    }
}

/// The sort-on-the-fly fallback wrapping today's `IntoIterator` ingest:
/// collects the injections, stable-sorts them by `created_at` (same-time
/// injections keep their list order), and serves them back one at a time
/// with exact span/len hints from the sorted ends. Byte-identical to the
/// engine's pre-source collect-then-sort path — and kept as its
/// differential oracle (`tests/trace_replay.rs` pins streamed sources
/// against it).
#[derive(Debug, Clone)]
pub struct SortedVecSource {
    items: Vec<(NodeId, Packet)>,
    next: usize,
}

impl SortedVecSource {
    /// Collect and stable-sort `injections` by injection time.
    pub fn new(injections: impl IntoIterator<Item = (NodeId, Packet)>) -> Self {
        let mut items: Vec<(NodeId, Packet)> = injections.into_iter().collect();
        items.sort_by_key(|(_, p)| p.created_at);
        SortedVecSource { items, next: 0 }
    }

    /// Injections not yet pulled.
    pub fn remaining(&self) -> usize {
        self.items.len() - self.next
    }
}

impl InjectionSource for SortedVecSource {
    fn peek(&mut self) -> Option<SimTime> {
        self.items.get(self.next).map(|(_, p)| p.created_at)
    }

    fn next_injection(&mut self) -> Option<(NodeId, Packet)> {
        let item = self.items.get(self.next).copied();
        if item.is_some() {
            self.next += 1;
        }
        item
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }

    fn span_hint(&self) -> Option<u64> {
        match (self.items.first(), self.items.last()) {
            (Some((_, first)), Some((_, last))) => {
                Some(last.created_at.as_nanos() - first.created_at.as_nanos())
            }
            _ => Some(0),
        }
    }
}

/// Mutable references to sources are sources — lets callers keep the
/// source (and its counters) after the run consumes it.
impl<T: InjectionSource + ?Sized> InjectionSource for &mut T {
    fn peek(&mut self) -> Option<SimTime> {
        (**self).peek()
    }

    fn next_injection(&mut self) -> Option<(NodeId, Packet)> {
        (**self).next_injection()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }

    fn span_hint(&self) -> Option<u64> {
        (**self).span_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn pkt(id: u64, at_ns: u64) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            ),
            1000,
            SimTime::from_nanos(at_ns),
        )
    }

    #[test]
    fn sorted_vec_source_sorts_stably_and_hints_exactly() {
        // Unsorted input with a tie at t=5: sorted output, tie in list order.
        let mut src = SortedVecSource::new(vec![
            (0usize, pkt(1, 9)),
            (1usize, pkt(2, 5)),
            (2usize, pkt(3, 5)),
            (0usize, pkt(4, 2)),
        ]);
        assert_eq!(src.len_hint(), Some(4));
        assert_eq!(src.span_hint(), Some(7)); // 9 - 2
        let mut order = Vec::new();
        while let Some(t) = src.peek() {
            let (node, p) = src.next_injection().unwrap();
            assert_eq!(p.created_at, t);
            order.push((node, p.id.0, t.as_nanos()));
        }
        assert_eq!(
            order,
            vec![(0, 4, 2), (1, 2, 5), (2, 3, 5), (0, 1, 9)],
            "stable sort must keep the t=5 tie in input order"
        );
        assert!(src.next_injection().is_none());
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn empty_source_hints_match_legacy_empty_vec() {
        let mut src = SortedVecSource::new(Vec::new());
        assert_eq!(src.len_hint(), Some(0));
        assert_eq!(src.span_hint(), Some(0));
        assert_eq!(src.peek(), None);
        assert!(src.next_injection().is_none());
    }
}
