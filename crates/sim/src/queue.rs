//! Output-queue model.
//!
//! The paper's simulator "lets packets from the trace experience processing
//! and queueing delays across multiple queues (equivalently, multiple
//! routers/switches) … governed by queue size and packet processing time"
//! (§4.1). [`FifoQueue`] is that queue: a fixed processing delay followed by
//! a drop-tail FIFO drained at the link rate.
//!
//! Because service is FIFO at a constant bit rate, the queue can be
//! simulated *analytically*: it only needs the time the server becomes free
//! (`next_free`). Backlog at any instant is `(next_free − now) · rate`, which
//! gives exact drop-tail semantics in O(1) per packet with no event heap —
//! the property that makes the paper's utilization sweeps cheap to re-run.
//!
//! Arrivals must be offered in non-decreasing time order (FIFO links deliver
//! in order; the multi-stream merge is the caller's job).

use rlir_net::packet::{Packet, PacketKind};
use rlir_net::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static configuration of one queue/port.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Drain (link) rate in bits per second.
    pub rate_bps: u64,
    /// Drop-tail capacity in bytes of queued (not-yet-serialised) data.
    pub capacity_bytes: u64,
    /// Fixed per-packet processing (pipeline) delay before enqueue.
    pub processing_delay: SimDuration,
}

impl QueueConfig {
    /// OC-192-style defaults used throughout the evaluation: 9.953 Gb/s,
    /// 1 µs processing latency, 512 KiB of buffer (≈ 420 µs of drain time).
    pub fn oc192() -> Self {
        QueueConfig {
            rate_bps: 9_953_000_000,
            capacity_bytes: 512 * 1024,
            processing_delay: SimDuration::from_micros(1),
        }
    }

    /// Time to serialise `bytes` at this queue's rate.
    pub fn transmission(&self, bytes: u32) -> SimDuration {
        SimDuration::transmission(bytes, self.rate_bps)
    }
}

/// Per-traffic-class counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Packets offered.
    pub arrivals: u64,
    /// Packets dropped by drop-tail.
    pub drops: u64,
    /// Bytes accepted (excluding drops).
    pub bytes: u64,
}

impl ClassCounters {
    /// Fraction of offered packets that were dropped.
    pub fn loss_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.drops as f64 / self.arrivals as f64
        }
    }
}

/// Index of a [`PacketKind`] into the per-class counter array.
fn class_index(kind: &PacketKind) -> usize {
    match kind {
        PacketKind::Regular => 0,
        PacketKind::Cross => 1,
        PacketKind::Reference(_) => 2,
    }
}

/// Verdict for an offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Accepted; the packet fully departs (last bit on the wire) at this time.
    Departs(SimTime),
    /// Dropped by drop-tail.
    Dropped,
}

/// Packet sizes below this get their transmission time memoized (covers
/// standard MTUs; larger sizes fall back to the exact computation). Zeroed
/// lazily-filled slots keep construction nearly free (calloc'd pages), and
/// 16 KiB per queue stays cheap even for fat-tree fabrics with hundreds of
/// ports.
const TX_CACHE_SIZES: usize = 2048;

/// Analytic drop-tail FIFO with fixed processing delay.
///
/// The `offer` fast path is division-free: per-size transmission times are
/// memoized exactly (the seed recomputed a `u128` `div_ceil` per packet),
/// and backlog conversion runs in 64-bit arithmetic whenever it cannot
/// overflow (always, for sub-second backlogs). Every returned value is
/// bit-identical to the seed implementation — see
/// [`baseline::SeedFifoQueue`], the frozen original kept for differential
/// benchmarks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FifoQueue {
    cfg: QueueConfig,
    next_free: SimTime,
    last_arrival: SimTime,
    busy: SimDuration,
    peak_backlog_bytes: u64,
    classes: [ClassCounters; 3],
    /// Lazily filled exact transmission times, indexed by packet size.
    /// `0` marks an uncomputed slot (no positive size serialises in 0 ns).
    tx_cache: Vec<u64>,
}

impl FifoQueue {
    /// Build from configuration.
    pub fn new(cfg: QueueConfig) -> Self {
        assert!(cfg.rate_bps > 0, "queue rate must be positive");
        FifoQueue {
            cfg,
            next_free: SimTime::ZERO,
            last_arrival: SimTime::ZERO,
            busy: SimDuration::ZERO,
            peak_backlog_bytes: 0,
            classes: [ClassCounters::default(); 3],
            tx_cache: vec![0; TX_CACHE_SIZES],
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Change the per-packet processing delay mid-run — the fault plane's
    /// switch-degradation knob. Safe at any point between offers: the
    /// memoized transmission times depend only on the rate, and the
    /// processing delay is read fresh on every [`Self::offer`].
    pub fn set_processing_delay(&mut self, delay: SimDuration) {
        self.cfg.processing_delay = delay;
    }

    /// Exact transmission time of `size` bytes, memoized per size.
    #[inline]
    fn tx_ns(&mut self, size: u32) -> SimDuration {
        if size == 0 {
            return SimDuration::ZERO;
        }
        if let Some(slot) = self.tx_cache.get_mut(size as usize) {
            if *slot == 0 {
                *slot = self.cfg.transmission(size).as_nanos();
            }
            SimDuration::from_nanos(*slot)
        } else {
            self.cfg.transmission(size)
        }
    }

    /// Bytes of backlog (queued, not yet serialised) at time `at`.
    #[inline]
    pub fn backlog_bytes(&self, at: SimTime) -> u64 {
        let remaining = self.next_free.saturating_since(at).as_nanos();
        // bytes = ns · rate / 8e9. The u64 product cannot overflow while
        // `remaining · rate < 2^64` — true for any sub-second backlog at up
        // to ~1.8 Tb/s — and the constant divisor compiles to a multiply.
        if let Some(product) = remaining.checked_mul(self.cfg.rate_bps) {
            product / 8_000_000_000
        } else {
            (remaining as u128 * self.cfg.rate_bps as u128 / 8_000_000_000) as u64
        }
    }

    /// Queueing + transmission delay a packet of `size` offered at `at` would
    /// experience if accepted (excludes the processing delay).
    pub fn would_wait(&self, at: SimTime, size: u32) -> SimDuration {
        let start = self.next_free.max(at);
        start.saturating_since(at) + self.cfg.transmission(size)
    }

    /// Offer a packet. Returns its departure time or `Dropped`.
    ///
    /// Panics in debug builds if arrivals go backwards in time.
    pub fn offer(&mut self, at: SimTime, packet: &Packet) -> Verdict {
        debug_assert!(
            at >= self.last_arrival,
            "FIFO arrivals must be time-ordered: {at} < {}",
            self.last_arrival
        );
        self.last_arrival = at;
        let class = class_index(&packet.kind);
        self.classes[class].arrivals += 1;

        // Processing pipeline is cut-through: it delays the packet but does
        // not occupy the output buffer.
        let enq_at = at + self.cfg.processing_delay;
        let backlog = self.backlog_bytes(enq_at);
        if backlog + packet.size as u64 > self.cfg.capacity_bytes {
            self.classes[class].drops += 1;
            return Verdict::Dropped;
        }
        self.peak_backlog_bytes = self.peak_backlog_bytes.max(backlog + packet.size as u64);
        let tx = self.tx_ns(packet.size);
        let start = self.next_free.max(enq_at);
        let depart = start + tx;
        self.next_free = depart;
        self.busy += tx;
        self.classes[class].bytes += packet.size as u64;
        Verdict::Departs(depart)
    }

    /// Counters for a traffic class.
    pub fn class(&self, kind: &PacketKind) -> &ClassCounters {
        &self.classes[class_index(kind)]
    }

    /// Counters for regular traffic.
    pub fn regular(&self) -> &ClassCounters {
        &self.classes[0]
    }

    /// Counters for cross traffic.
    pub fn cross(&self) -> &ClassCounters {
        &self.classes[1]
    }

    /// Counters for reference packets.
    pub fn reference(&self) -> &ClassCounters {
        &self.classes[2]
    }

    /// Total packets offered across classes.
    pub fn total_arrivals(&self) -> u64 {
        self.classes.iter().map(|c| c.arrivals).sum()
    }

    /// Total packets dropped across classes.
    pub fn total_drops(&self) -> u64 {
        self.classes.iter().map(|c| c.drops).sum()
    }

    /// Total bytes accepted across classes.
    pub fn total_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.bytes).sum()
    }

    /// Link utilization over `[0, horizon]`: fraction of time the server was
    /// transmitting.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        if horizon == SimDuration::ZERO {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Largest instantaneous backlog observed at any accept, in bytes.
    pub fn peak_backlog(&self) -> u64 {
        self.peak_backlog_bytes
    }

    /// Time at which the server finishes its current backlog.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

/// The seed repository's queue implementation, frozen verbatim.
///
/// [`SeedFifoQueue`] recomputes a `u128` `div_ceil` transmission time and a
/// `u128` backlog conversion on every offer — the per-packet arithmetic the
/// optimized [`FifoQueue`] eliminates. It produces bit-identical verdicts
/// and departure times (asserted by the differential tests below) and
/// exists so the benchmarks can measure the pre-optimization pipeline
/// without checking out an old commit.
pub mod baseline {
    use super::{class_index, ClassCounters, QueueConfig, Verdict};
    use rlir_net::packet::Packet;
    use rlir_net::time::{SimDuration, SimTime};

    /// Frozen copy of the seed's analytic drop-tail FIFO.
    #[derive(Debug, Clone)]
    pub struct SeedFifoQueue {
        cfg: QueueConfig,
        next_free: SimTime,
        last_arrival: SimTime,
        busy: SimDuration,
        classes: [ClassCounters; 3],
    }

    impl SeedFifoQueue {
        /// Build from configuration.
        pub fn new(cfg: QueueConfig) -> Self {
            assert!(cfg.rate_bps > 0, "queue rate must be positive");
            SeedFifoQueue {
                cfg,
                next_free: SimTime::ZERO,
                last_arrival: SimTime::ZERO,
                busy: SimDuration::ZERO,
                classes: [ClassCounters::default(); 3],
            }
        }

        /// Bytes of backlog at time `at` (seed arithmetic: u128 throughout).
        pub fn backlog_bytes(&self, at: SimTime) -> u64 {
            let remaining = self.next_free.saturating_since(at);
            (remaining.as_nanos() as u128 * self.cfg.rate_bps as u128 / 8 / 1_000_000_000) as u64
        }

        /// Offer a packet (seed arithmetic: per-packet u128 div_ceil).
        pub fn offer(&mut self, at: SimTime, packet: &Packet) -> Verdict {
            debug_assert!(
                at >= self.last_arrival,
                "FIFO arrivals must be time-ordered"
            );
            self.last_arrival = at;
            let class = class_index(&packet.kind);
            self.classes[class].arrivals += 1;
            let enq_at = at + self.cfg.processing_delay;
            let backlog = self.backlog_bytes(enq_at);
            if backlog + packet.size as u64 > self.cfg.capacity_bytes {
                self.classes[class].drops += 1;
                return Verdict::Dropped;
            }
            let tx = self.cfg.transmission(packet.size);
            let start = self.next_free.max(enq_at);
            let depart = start + tx;
            self.next_free = depart;
            self.busy += tx;
            self.classes[class].bytes += packet.size as u64;
            Verdict::Departs(depart)
        }

        /// Counters for regular traffic.
        pub fn regular(&self) -> &ClassCounters {
            &self.classes[0]
        }

        /// Counters for reference packets.
        pub fn reference(&self) -> &ClassCounters {
            &self.classes[2]
        }

        /// Link utilization over `[0, horizon]`.
        pub fn utilization(&self, horizon: SimDuration) -> f64 {
            if horizon == SimDuration::ZERO {
                return 0.0;
            }
            (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn cfg() -> QueueConfig {
        QueueConfig {
            rate_bps: 8_000_000_000, // 1 byte/ns: convenient arithmetic
            capacity_bytes: 10_000,
            processing_delay: SimDuration::ZERO,
        }
    }

    fn pkt(id: u64, size: u32) -> Packet {
        Packet::regular(
            id,
            FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2),
            size,
            SimTime::ZERO,
        )
    }

    #[test]
    fn empty_queue_serves_immediately() {
        let mut q = FifoQueue::new(cfg());
        // 1000 B at 1 B/ns = 1000 ns service.
        match q.offer(SimTime::from_nanos(100), &pkt(1, 1000)) {
            Verdict::Departs(t) => assert_eq!(t.as_nanos(), 1100),
            Verdict::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_up() {
        let mut q = FifoQueue::new(cfg());
        let d1 = q.offer(SimTime::ZERO, &pkt(1, 1000));
        let d2 = q.offer(SimTime::ZERO, &pkt(2, 1000));
        assert_eq!(d1, Verdict::Departs(SimTime::from_nanos(1000)));
        assert_eq!(d2, Verdict::Departs(SimTime::from_nanos(2000)));
        // Server keeps FIFO order even when the second arrives mid-service.
        let d3 = q.offer(SimTime::from_nanos(500), &pkt(3, 500));
        assert_eq!(d3, Verdict::Departs(SimTime::from_nanos(2500)));
    }

    #[test]
    fn processing_delay_shifts_service() {
        let mut q = FifoQueue::new(QueueConfig {
            processing_delay: SimDuration::from_nanos(250),
            ..cfg()
        });
        match q.offer(SimTime::ZERO, &pkt(1, 1000)) {
            Verdict::Departs(t) => assert_eq!(t.as_nanos(), 1250),
            Verdict::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn backlog_accounting_is_exact() {
        let mut q = FifoQueue::new(cfg());
        q.offer(SimTime::ZERO, &pkt(1, 4000));
        q.offer(SimTime::ZERO, &pkt(2, 4000));
        // At t=0 the server has 8000 B left to serialise.
        assert_eq!(q.backlog_bytes(SimTime::ZERO), 8000);
        // 3000 ns later, 3000 B have drained.
        assert_eq!(q.backlog_bytes(SimTime::from_nanos(3000)), 5000);
        assert_eq!(q.backlog_bytes(SimTime::from_nanos(8000)), 0);
        assert_eq!(q.peak_backlog(), 8000);
    }

    #[test]
    fn drop_tail_at_capacity() {
        let mut q = FifoQueue::new(cfg()); // capacity 10_000 B
        q.offer(SimTime::ZERO, &pkt(1, 6000));
        q.offer(SimTime::ZERO, &pkt(2, 4000)); // exactly at capacity: accepted
        let v = q.offer(SimTime::ZERO, &pkt(3, 1));
        assert_eq!(v, Verdict::Dropped);
        assert_eq!(q.total_drops(), 1);
        assert_eq!(q.regular().drops, 1);
        // After draining, new packets are accepted again.
        let v = q.offer(SimTime::from_nanos(10_000), &pkt(4, 1000));
        assert!(matches!(v, Verdict::Departs(_)));
    }

    #[test]
    fn per_class_counters_separate() {
        let mut q = FifoQueue::new(cfg());
        let flow = FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        q.offer(SimTime::ZERO, &Packet::regular(1, flow, 100, SimTime::ZERO));
        q.offer(SimTime::ZERO, &Packet::cross(2, flow, 200, SimTime::ZERO));
        q.offer(
            SimTime::ZERO,
            &Packet::reference(3, flow, rlir_net::SenderId(0), 0, SimTime::ZERO),
        );
        assert_eq!(q.regular().arrivals, 1);
        assert_eq!(q.regular().bytes, 100);
        assert_eq!(q.cross().arrivals, 1);
        assert_eq!(q.cross().bytes, 200);
        assert_eq!(q.reference().arrivals, 1);
        assert_eq!(q.total_bytes(), 100 + 200 + 64); // reference packets are 64 B
        assert_eq!(q.total_arrivals(), 3);
    }

    #[test]
    fn loss_rate_computation() {
        let c = ClassCounters {
            arrivals: 1000,
            drops: 3,
            bytes: 0,
        };
        assert!((c.loss_rate() - 0.003).abs() < 1e-12);
        assert_eq!(ClassCounters::default().loss_rate(), 0.0);
    }

    #[test]
    fn utilization_over_horizon() {
        let mut q = FifoQueue::new(cfg());
        q.offer(SimTime::ZERO, &pkt(1, 5000)); // 5000 ns busy
        let u = q.utilization(SimDuration::from_nanos(10_000));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(q.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn would_wait_matches_offer() {
        let mut q = FifoQueue::new(cfg());
        q.offer(SimTime::ZERO, &pkt(1, 2000));
        let at = SimTime::from_nanos(500);
        let predicted = q.would_wait(at, 1000);
        match q.offer(at, &pkt(2, 1000)) {
            Verdict::Departs(t) => assert_eq!(t, at + predicted),
            Verdict::Dropped => panic!("dropped"),
        }
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    #[cfg(debug_assertions)]
    fn rejects_time_travel() {
        let mut q = FifoQueue::new(cfg());
        q.offer(SimTime::from_nanos(100), &pkt(1, 10));
        q.offer(SimTime::from_nanos(50), &pkt(2, 10));
    }

    #[test]
    fn optimized_queue_matches_seed_baseline_exactly() {
        // Differential check: cached/64-bit arithmetic must reproduce the
        // seed's u128 math bit for bit, across rates that stress rounding.
        let flow = FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        for rate in [1_000_000u64, 9_953_000_000, 8_000_000_000, 123_456_789] {
            let qc = QueueConfig {
                rate_bps: rate,
                capacity_bytes: 20_000,
                processing_delay: SimDuration::from_nanos(300),
            };
            let mut fast = FifoQueue::new(qc);
            let mut seed = baseline::SeedFifoQueue::new(qc);
            let mut at = 0u64;
            for i in 0..2000u64 {
                at += (i * 37) % 1500;
                let size = 40 + ((i * 131) % 1461) as u32;
                let p = Packet::regular(i, flow, size, SimTime::from_nanos(at));
                let t = SimTime::from_nanos(at);
                assert_eq!(
                    fast.offer(t, &p),
                    seed.offer(t, &p),
                    "offer {i} rate {rate}"
                );
                assert_eq!(
                    fast.backlog_bytes(t),
                    seed.backlog_bytes(t),
                    "backlog {i} rate {rate}"
                );
            }
            assert_eq!(fast.regular().drops, seed.regular().drops);
            assert_eq!(fast.regular().bytes, seed.regular().bytes);
            assert_eq!(
                fast.utilization(SimDuration::from_millis(10)),
                seed.utilization(SimDuration::from_millis(10))
            );
        }
    }

    #[test]
    fn oc192_preset_sane() {
        let c = QueueConfig::oc192();
        // 1250 B at ~10 Gb/s ≈ 1 µs.
        let tx = c.transmission(1250);
        assert!((990..=1010).contains(&tx.as_nanos()), "{tx}");
    }
}
