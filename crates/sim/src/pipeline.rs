//! The two-switch tandem pipeline of the paper's Fig. 3.
//!
//! ```text
//!  regular (+ reference) ──▶ [Switch 1] ──link──▶ [Switch 2] ──▶ deliveries
//!  cross traffic ────────────────────────────────▶    ↑
//! ```
//!
//! Regular traffic (already interleaved with the RLI sender's reference
//! packets) traverses both switches; cross traffic is released by the
//! injector directly onto the bottleneck (switch 2). Because each switch is
//! an analytic FIFO ([`crate::queue::FifoQueue`]), the whole tandem runs as
//! a single streaming merge — no event heap and, in the
//! [`run_tandem_with`] form, no intermediate buffering at all: each
//! upstream packet is pushed through switch 1 the moment the sorted merge
//! needs it, and deliveries are handed to a callback instead of being
//! collected. That keeps the paper's utilization sweeps (Figs. 4–5) cheap
//! *and* allocation-free per packet.
//!
//! The seed's two-pass implementation (buffer all switch-1 survivors, then
//! merge) is preserved as [`run_tandem_two_pass`]: it is the reference
//! implementation the streaming path is differentially tested against, and
//! the baseline the performance benchmarks compare with.
//!
//! Per-packet ground truth (ingress, switch-1 egress, delivery) is recorded
//! so the measurement plane can be evaluated against true delays.

use crate::queue::{FifoQueue, QueueConfig, Verdict};
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tandem configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TandemConfig {
    /// First (sender-side) switch.
    pub switch1: QueueConfig,
    /// Second (bottleneck, receiver-side) switch.
    pub switch2: QueueConfig,
    /// Propagation delay of the link between them.
    pub link_delay: SimDuration,
    /// Measurement horizon (normally the trace duration); used for
    /// utilization accounting.
    pub horizon: SimDuration,
    /// Also report deliveries for *cross-traffic* packets (switch-2
    /// ingress → egress records with `sw1_egress = None`).
    ///
    /// This flag changes **only** what the delivery callback/`Vec` sees —
    /// cross packets always traverse switch 2, load it identically and are
    /// always counted in the per-class queue counters
    /// ([`FifoQueue::cross`]) whether or not their deliveries are
    /// reported. Loss accounting therefore never depends on this flag:
    /// [`TandemStats::regular_loss_rate`] / `reference_loss_rate` read the
    /// counters, and cross drops are visible via the queue's cross class
    /// either way. Keep it `false` on hot paths (cross deliveries are most
    /// of the volume at high utilization and usually unconsumed).
    pub record_cross: bool,
}

impl TandemConfig {
    /// Paper-style defaults: two OC-192 switches, 5 µs of fibre between them.
    pub fn paper(horizon: SimDuration) -> Self {
        TandemConfig {
            switch1: QueueConfig::oc192(),
            switch2: QueueConfig::oc192(),
            link_delay: SimDuration::from_micros(5),
            horizon,
            record_cross: false,
        }
    }
}

/// Ground-truth record of one delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Delivery {
    /// The packet as it left the network.
    pub packet: Packet,
    /// When it entered the measured segment (switch-1 ingress for regular and
    /// reference packets; switch-2 ingress for cross traffic).
    pub sent_at: SimTime,
    /// Departure from switch 1 (`None` for cross traffic, which bypasses it).
    pub sw1_egress: Option<SimTime>,
    /// Departure from switch 2 — the delivery time at the RLI receiver.
    pub delivered_at: SimTime,
}

impl Delivery {
    /// True one-way delay across the measured segment.
    pub fn true_delay(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.sent_at)
    }
}

/// Final queue state of a tandem run — everything except the per-packet
/// deliveries, which the streaming API hands to a callback instead.
#[derive(Debug, Clone)]
pub struct TandemStats {
    /// Final switch-1 state (counters, utilization).
    pub sw1: FifoQueue,
    /// Final switch-2 state (counters, utilization).
    pub sw2: FifoQueue,
    /// The measurement horizon.
    pub horizon: SimDuration,
}

impl TandemStats {
    /// Bottleneck (switch 2) utilization over the horizon.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.sw2.utilization(self.horizon)
    }

    /// End-to-end loss rate of *regular* packets: fraction of regular packets
    /// offered to switch 1 that never left switch 2.
    pub fn regular_loss_rate(&self) -> f64 {
        let offered = self.sw1.regular().arrivals;
        if offered == 0 {
            return 0.0;
        }
        let delivered = offered - self.sw1.regular().drops - self.sw2.regular().drops;
        1.0 - delivered as f64 / offered as f64
    }

    /// End-to-end loss rate of reference packets.
    pub fn reference_loss_rate(&self) -> f64 {
        let offered = self.sw1.reference().arrivals;
        if offered == 0 {
            return 0.0;
        }
        let delivered = offered - self.sw1.reference().drops - self.sw2.reference().drops;
        1.0 - delivered as f64 / offered as f64
    }
}

/// Output of a buffering tandem run ([`run_tandem`] /
/// [`run_tandem_two_pass`]).
#[derive(Debug, Clone)]
pub struct TandemResult {
    /// Deliveries in delivery-time order.
    pub deliveries: Vec<Delivery>,
    /// Final queue state.
    pub stats: TandemStats,
}

impl TandemResult {
    /// Final switch-1 state (counters, utilization).
    pub fn sw1(&self) -> &FifoQueue {
        &self.stats.sw1
    }

    /// Final switch-2 state (counters, utilization).
    pub fn sw2(&self) -> &FifoQueue {
        &self.stats.sw2
    }

    /// Bottleneck (switch 2) utilization over the horizon.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.stats.bottleneck_utilization()
    }

    /// End-to-end loss rate of regular packets.
    pub fn regular_loss_rate(&self) -> f64 {
        self.stats.regular_loss_rate()
    }

    /// End-to-end loss rate of reference packets.
    pub fn reference_loss_rate(&self) -> f64 {
        self.stats.reference_loss_rate()
    }
}

/// Upstream packets staged through switch 1 per merge round. Large enough
/// to amortise phase switches and keep each pass prefetcher-friendly,
/// small enough that the reused buffers stay cache-resident
/// (~190 KiB total) regardless of trace length.
const STAGE_CHUNK: usize = 1024;

/// Run the tandem, streaming each [`Delivery`] to `on_delivery` in
/// delivery-time order.
///
/// `upstream` is the time-ordered regular (+ reference) stream entering
/// switch 1; `cross` is the time-ordered cross stream entering switch 2
/// directly. Both iterators must be sorted by `created_at`.
///
/// This is the hot path. It runs in bounded *rounds* over three pre-sized
/// buffers that are reused for the whole run (no per-packet allocation, no
/// trace-length buffers): a chunk of upstream packets is pushed through
/// switch 1 in one tight pass, merged with the cross stream into switch 2
/// in a second pass, and the resulting deliveries are handed to the
/// callback in a third. The phases keep each pass's working set small (the
/// property that made the seed's two-pass layout fast) while memory stays
/// O(chunk) instead of O(trace). Deliveries for cross packets are reported
/// only when [`TandemConfig::record_cross`] is set, matching the buffering
/// API.
pub fn run_tandem_with(
    cfg: &TandemConfig,
    upstream: impl Iterator<Item = Packet>,
    cross: impl Iterator<Item = Packet>,
    mut on_delivery: impl FnMut(&Delivery),
) -> TandemStats {
    let mut sw1 = FifoQueue::new(cfg.switch1);
    let mut sw2 = FifoQueue::new(cfg.switch2);
    let mut upstream = upstream.fuse();
    let mut cross = cross.peekable();

    // Reused round buffers (allocated once, pre-sized).
    let mut stage: Vec<(Packet, SimTime, SimTime)> = Vec::with_capacity(STAGE_CHUNK);
    let mut out: Vec<Delivery> = Vec::with_capacity(STAGE_CHUNK);

    loop {
        // Phase 1: stage the next chunk of switch-1 survivors. Switch-1
        // arrival order depends only on the upstream sequence, so this
        // pass is exact regardless of chunking.
        stage.clear();
        while stage.len() < STAGE_CHUNK {
            let Some(p) = upstream.next() else { break };
            match sw1.offer(p.created_at, &p) {
                Verdict::Departs(egress) => {
                    stage.push((p, egress, egress + cfg.link_delay));
                }
                Verdict::Dropped => {}
            }
        }
        let upstream_done = stage.len() < STAGE_CHUNK;

        // Phase 2: merge the staged run with the cross stream into switch
        // 2. Cross packets beyond the last staged arrival stay queued for
        // the next round — every future switch-1 arrival is no earlier
        // than the current chunk's last, so holding them is exact.
        out.clear();
        for &(p, egress1, at2) in &stage {
            while let Some(c) = cross.peek() {
                // Deterministic tie-break on (time, id).
                if (c.created_at, c.id) < (at2, p.id) {
                    let c = cross.next().expect("peeked");
                    let at = c.created_at;
                    if let Verdict::Departs(dep) = sw2.offer(at, &c) {
                        if cfg.record_cross {
                            out.push(Delivery {
                                packet: c,
                                sent_at: at,
                                sw1_egress: None,
                                delivered_at: dep,
                            });
                        }
                    }
                } else {
                    break;
                }
            }
            if let Verdict::Departs(dep) = sw2.offer(at2, &p) {
                out.push(Delivery {
                    packet: p,
                    sent_at: p.created_at,
                    sw1_egress: Some(egress1),
                    delivered_at: dep,
                });
            }
        }
        if upstream_done {
            // Final round: drain the remaining cross stream.
            for c in cross.by_ref() {
                let at = c.created_at;
                if let Verdict::Departs(dep) = sw2.offer(at, &c) {
                    if cfg.record_cross {
                        out.push(Delivery {
                            packet: c,
                            sent_at: at,
                            sw1_egress: None,
                            delivered_at: dep,
                        });
                    }
                }
            }
        }

        // Phase 3: hand the round's deliveries downstream, in order.
        for d in &out {
            on_delivery(d);
        }
        if upstream_done {
            break;
        }
    }

    TandemStats {
        sw1,
        sw2,
        horizon: cfg.horizon,
    }
}

/// Run the tandem, collecting deliveries into a `Vec` (convenience wrapper
/// over [`run_tandem_with`] for tests and analyses that want the full
/// ground-truth log in memory).
pub fn run_tandem(
    cfg: &TandemConfig,
    upstream: impl Iterator<Item = Packet>,
    cross: impl Iterator<Item = Packet>,
) -> TandemResult {
    let (lo, hi) = upstream.size_hint();
    let mut deliveries = Vec::with_capacity(hi.unwrap_or(lo));
    let stats = run_tandem_with(cfg, upstream, cross, |d| deliveries.push(*d));
    // Deliveries were pushed in switch-2 *arrival* order, which equals
    // departure order for a FIFO — already sorted by delivered_at.
    debug_assert!(deliveries
        .windows(2)
        .all(|w| w[0].delivered_at <= w[1].delivered_at));
    TandemResult { deliveries, stats }
}

/// The seed's two-pass tandem: buffer every switch-1 survivor, then merge
/// the buffer with the cross stream into switch 2.
///
/// Kept verbatim as the differential-testing oracle for
/// [`run_tandem_with`] (see the streaming-equivalence property tests) and
/// as the pre-optimization baseline the benchmarks measure against. Do not
/// use on hot paths: it allocates a whole-trace buffer.
pub fn run_tandem_two_pass(
    cfg: &TandemConfig,
    upstream: impl Iterator<Item = Packet>,
    cross: impl Iterator<Item = Packet>,
) -> TandemResult {
    let mut sw1 = FifoQueue::new(cfg.switch1);
    let mut sw2 = FifoQueue::new(cfg.switch2);

    // Pass 1: upstream through switch 1. Survivors arrive at switch 2 after
    // the link delay; FIFO order is preserved so the output stays sorted.
    let mut from_sw1: Vec<(Packet, SimTime, SimTime)> = Vec::new();
    for p in upstream {
        match sw1.offer(p.created_at, &p) {
            Verdict::Departs(egress) => {
                from_sw1.push((p, egress, egress + cfg.link_delay));
            }
            Verdict::Dropped => {}
        }
    }

    // Pass 2: merge switch-1 output with cross arrivals (both sorted) into
    // switch 2, recording deliveries.
    let mut deliveries = Vec::with_capacity(from_sw1.len());
    let mut cross = cross.peekable();
    let mut sw1_out = from_sw1.into_iter().peekable();
    loop {
        let take_cross = match (sw1_out.peek(), cross.peek()) {
            (None, None) => break,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some((u, _, ua)), Some(c)) => {
                // Deterministic tie-break on (time, id).
                (c.created_at, c.id) < (*ua, u.id)
            }
        };
        if take_cross {
            let p = cross.next().expect("peeked");
            let at = p.created_at;
            if let Verdict::Departs(out) = sw2.offer(at, &p) {
                if cfg.record_cross {
                    deliveries.push(Delivery {
                        packet: p,
                        sent_at: at,
                        sw1_egress: None,
                        delivered_at: out,
                    });
                }
            }
        } else {
            let (p, egress1, at2) = sw1_out.next().expect("peeked");
            if let Verdict::Departs(out) = sw2.offer(at2, &p) {
                deliveries.push(Delivery {
                    packet: p,
                    sent_at: p.created_at,
                    sw1_egress: Some(egress1),
                    delivered_at: out,
                });
            }
        }
    }

    TandemResult {
        deliveries,
        stats: TandemStats {
            sw1,
            sw2,
            horizon: cfg.horizon,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn cfg() -> TandemConfig {
        TandemConfig {
            switch1: QueueConfig {
                rate_bps: 8_000_000_000, // 1 B/ns
                capacity_bytes: 1_000_000,
                processing_delay: SimDuration::ZERO,
            },
            switch2: QueueConfig {
                rate_bps: 8_000_000_000,
                capacity_bytes: 1_000_000,
                processing_delay: SimDuration::ZERO,
            },
            link_delay: SimDuration::from_nanos(100),
            horizon: SimDuration::from_millis(1),
            record_cross: false,
        }
    }

    fn reg(id: u64, at_ns: u64, size: u32) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(Ipv4Addr::new(10, 1, 0, 1), 1, Ipv4Addr::new(10, 2, 0, 1), 2),
            size,
            SimTime::from_nanos(at_ns),
        )
    }

    fn crs(id: u64, at_ns: u64, size: u32) -> Packet {
        Packet::cross(
            id,
            FlowKey::udp(
                Ipv4Addr::new(172, 16, 0, 1),
                3,
                Ipv4Addr::new(172, 20, 0, 1),
                4,
            ),
            size,
            SimTime::from_nanos(at_ns),
        )
    }

    #[test]
    fn single_packet_end_to_end_delay() {
        let r = run_tandem(
            &cfg(),
            vec![reg(1, 0, 1000)].into_iter(),
            std::iter::empty(),
        );
        assert_eq!(r.deliveries.len(), 1);
        let d = r.deliveries[0];
        // sw1: 1000 ns tx; link: 100 ns; sw2: 1000 ns tx → 2100 ns.
        assert_eq!(d.delivered_at.as_nanos(), 2100);
        assert_eq!(d.true_delay().as_nanos(), 2100);
        assert_eq!(d.sw1_egress, Some(SimTime::from_nanos(1000)));
    }

    #[test]
    fn cross_traffic_delays_regular() {
        // A big cross packet hogs switch 2 just before the regular packet
        // arrives there.
        let r = run_tandem(
            &cfg(),
            vec![reg(1, 0, 1000)].into_iter(),
            vec![crs(2, 1000, 9000)].into_iter(),
        );
        let d = r.deliveries[0];
        // Regular reaches sw2 at 1100; cross started service at 1000 and
        // holds the server until 10_000; regular then serialises by 11_000.
        assert_eq!(d.delivered_at.as_nanos(), 11_000);
    }

    #[test]
    fn cross_bypasses_switch1() {
        let mut c = cfg();
        c.record_cross = true;
        let r = run_tandem(&c, std::iter::empty(), vec![crs(1, 50, 500)].into_iter());
        assert_eq!(r.deliveries.len(), 1);
        let d = r.deliveries[0];
        assert_eq!(d.sw1_egress, None);
        assert_eq!(d.delivered_at.as_nanos(), 550);
        assert_eq!(r.sw1().total_arrivals(), 0);
    }

    #[test]
    fn deliveries_sorted_by_delivery_time() {
        let upstream: Vec<Packet> = (0..200).map(|i| reg(i, i * 50, 400)).collect();
        let cross: Vec<Packet> = (0..200).map(|i| crs(1000 + i, i * 73, 600)).collect();
        let mut c = cfg();
        c.record_cross = true;
        let r = run_tandem(&c, upstream.into_iter(), cross.into_iter());
        assert_eq!(r.deliveries.len(), 400);
        for w in r.deliveries.windows(2) {
            assert!(w[0].delivered_at <= w[1].delivered_at);
        }
    }

    #[test]
    fn loss_accounting_end_to_end() {
        // Tiny switch-2 buffer forces drops there.
        let mut c = cfg();
        c.switch2.capacity_bytes = 1500;
        // Regular 1 leaves sw1 at 1500 ns and reaches sw2 at 1600 ns;
        // regular 2 follows a full service time later (reaches sw2 at 3100).
        let upstream = vec![reg(1, 0, 1500), reg(2, 10, 1500)];
        // The cross packet starts sw2 service at 1550 ns and holds 1450 B of
        // backlog when regular 1 arrives → regular 1 is tail-dropped; by the
        // time regular 2 arrives the buffer has drained.
        let cross = vec![crs(3, 1550, 1500)];
        let r = run_tandem(&c, upstream.into_iter(), cross.into_iter());
        assert!(r.regular_loss_rate() > 0.0, "expected regular loss");
        let lost = r.sw2().regular().drops;
        assert_eq!(lost, 1, "exactly one regular drop at sw2");
        assert_eq!(r.deliveries.len(), 1); // one regular made it (cross unrecorded)
    }

    #[test]
    fn utilization_reflects_cross_injection() {
        // 1 ms horizon; cross only: 500 packets × 1000 B × 1 ns/B = 0.5 ms busy.
        let cross: Vec<Packet> = (0..500).map(|i| crs(i, i * 2000, 1000)).collect();
        let r = run_tandem(&cfg(), std::iter::empty(), cross.into_iter());
        let u = r.bottleneck_utilization();
        assert!((u - 0.5).abs() < 0.01, "utilization {u}");
    }

    #[test]
    fn reference_loss_rate_separate() {
        let mut c = cfg();
        c.switch1.capacity_bytes = 1000; // drop refs at sw1 when full
        let flow = FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        let upstream = vec![
            reg(1, 0, 1000),
            Packet::reference(2, flow, rlir_net::SenderId(0), 0, SimTime::from_nanos(1)),
        ];
        let r = run_tandem(&c, upstream.into_iter(), std::iter::empty());
        assert_eq!(r.reference_loss_rate(), 1.0);
        assert_eq!(r.regular_loss_rate(), 0.0);
    }

    /// `record_cross` gates only delivery *reporting* — queue counters and
    /// loss accounting are identical either way (the documented contract).
    #[test]
    fn record_cross_gates_reporting_not_accounting() {
        let mut with = cfg();
        with.record_cross = true;
        with.switch2.capacity_bytes = 2_000; // forces cross + regular drops
        let mut without = with;
        without.record_cross = false;

        let upstream: Vec<Packet> = (0..80).map(|i| reg(1000 + i, i * 300, 800)).collect();
        let cross: Vec<Packet> = (0..80).map(|i| crs(i, i * 290, 900)).collect();

        let a = run_tandem(&with, upstream.iter().copied(), cross.iter().copied());
        let b = run_tandem(&without, upstream.iter().copied(), cross.iter().copied());

        // Reporting differs: only the recording run emits cross deliveries…
        let a_cross = a.deliveries.iter().filter(|d| d.packet.is_cross()).count();
        let b_cross = b.deliveries.iter().filter(|d| d.packet.is_cross()).count();
        assert!(a_cross > 0, "expected some cross deliveries");
        assert_eq!(b_cross, 0, "record_cross=false must not report cross");
        for d in a.deliveries.iter().filter(|d| d.packet.is_cross()) {
            assert_eq!(d.sw1_egress, None, "cross bypasses switch 1");
        }
        // …and the regular/reference delivery sequence is unchanged.
        let a_reg: Vec<_> = a
            .deliveries
            .iter()
            .filter(|d| !d.packet.is_cross())
            .copied()
            .collect();
        let b_reg: Vec<_> = b
            .deliveries
            .iter()
            .filter(|d| !d.packet.is_cross())
            .copied()
            .collect();
        assert_eq!(a_reg, b_reg);
        assert!(!a_reg.is_empty());

        // Accounting is identical: per-class arrivals/drops/bytes and the
        // derived loss rates do not depend on the flag.
        let (ca, cb) = (a.sw2().cross(), b.sw2().cross());
        assert!(ca.drops > 0, "cross drops expected at this capacity");
        assert_eq!(
            (ca.arrivals, ca.drops, ca.bytes),
            (cb.arrivals, cb.drops, cb.bytes)
        );
        assert_eq!(a.regular_loss_rate(), b.regular_loss_rate());
        assert_eq!(a.bottleneck_utilization(), b.bottleneck_utilization());
    }

    #[test]
    fn empty_inputs() {
        let r = run_tandem(&cfg(), std::iter::empty(), std::iter::empty());
        assert!(r.deliveries.is_empty());
        assert_eq!(r.regular_loss_rate(), 0.0);
        assert_eq!(r.bottleneck_utilization(), 0.0);
    }

    /// Dense random-ish mixes must produce byte-identical results from the
    /// streaming and two-pass implementations (the exhaustive randomized
    /// check lives in the workspace-level property suite).
    #[test]
    fn streaming_matches_two_pass_on_contended_mix() {
        let mut c = cfg();
        c.record_cross = true;
        c.switch2.capacity_bytes = 4000; // force drops in the merge
        let upstream: Vec<Packet> = (0..500)
            .map(|i| reg(i, i * 37 % 9000, 200 + (i as u32 * 131) % 1200))
            .collect();
        let mut upstream = upstream;
        upstream.sort_by_key(|p| (p.created_at, p.id));
        let cross: Vec<Packet> = (0..500)
            .map(|i| crs(10_000 + i, i * 53 % 9000, 300 + (i as u32 * 173) % 900))
            .collect();
        let mut cross = cross;
        cross.sort_by_key(|p| (p.created_at, p.id));

        let streaming = run_tandem(&c, upstream.iter().copied(), cross.iter().copied());
        let two_pass = run_tandem_two_pass(&c, upstream.into_iter(), cross.into_iter());
        assert_eq!(streaming.deliveries, two_pass.deliveries);
        assert_eq!(
            streaming.stats.sw1.total_arrivals(),
            two_pass.stats.sw1.total_arrivals()
        );
        assert_eq!(
            streaming.stats.sw2.total_drops(),
            two_pass.stats.sw2.total_drops()
        );
        assert_eq!(
            streaming.bottleneck_utilization(),
            two_pass.bottleneck_utilization()
        );
    }
}
