//! Event schedulers for the network engine.
//!
//! The engine needs one operation pair — `push(at, item)` / `pop() → min by
//! (at, key, seq)` — with FIFO tie-breaking among equal timestamps (`seq` is
//! the push order) refined by an optional caller-supplied **tie key** `K`.
//! The default `K = ()` is zero-cost and reduces the order to the historical
//! `(at, seq)`; the pod-sharded engine (`crate::shard`) instead keys entries
//! by `(packet ordinal, hop progress)`, a *partition-independent* total
//! order, so N shards draining their own queues reproduce exactly the
//! one-shard drain. Two implementations share the contract:
//!
//! * [`HeapSchedule`] — the original `BinaryHeap<Reverse<…>>`, kept as the
//!   differential oracle and benchmark baseline.
//! * [`CalendarQueue`] — a bucketed calendar queue keyed on [`SimTime`]:
//!   near-future events land in fixed-width time buckets (O(1) push, cheap
//!   in-bucket ordering), far-future events fall back to a heap that is
//!   drained into the wheel one rotation at a time. Event-driven causality
//!   (a handler never schedules into the past) keeps the cursor monotonic.
//!
//! `tests` + the workspace property suite pin the two implementations to
//! identical `(time, key, seq)` drain orders, including same-timestamp ties.

use rlir_net::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry; ordered by `(at, key, seq)` so equal timestamps
/// drain in key order, and — among equal keys, which with the default
/// `K = ()` means *all* equal timestamps — in push (FIFO) order.
struct Entry<T, K = ()> {
    at: u64,
    key: K,
    seq: u64,
    item: T,
}

impl<T, K: Ord> PartialEq for Entry<T, K> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, &self.key, self.seq) == (other.at, &other.key, other.seq)
    }
}
impl<T, K: Ord> Eq for Entry<T, K> {}
impl<T, K: Ord> PartialOrd for Entry<T, K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, K: Ord> Ord for Entry<T, K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, &self.key, self.seq).cmp(&(other.at, &other.key, other.seq))
    }
}

/// The scheduler contract of the event engine, generic over a tie key `K`
/// (default `()`: plain `(at, seq)` FIFO order, the single-engine
/// behaviour).
pub trait EventSchedule<T, K: Copy + Ord + Default = ()> {
    /// Schedule `item` at `at` with the default key. Ties drain in push
    /// order (among equal keys).
    fn push(&mut self, at: SimTime, item: T) {
        self.push_keyed(at, K::default(), item);
    }
    /// Schedule `item` at `at` under tie key `key`.
    fn push_keyed(&mut self, at: SimTime, key: K, item: T);
    /// Remove and return the earliest entry (smallest `(at, key, seq)`).
    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(at, _, item)| (at, item))
    }
    /// Remove and return the earliest entry together with its key.
    fn pop_keyed(&mut self) -> Option<(SimTime, K, T)>;
    /// Timestamp of the earliest entry without removing it (`&mut` because
    /// the calendar queue may need to advance its cursor to find it). The
    /// slab engine merges the time-sorted injection stream against this,
    /// so pending injections never occupy scheduler or slab space.
    fn peek_at(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(at, _)| at)
    }
    /// Timestamp and key of the earliest entry without removing it — the
    /// sharded engine's injection merge compares full keys, not just times.
    fn peek_key(&mut self) -> Option<(SimTime, K)>;
    /// Number of scheduled entries.
    fn len(&self) -> usize;
    /// Whether the schedule is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original binary-heap scheduler (differential oracle / benchmark
/// baseline).
pub struct HeapSchedule<T, K = ()> {
    heap: BinaryHeap<Reverse<Entry<T, K>>>,
    seq: u64,
}

impl<T, K: Ord> HeapSchedule<T, K> {
    /// An empty schedule.
    pub fn new() -> Self {
        HeapSchedule {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T, K: Ord> Default for HeapSchedule<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, K: Copy + Ord + Default> EventSchedule<T, K> for HeapSchedule<T, K> {
    fn push_keyed(&mut self, at: SimTime, key: K, item: T) {
        self.heap.push(Reverse(Entry {
            at: at.as_nanos(),
            key,
            seq: self.seq,
            item,
        }));
        self.seq += 1;
    }

    fn pop_keyed(&mut self) -> Option<(SimTime, K, T)> {
        self.heap
            .pop()
            .map(|Reverse(e)| (SimTime::from_nanos(e.at), e.key, e.item))
    }

    fn peek_key(&mut self) -> Option<(SimTime, K)> {
        self.heap
            .peek()
            .map(|Reverse(e)| (SimTime::from_nanos(e.at), e.key))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Default bucket width: 2¹⁰ ns ≈ 1 µs — on the same order as one MTU
/// serialisation at 10 Gb/s, so a bucket holds a handful of events under
/// load.
const DEFAULT_BUCKET_NS_LOG2: u32 = 10;
/// Default wheel size: 2¹⁰ buckets ⇒ a ~1 ms rotation, comfortably wider
/// than any per-hop delay (queueing caps at ~420 µs for the default 512 KiB
/// buffer) so in-flight events essentially never hit the overflow heap.
const DEFAULT_BUCKETS_LOG2: u32 = 10;

/// Bucketed calendar queue keyed on [`SimTime`], with a heap fallback for
/// events beyond the current rotation.
///
/// The wheel covers `[rotation_start, rotation_start + nbuckets·width)`.
/// Pops drain bucket by bucket; the bucket under the cursor is held in a
/// small heap (`active`) so same-bucket pushes interleave correctly. When a
/// rotation is exhausted the wheel advances — jumping straight to the
/// overflow minimum's rotation when the intervening ones are empty — and
/// overflow entries that now fall inside the new rotation are distributed
/// into their buckets.
pub struct CalendarQueue<T, K = ()> {
    /// Per-bucket unordered entry lists for the current rotation.
    wheel: Vec<Vec<Entry<T, K>>>,
    /// The bucket currently being drained, ordered.
    active: BinaryHeap<Reverse<Entry<T, K>>>,
    /// Exclusive time bound of the active bucket.
    active_end: u64,
    /// Next wheel index the cursor will open.
    cursor: usize,
    /// Start time of the current rotation (multiple of the bucket width).
    rotation_start: u64,
    /// Far-future entries (at ≥ rotation end when pushed).
    overflow: BinaryHeap<Reverse<Entry<T, K>>>,
    bucket_ns_log2: u32,
    len: usize,
    seq: u64,
}

impl<T, K: Ord> CalendarQueue<T, K> {
    /// An empty queue with the default geometry (1 µs × 1024 buckets).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_NS_LOG2, DEFAULT_BUCKETS_LOG2)
    }

    /// An empty queue sized for a workload of `events` initial events
    /// spread over `span_ns` of simulated time.
    ///
    /// The bucket width targets ~4 mean inter-event gaps, so a bucket holds
    /// a handful of entries under load (initial events undercount total
    /// scheduler traffic by the mean path length; the 4× headroom absorbs
    /// that). Clamped to [2⁶, 2¹⁴] ns — below 64 ns rotations get too short
    /// and everything overflows, above 16 µs the in-bucket heaps dominate —
    /// and falls back to the default geometry when the workload gives no
    /// spacing evidence (fewer than 2 events, or zero span).
    pub fn for_spacing(span_ns: u64, events: usize) -> Self {
        if events < 2 || span_ns == 0 {
            return Self::new();
        }
        let spacing = (span_ns / events as u64).max(1);
        let target = spacing.saturating_mul(4);
        // ceil(log2(target)): width of target minus 1 for exact powers.
        let log2 = u64::BITS - target.leading_zeros() - u32::from(target.is_power_of_two());
        Self::with_geometry(log2.clamp(6, 14), DEFAULT_BUCKETS_LOG2)
    }

    /// `log2` of the bucket width in nanoseconds.
    pub fn bucket_ns_log2(&self) -> u32 {
        self.bucket_ns_log2
    }

    /// An empty queue with `2^bucket_ns_log2` ns buckets and
    /// `2^buckets_log2` of them per rotation.
    pub fn with_geometry(bucket_ns_log2: u32, buckets_log2: u32) -> Self {
        assert!(
            bucket_ns_log2 < 40 && buckets_log2 <= 20,
            "geometry too big"
        );
        CalendarQueue {
            wheel: (0..1usize << buckets_log2).map(|_| Vec::new()).collect(),
            active: BinaryHeap::new(),
            active_end: 1u64 << bucket_ns_log2,
            cursor: 0,
            rotation_start: 0,
            overflow: BinaryHeap::new(),
            bucket_ns_log2,
            len: 0,
            seq: 0,
        }
    }

    #[inline]
    fn rotation_span(&self) -> u64 {
        (self.wheel.len() as u64) << self.bucket_ns_log2
    }

    #[inline]
    fn rotation_end(&self) -> u64 {
        self.rotation_start + self.rotation_span()
    }

    /// Open the next non-empty bucket (or rotate) until `active` is
    /// populated or the queue is exhausted.
    fn refill_active(&mut self) {
        while self.active.is_empty() {
            if self.cursor < self.wheel.len() {
                // Skip empty buckets without touching the heap.
                let bucket = &mut self.wheel[self.cursor];
                self.cursor += 1;
                self.active_end =
                    self.rotation_start + ((self.cursor as u64) << self.bucket_ns_log2);
                if !bucket.is_empty() {
                    self.active = bucket.drain(..).map(Reverse).collect();
                }
                continue;
            }
            // Rotation exhausted: everything left lives in the overflow.
            let Some(Reverse(min)) = self.overflow.peek() else {
                return; // queue empty
            };
            // Jump directly to the rotation containing the overflow minimum
            // (skipping empty rotations keeps sparse schedules O(log n)).
            let span = self.rotation_span();
            self.rotation_start = (min.at / span) * span;
            self.cursor = 0;
            let end = self.rotation_end();
            while let Some(Reverse(e)) = self.overflow.peek() {
                if e.at >= end {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked");
                let idx = ((e.at - self.rotation_start) >> self.bucket_ns_log2) as usize;
                self.wheel[idx].push(e);
            }
        }
    }
}

impl<T, K: Ord> Default for CalendarQueue<T, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, K: Copy + Ord + Default> EventSchedule<T, K> for CalendarQueue<T, K> {
    fn push_keyed(&mut self, at: SimTime, key: K, item: T) {
        let t = at.as_nanos();
        let e = Entry {
            at: t,
            key,
            seq: self.seq,
            item,
        };
        self.seq += 1;
        self.len += 1;
        if t < self.active_end {
            // In (or before) the bucket being drained. Causality makes
            // "before" impossible mid-run, but the heap handles it anyway —
            // pushes that precede the first pop land here too.
            self.active.push(Reverse(e));
        } else if t < self.rotation_end() {
            let idx = ((t - self.rotation_start) >> self.bucket_ns_log2) as usize;
            self.wheel[idx].push(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    fn pop_keyed(&mut self) -> Option<(SimTime, K, T)> {
        self.refill_active();
        let Reverse(e) = self.active.pop()?;
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.key, e.item))
    }

    fn peek_key(&mut self) -> Option<(SimTime, K)> {
        self.refill_active();
        self.active
            .peek()
            .map(|Reverse(e)| (SimTime::from_nanos(e.at), e.key))
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain a schedule fully, returning `(time, payload)` pairs.
    fn drain(s: &mut impl EventSchedule<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, v)) = s.pop() {
            out.push((at.as_nanos(), v));
        }
        out
    }

    type Drained = Vec<(u64, u32)>;

    fn both(pushes: &[(u64, u32)]) -> (Drained, Drained) {
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarQueue::new();
        for &(t, v) in pushes {
            heap.push(SimTime::from_nanos(t), v);
            cal.push(SimTime::from_nanos(t), v);
        }
        (drain(&mut heap), drain(&mut cal))
    }

    #[test]
    fn drains_in_time_then_push_order() {
        let (h, c) = both(&[(50, 0), (10, 1), (50, 2), (10, 3), (0, 4)]);
        assert_eq!(h, vec![(0, 4), (10, 1), (10, 3), (50, 0), (50, 2)]);
        assert_eq!(h, c);
    }

    #[test]
    fn keyed_ties_drain_in_key_order_on_both_impls() {
        // Same timestamp, keys pushed out of order: the key beats push
        // order; equal keys keep FIFO; keys survive the overflow path.
        let pushes: &[(u64, (u64, u32), u32)] = &[
            (10, (7, 0), 0),
            (10, (2, 1), 1),
            (10, (2, 0), 2),
            (5, (9, 9), 3),
            (10, (7, 0), 4),
            (2_500_000, (1, 0), 5),
            (10, (0, 3), 6),
        ];
        let mut heap: HeapSchedule<u32, (u64, u32)> = HeapSchedule::new();
        let mut cal: CalendarQueue<u32, (u64, u32)> = CalendarQueue::new();
        let mut h = Vec::new();
        let mut c = Vec::new();
        for &(t, k, v) in pushes {
            heap.push_keyed(SimTime::from_nanos(t), k, v);
            cal.push_keyed(SimTime::from_nanos(t), k, v);
        }
        while let Some((at, k, v)) = heap.pop_keyed() {
            h.push((at.as_nanos(), k, v));
        }
        while let Some((at, k, v)) = cal.pop_keyed() {
            c.push((at.as_nanos(), k, v));
        }
        assert_eq!(h, c);
        let order: Vec<u32> = h.iter().map(|&(.., v)| v).collect();
        assert_eq!(order, vec![3, 6, 2, 1, 0, 4, 5]);
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        // Default rotation is ~1 ms; push events many rotations out.
        let pushes: Vec<(u64, u32)> = (0..100)
            .map(|i| ((i * 7_777_777) % 1_000_000_000, i as u32))
            .collect();
        let (h, c) = both(&pushes);
        assert_eq!(h, c);
        assert_eq!(h.len(), 100);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let mut heap: HeapSchedule<u32> = HeapSchedule::new();
        // Seed both, then pop one / push two in lockstep (event-driven shape:
        // new events never precede the one just popped).
        for t in [5u64, 3, 9] {
            cal.push(SimTime::from_nanos(t), 0);
            heap.push(SimTime::from_nanos(t), 0);
        }
        let mut got = Vec::new();
        let mut next = 1u32;
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            let Some((t, v)) = a else { break };
            got.push((t.as_nanos(), v));
            if next <= 40 {
                // Two children per pop: one nearby, one far future.
                for dt in [17u64, 2_500_000] {
                    cal.push(SimTime::from_nanos(t.as_nanos() + dt), next);
                    heap.push(SimTime::from_nanos(t.as_nanos() + dt), next);
                    next += 1;
                }
            }
        }
        assert_eq!(got.len(), 43); // 3 seeds + 20 spawning pops × 2 children
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let mut heap: HeapSchedule<u32> = HeapSchedule::new();
        assert_eq!(cal.peek_at(), None);
        assert_eq!(heap.peek_at(), None);
        // Spread over near buckets and the overflow path.
        for &(t, v) in &[(900u64, 1u32), (3, 2), (5_000_000, 3), (3, 4)] {
            cal.push(SimTime::from_nanos(t), v);
            heap.push(SimTime::from_nanos(t), v);
        }
        loop {
            let (pc, ph) = (cal.peek_at(), heap.peek_at());
            assert_eq!(pc, ph);
            let (c, h) = (cal.pop(), heap.pop());
            assert_eq!(c, h);
            let Some((at, _)) = c else { break };
            assert_eq!(pc, Some(at), "peek must name the popped time");
        }
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        assert!(cal.is_empty());
        cal.push(SimTime::from_nanos(1), 1u32);
        cal.push(SimTime::from_nanos(2_000_000_000), 2);
        assert_eq!(cal.len(), 2);
        cal.pop();
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }

    #[test]
    fn adaptive_geometry_tracks_spacing() {
        // Dense workload → fine buckets; sparse → coarse; both clamped.
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(1_000, 1_000).bucket_ns_log2(),
            6
        );
        // 1 ms over 1000 events → 1 µs spacing → 4 µs target → 2^12.
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(1_000_000, 1_000).bucket_ns_log2(),
            12
        );
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(u64::MAX / 2, 2).bucket_ns_log2(),
            14
        );
        // Exact power-of-two target stays exact: 256 ns spacing → 1024 ns.
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(256_000, 1_000).bucket_ns_log2(),
            10
        );
        // No spacing evidence → default geometry.
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(0, 50).bucket_ns_log2(),
            DEFAULT_BUCKET_NS_LOG2
        );
        assert_eq!(
            CalendarQueue::<u32>::for_spacing(1_000, 1).bucket_ns_log2(),
            DEFAULT_BUCKET_NS_LOG2
        );
    }

    #[test]
    fn adaptive_geometries_drain_like_the_heap() {
        // The same push sequence through every adaptively-picked geometry
        // must drain byte-identically to the heap oracle.
        let pushes: Vec<(u64, u32)> = (0..300)
            .map(|i| ((i * 104_729) % 2_000_000, i as u32))
            .collect();
        for (span, events) in [(2_000_000u64, 300usize), (1_000, 300), (u64::MAX / 2, 2)] {
            let mut cal = CalendarQueue::for_spacing(span, events);
            let mut heap = HeapSchedule::new();
            for &(t, v) in &pushes {
                cal.push(SimTime::from_nanos(t), v);
                heap.push(SimTime::from_nanos(t), v);
            }
            assert_eq!(drain(&mut cal), drain(&mut heap), "span {span}");
        }
    }

    #[test]
    fn tiny_geometry_still_correct() {
        // 2-ns buckets, 4 per rotation: everything exercises the overflow
        // and rotation-jump paths.
        let mut cal = CalendarQueue::with_geometry(1, 2);
        let mut heap = HeapSchedule::new();
        let pushes: Vec<u64> = (0..200).map(|i| (i * 37) % 500).collect();
        for (i, &t) in pushes.iter().enumerate() {
            cal.push(SimTime::from_nanos(t), i as u32);
            heap.push(SimTime::from_nanos(t), i as u32);
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }
}
