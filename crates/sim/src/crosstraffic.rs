//! Cross-traffic injection.
//!
//! The Fig. 3 "cross traffic injector" releases a controlled subset of the
//! cross-traffic trace onto the bottleneck queue. Two selection models from
//! §4.1:
//!
//! * **Uniform** ("random"): each packet is kept i.i.d. with probability `p`
//!   — "randomly selects cross traffic with a given probability, which can
//!   demonstrate a persistent congestion event as we increase injection
//!   rate".
//! * **Bursty**: an on/off gate with configurable burst (injection) duration
//!   — "simulates a situation where cross traffic arrives in a bursty
//!   fashion by controlling cross traffic injection duration"; packets are
//!   kept with probability `p` *during* bursts and dropped outside them.
//!
//! The injector also hosts the utilization calibrator: given a target
//! bottleneck utilization, it computes the keep-probability analytically
//! from the base trace's offered rate (experiments then report realised
//! utilization measured at the queue).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cross-traffic selection model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CrossModel {
    /// Keep each packet with probability `keep_prob` (the paper's "random"
    /// model).
    Uniform {
        /// Independent keep-probability per packet.
        keep_prob: f64,
    },
    /// On/off gating: during `on` windows keep with `keep_prob`; during the
    /// following `off` windows keep nothing.
    Bursty {
        /// Keep-probability inside a burst.
        keep_prob: f64,
        /// Burst (injection) duration.
        on: SimDuration,
        /// Gap between bursts.
        off: SimDuration,
    },
}

impl CrossModel {
    /// The long-run average keep fraction of this model (duty cycle × p).
    pub fn average_keep(&self) -> f64 {
        match *self {
            CrossModel::Uniform { keep_prob } => keep_prob,
            CrossModel::Bursty { keep_prob, on, off } => {
                let on_ns = on.as_nanos() as f64;
                let off_ns = off.as_nanos() as f64;
                if on_ns + off_ns == 0.0 {
                    0.0
                } else {
                    keep_prob * on_ns / (on_ns + off_ns)
                }
            }
        }
    }

    /// Is `t` inside an injection window?
    pub fn gate_open(&self, t: SimTime) -> bool {
        match *self {
            CrossModel::Uniform { .. } => true,
            CrossModel::Bursty { on, off, .. } => {
                let period = on.as_nanos() + off.as_nanos();
                if period == 0 {
                    return false;
                }
                t.as_nanos() % period < on.as_nanos()
            }
        }
    }

    fn keep_prob(&self) -> f64 {
        match *self {
            CrossModel::Uniform { keep_prob } | CrossModel::Bursty { keep_prob, .. } => keep_prob,
        }
    }
}

/// Mantissa bits of the unit-interval `f64` draw: the RNG's `f64` sampling
/// uses the top 53 bits of one 64-bit word, so `u < p` over `[0, 1)` is
/// exactly `(word >> 11) < ⌈p·2⁵³⌉` over integers (multiplying a ≤ 53-bit
/// integer by 2⁻⁵³ is lossless, and `p·2⁵³` is just an exponent shift of
/// `p`'s own mantissa — both sides of the threshold conversion are exact).
const UNIT_BITS: u32 = 53;

/// Integer keep-threshold equivalent to `rng.random::<f64>() < keep_prob`.
fn keep_threshold(keep_prob: f64) -> u64 {
    (keep_prob * (1u64 << UNIT_BITS) as f64).ceil() as u64
}

/// Stateful injector filtering a cross-traffic packet stream.
#[derive(Debug, Clone)]
pub struct CrossInjector {
    model: CrossModel,
    /// `⌈keep_prob·2⁵³⌉`, precomputed: the per-packet decision is one
    /// integer compare against the raw RNG word instead of an int→f64
    /// convert + float compare (the headroom item listed since PR 1).
    threshold: u64,
    rng: StdRng,
    offered: u64,
    kept: u64,
}

impl CrossInjector {
    /// Build with a model and RNG seed (selection is reproducible).
    pub fn new(model: CrossModel, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&model.keep_prob()),
            "keep probability out of [0,1]"
        );
        CrossInjector {
            model,
            threshold: keep_threshold(model.keep_prob()),
            rng: StdRng::seed_from_u64(seed),
            offered: 0,
            kept: 0,
        }
    }

    /// Decide whether to inject this packet (keyed on its trace timestamp).
    ///
    /// Draws from the RNG exactly when the float path did — gate open and
    /// `0 < keep_prob < 1` — so injection sequences are bit-identical to
    /// the pre-threshold implementation (pinned by the differential test
    /// below).
    #[inline]
    pub fn select(&mut self, p: &Packet) -> bool {
        self.offered += 1;
        // Degenerate probabilities need no random draw — the common
        // calibration outcome at the top of the utilization sweep is
        // keep_prob = 1.0 (threshold 2⁵³), which this turns into a pure
        // gate check.
        let keep = self.model.gate_open(p.created_at)
            && (self.threshold >= 1 << UNIT_BITS
                || (self.threshold > 0
                    && (rand::RngCore::next_u64(&mut self.rng) >> (64 - UNIT_BITS))
                        < self.threshold));
        if keep {
            self.kept += 1;
        }
        keep
    }

    /// Filter an entire stream, preserving order.
    pub fn filter<'a>(
        &'a mut self,
        packets: impl Iterator<Item = Packet> + 'a,
    ) -> impl Iterator<Item = Packet> + 'a {
        packets.filter(move |p| self.select(p))
    }

    /// Packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets kept so far.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Realised keep fraction.
    pub fn keep_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.kept as f64 / self.offered as f64
        }
    }
}

/// Compute the keep-probability that makes `base_cross_utilization` of cross
/// traffic plus `regular_utilization` of regular traffic hit
/// `target_utilization` at the bottleneck, for a given model shape.
///
/// For the bursty model the probability applies only inside bursts, so it is
/// scaled up by the inverse duty cycle (capped at 1.0).
pub fn calibrate_keep_prob(
    target_utilization: f64,
    regular_utilization: f64,
    base_cross_utilization: f64,
    duty_cycle: f64,
) -> f64 {
    assert!(base_cross_utilization > 0.0, "no cross traffic to scale");
    assert!((0.0..=1.0).contains(&duty_cycle) && duty_cycle > 0.0);
    let needed = (target_utilization - regular_utilization).max(0.0);
    (needed / base_cross_utilization / duty_cycle).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn pkt(id: u64, at_ns: u64) -> Packet {
        Packet::cross(
            id,
            FlowKey::udp(Ipv4Addr::new(9, 9, 9, 9), 1, Ipv4Addr::new(8, 8, 8, 8), 2),
            100,
            SimTime::from_nanos(at_ns),
        )
    }

    #[test]
    fn uniform_keeps_expected_fraction() {
        let mut inj = CrossInjector::new(CrossModel::Uniform { keep_prob: 0.3 }, 1);
        let n = 100_000;
        let kept = (0..n).filter(|i| inj.select(&pkt(*i, *i * 10))).count();
        let frac = kept as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "kept {frac}");
        assert_eq!(inj.offered(), n);
        assert!((inj.keep_fraction() - frac).abs() < 1e-12);
    }

    #[test]
    fn uniform_extremes() {
        let mut none = CrossInjector::new(CrossModel::Uniform { keep_prob: 0.0 }, 2);
        let mut all = CrossInjector::new(CrossModel::Uniform { keep_prob: 1.0 }, 2);
        for i in 0..1000 {
            assert!(!none.select(&pkt(i, i)));
            assert!(all.select(&pkt(i, i)));
        }
    }

    #[test]
    fn bursty_gates_by_time() {
        let model = CrossModel::Bursty {
            keep_prob: 1.0,
            on: SimDuration::from_micros(10),
            off: SimDuration::from_micros(30),
        };
        let mut inj = CrossInjector::new(model, 3);
        // t = 5 µs: inside first burst. t = 15 µs: in the off window.
        assert!(inj.select(&pkt(1, 5_000)));
        assert!(!inj.select(&pkt(2, 15_000)));
        // t = 42 µs: second period begins at 40 µs → inside burst.
        assert!(inj.select(&pkt(3, 42_000)));
        assert!(model.gate_open(SimTime::from_micros(41)));
        assert!(!model.gate_open(SimTime::from_micros(39)));
    }

    #[test]
    fn bursty_average_keep_accounts_duty_cycle() {
        let model = CrossModel::Bursty {
            keep_prob: 0.6,
            on: SimDuration::from_micros(10),
            off: SimDuration::from_micros(30),
        };
        assert!((model.average_keep() - 0.15).abs() < 1e-12);
        assert_eq!(CrossModel::Uniform { keep_prob: 0.4 }.average_keep(), 0.4);
    }

    #[test]
    fn bursty_realised_fraction_matches_average() {
        let model = CrossModel::Bursty {
            keep_prob: 0.5,
            on: SimDuration::from_micros(100),
            off: SimDuration::from_micros(100),
        };
        let mut inj = CrossInjector::new(model, 7);
        let n = 200_000u64;
        // Packets uniformly spread over many periods.
        let kept = (0..n).filter(|i| inj.select(&pkt(*i, *i * 17))).count();
        let frac = kept as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "kept {frac}");
    }

    #[test]
    fn filter_preserves_order() {
        let mut inj = CrossInjector::new(CrossModel::Uniform { keep_prob: 0.5 }, 9);
        let input: Vec<Packet> = (0..1000).map(|i| pkt(i, i * 5)).collect();
        let out: Vec<Packet> = inj.filter(input.clone().into_iter()).collect();
        assert!(!out.is_empty() && out.len() < input.len());
        for w in out.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn integer_threshold_matches_float_comparison_bit_for_bit() {
        // The pre-threshold implementation, verbatim: an f64 unit draw
        // compared against keep_prob, drawn only when the gate is open and
        // the probability is non-degenerate. The integer fast path must
        // reproduce every decision *and* every RNG consumption.
        use rand::{Rng, RngCore};
        struct FloatOracle {
            model: CrossModel,
            rng: StdRng,
        }
        impl FloatOracle {
            fn select(&mut self, p: &Packet) -> bool {
                let keep_prob = self.model.keep_prob();
                self.model.gate_open(p.created_at)
                    && (keep_prob >= 1.0
                        || (keep_prob > 0.0 && self.rng.random::<f64>() < keep_prob))
            }
        }
        let probs = [
            0.0,
            1.0,
            0.5,
            0.3,
            1.0 / 3.0,
            0.125,
            1e-12,
            f64::EPSILON,
            1.0 - f64::EPSILON,
            0.999_999_999,
            0.637,
        ];
        for &keep_prob in &probs {
            for model in [
                CrossModel::Uniform { keep_prob },
                CrossModel::Bursty {
                    keep_prob,
                    on: SimDuration::from_micros(10),
                    off: SimDuration::from_micros(30),
                },
            ] {
                for seed in [1u64, 7, 0xDEAD] {
                    let mut fast = CrossInjector::new(model, seed);
                    let mut oracle = FloatOracle {
                        model,
                        rng: StdRng::seed_from_u64(seed),
                    };
                    for i in 0..5_000u64 {
                        let p = pkt(i, i * 1_237);
                        assert_eq!(
                            fast.select(&p),
                            oracle.select(&p),
                            "p={keep_prob} seed={seed} packet {i}: decision diverged"
                        );
                    }
                    // Both consumed the same number of words: the streams
                    // stay aligned for any continuation.
                    assert_eq!(fast.rng.next_u64(), oracle.rng.next_u64());
                }
            }
        }
    }

    #[test]
    fn threshold_conversion_is_exact_at_the_edges() {
        assert_eq!(keep_threshold(0.0), 0);
        assert_eq!(keep_threshold(1.0), 1 << UNIT_BITS);
        assert_eq!(keep_threshold(0.5), 1 << (UNIT_BITS - 1));
        // Smallest draw is 0: any positive probability keeps it.
        assert!(keep_threshold(f64::MIN_POSITIVE) >= 1);
        // Largest draw is 2⁵³−1: only p = 1.0 keeps everything.
        assert!(keep_threshold(1.0 - f64::EPSILON) < 1 << UNIT_BITS);
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut inj = CrossInjector::new(CrossModel::Uniform { keep_prob: 0.5 }, seed);
            (0..500).map(|i| inj.select(&pkt(i, i))).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn calibration_math() {
        // Paper §4.1/§4.2: regular ≈ 22%, base cross ≈ 71%.
        // Target 93% with uniform model → keep everything.
        let p = calibrate_keep_prob(0.93, 0.22, 0.71, 1.0);
        assert!((p - 1.0).abs() < 1e-9);
        // Target 67% → keep ≈ 63%.
        let p = calibrate_keep_prob(0.67, 0.22, 0.71, 1.0);
        assert!((p - 0.6338).abs() < 0.001, "{p}");
        // Target 34% uniform → ≈ 17%, close to the paper's quoted 15%.
        let p = calibrate_keep_prob(0.34, 0.22, 0.71, 1.0);
        assert!((0.14..=0.20).contains(&p), "{p}");
        // Bursty with 50% duty cycle doubles the in-burst probability.
        let p_burst = calibrate_keep_prob(0.34, 0.22, 0.71, 0.5);
        assert!((p_burst - 2.0 * p).abs() < 1e-9);
        // Target below regular → no cross traffic at all.
        assert_eq!(calibrate_keep_prob(0.10, 0.22, 0.71, 1.0), 0.0);
    }
}
