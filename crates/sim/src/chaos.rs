//! Seeded chaos-campaign generation: composing random [`FaultScript`]s.
//!
//! The fault layer gives the engine deterministic *scripted* degradation;
//! this module generates the scripts themselves from a seed, so a single
//! `u64` names an entire reproducible campaign of correlated failures:
//!
//! * **Correlated link flaps** — several egress ports of one switch go
//!   down together and recover together (a line-card reseat, not six
//!   independent cable pulls). Flap victims, port fan-out, onset and hold
//!   time are all drawn from the seeded stream.
//! * **Gray-loss ramps** — a switch alternates loss bursts of increasing
//!   duty ("gray failure": intermittent, worsening, never a clean
//!   down/up edge), the regime the paper's continuous-measurement
//!   argument cares about most.
//! * **Tap outages** — timed [`FaultKind::TapDown`]/[`FaultKind::TapUp`]
//!   pairs that kill and cold-restart measurement taps mid-run, exercising
//!   the plane's crash/recovery accounting rather than the network.
//!
//! Generation uses a self-contained splitmix64 stream — no global RNG, no
//! wall clock — so `ChaosConfig::generate` is a pure function of the
//! config: the chaos bench sweeps seeds and every campaign can be replayed
//! bit-for-bit from its JSON row.

use crate::fault::{FaultEvent, FaultKind, FaultScript};
use crate::network::{NodeId, PortId};
use rlir_net::time::{SimDuration, SimTime};

/// Deterministic splitmix64 stream (same generator family the workload
/// builders use) — the whole campaign derives from one seed.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n == 0` returns 0.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo).saturating_add(1))
    }
}

/// What a seeded campaign may inject, and where.
///
/// The caller supplies the *topology vocabulary* — which switches can
/// flap which ports, which nodes host taps — and the generator supplies
/// the timing and victim selection. Counts of zero disable an ingredient,
/// so a config can generate (say) a taps-only campaign.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Campaign seed; equal configs with equal seeds generate equal
    /// scripts.
    pub seed: u64,
    /// Candidate `(switch, its egress ports)` flap victims — typically
    /// aggregation/core switches with their ECMP fan-out, so reroutes
    /// exist and flaps degrade rather than partition.
    pub flap_candidates: Vec<(NodeId, Vec<PortId>)>,
    /// Candidate gray-loss victims.
    pub gray_candidates: Vec<NodeId>,
    /// Candidate tap-outage victims (nodes hosting measurement taps).
    pub tap_candidates: Vec<NodeId>,
    /// Number of correlated link-flap episodes to draw.
    pub flaps: usize,
    /// Number of gray-loss ramps to draw.
    pub gray_ramps: usize,
    /// Number of tap outages to draw.
    pub tap_outages: usize,
    /// Campaign window: faults onset inside `[start, start + span)`.
    pub start: SimTime,
    /// Width of the onset window.
    pub span: SimDuration,
    /// Shortest fault hold time (flap width, gray burst, outage length).
    pub min_hold: SimDuration,
    /// Longest fault hold time.
    pub max_hold: SimDuration,
}

impl ChaosConfig {
    /// A quiet campaign: nothing to inject until ingredients are set.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            flap_candidates: Vec::new(),
            gray_candidates: Vec::new(),
            tap_candidates: Vec::new(),
            flaps: 0,
            gray_ramps: 0,
            tap_outages: 0,
            start: SimTime::from_nanos(0),
            span: SimDuration::from_nanos(0),
            min_hold: SimDuration::from_nanos(1),
            max_hold: SimDuration::from_nanos(1),
        }
    }

    fn onset(&self, rng: &mut SplitMix) -> SimTime {
        let off = rng.below(self.span.as_nanos().max(1));
        SimTime::from_nanos(self.start.as_nanos() + off)
    }

    fn hold(&self, rng: &mut SplitMix) -> u64 {
        rng.range(
            self.min_hold.as_nanos().max(1),
            self.max_hold
                .as_nanos()
                .max(self.min_hold.as_nanos().max(1)),
        )
    }

    /// Generate the campaign script. Pure: same config, same script.
    pub fn generate(&self) -> FaultScript {
        let mut rng = SplitMix(self.seed ^ 0xC4A5_3C0D_E1F2_9B37);
        let mut events = Vec::new();

        // Correlated link flaps: one switch, a correlated subset of its
        // ports, one shared down/up edge pair.
        for _ in 0..self.flaps {
            let Some((node, ports)) = pick(&mut rng, &self.flap_candidates) else {
                break;
            };
            if ports.is_empty() {
                continue;
            }
            let fan = rng.range(1, ports.len() as u64) as usize;
            let down = self.onset(&mut rng);
            let up = SimTime::from_nanos(down.as_nanos() + self.hold(&mut rng));
            // Correlated subset: a contiguous rotation of the port list,
            // so the subset is itself seed-determined.
            let rot = rng.below(ports.len() as u64) as usize;
            for k in 0..fan {
                let port = ports[(rot + k) % ports.len()];
                events.push(FaultEvent {
                    at: down,
                    kind: FaultKind::LinkDown { node: *node, port },
                });
                events.push(FaultEvent {
                    at: up,
                    kind: FaultKind::LinkUp { node: *node, port },
                });
            }
        }

        // Gray-loss ramps: bursts of increasing duty at one node.
        for _ in 0..self.gray_ramps {
            let Some(node) = pick(&mut rng, &self.gray_candidates) else {
                break;
            };
            let mut t = self.onset(&mut rng).as_nanos();
            let gap = self.hold(&mut rng);
            let steps = rng.range(2, 4);
            for step in 1..=steps {
                // Duty grows with each step: hold × step / steps.
                let burst = self.hold(&mut rng) * step / steps;
                events.push(FaultEvent {
                    at: SimTime::from_nanos(t),
                    kind: FaultKind::LossBurstStart { node: *node },
                });
                events.push(FaultEvent {
                    at: SimTime::from_nanos(t + burst.max(1)),
                    kind: FaultKind::LossBurstEnd { node: *node },
                });
                t += burst.max(1) + gap;
            }
        }

        // Tap outages: down/up pairs on tap-hosting nodes.
        for _ in 0..self.tap_outages {
            let Some(node) = pick(&mut rng, &self.tap_candidates) else {
                break;
            };
            let down = self.onset(&mut rng);
            let up = SimTime::from_nanos(down.as_nanos() + self.hold(&mut rng));
            events.push(FaultEvent {
                at: down,
                kind: FaultKind::TapDown { node: *node },
            });
            events.push(FaultEvent {
                at: up,
                kind: FaultKind::TapUp { node: *node },
            });
        }

        FaultScript::new(events)
    }
}

fn pick<'a, T>(rng: &mut SplitMix, from: &'a [T]) -> Option<&'a T> {
    if from.is_empty() {
        None
    } else {
        Some(&from[rng.below(from.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ChaosConfig {
        let mut c = ChaosConfig::new(seed);
        c.flap_candidates = vec![(3, vec![0, 1, 2, 3]), (4, vec![0, 1])];
        c.gray_candidates = vec![5, 6];
        c.tap_candidates = vec![7, 8];
        c.flaps = 2;
        c.gray_ramps = 1;
        c.tap_outages = 2;
        c.start = SimTime::from_nanos(1_000_000);
        c.span = SimDuration::from_nanos(50_000_000);
        c.min_hold = SimDuration::from_nanos(100_000);
        c.max_hold = SimDuration::from_nanos(5_000_000);
        c
    }

    #[test]
    fn same_seed_same_script_different_seed_different() {
        let a = cfg(17).generate();
        let b = cfg(17).generate();
        let c = cfg(18).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn script_contains_each_ingredient_and_pairs_balance() {
        let s = cfg(99).generate();
        let mut downs = 0i64;
        let mut bursts = 0i64;
        let mut taps = 0i64;
        let mut saw_flap = false;
        let mut saw_gray = false;
        let mut saw_tap = false;
        for ev in s.events() {
            match ev.kind {
                FaultKind::LinkDown { .. } => {
                    downs += 1;
                    saw_flap = true;
                }
                FaultKind::LinkUp { .. } => downs -= 1,
                FaultKind::LossBurstStart { .. } => {
                    bursts += 1;
                    saw_gray = true;
                }
                FaultKind::LossBurstEnd { .. } => bursts -= 1,
                FaultKind::TapDown { .. } => {
                    taps += 1;
                    saw_tap = true;
                }
                FaultKind::TapUp { .. } => taps -= 1,
                _ => {}
            }
        }
        assert!(saw_flap && saw_gray && saw_tap);
        // Every onset has a matching clearance somewhere in the script.
        assert_eq!((downs, bursts, taps), (0, 0, 0));
        // Onsets land inside the configured window.
        let c = cfg(99);
        let first = s.first_onset().unwrap();
        assert!(first >= c.start);
    }

    #[test]
    fn empty_ingredients_generate_empty_script() {
        assert!(ChaosConfig::new(7).generate().is_empty());
    }
}
