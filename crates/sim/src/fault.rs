//! Deterministic mid-run fault injection and run control.
//!
//! The paper's deployment story is *continuous* operation: RLI runs on live
//! routers where links fail, line cards degrade and loss bursts appear —
//! not only in the static pre-configured anomalies the accuracy scenarios
//! inject. A [`FaultScript`] is an ordered list of timed [`FaultEvent`]s
//! applied *inside* the engine as simulated time passes:
//!
//! * **Link failure/recovery** — an egress `(node, port)` goes
//!   administratively dead; the forwarder is offered a
//!   [`reroute`](crate::network::Forwarder::reroute) (ECMP alternative
//!   where one exists), otherwise the packet blackholes as a counted
//!   route drop. Packets already serialised onto the wire still arrive.
//! * **Switch service-time degradation** — every port of a switch gains
//!   extra processing delay at onset and returns to its baseline at
//!   clearance (the dynamic generalisation of the experiment layer's
//!   static `SwitchAnomaly` queue override).
//! * **Loss bursts** — every packet arriving at a node inside the window
//!   is dropped (and emitted as a [`RouteDrop`](crate::network::HopKind)
//!   hop event, so drop-aware taps account for it like any other death).
//!
//! Scripts are plain data: derived from a scenario's point seed they make
//! fault-bearing runs exactly as deterministic — and as thread-count
//! invariant under the sweep executor — as fault-free ones. An **empty**
//! script is guaranteed byte-identical to a run without one; the engine's
//! fault hooks reduce to a skipped `Option` check per event.

use crate::network::{Network, NodeId, PortId};
use rlir_net::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// What a scripted fault transition does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The egress link behind `(node, port)` fails: subsequent forwards
    /// onto it are rerouted (if the forwarder knows an alternative) or
    /// blackholed as route drops. In-flight packets are unaffected.
    LinkDown {
        /// The switch owning the egress port.
        node: NodeId,
        /// The failed egress port.
        port: PortId,
    },
    /// The egress link behind `(node, port)` recovers.
    LinkUp {
        /// The switch owning the egress port.
        node: NodeId,
        /// The recovered egress port.
        port: PortId,
    },
    /// Service-time degradation onset: every port of `node` gains `extra`
    /// processing delay on top of its configured baseline.
    SlowSwitch {
        /// The degraded switch.
        node: NodeId,
        /// Additional per-packet processing delay.
        extra: SimDuration,
    },
    /// Degradation clearance: every port of `node` returns to the
    /// processing delay it had before the first uncleared
    /// [`FaultKind::SlowSwitch`].
    ClearSwitch {
        /// The recovered switch.
        node: NodeId,
    },
    /// Loss-burst onset: every packet arriving at `node` is dropped.
    LossBurstStart {
        /// The lossy switch.
        node: NodeId,
    },
    /// Loss-burst end.
    LossBurstEnd {
        /// The recovered switch.
        node: NodeId,
    },
    /// A measurement tap at `node` crashes. Packets still flow — the
    /// *measurement* instance dies, not the switch — so this transition is
    /// a no-op on the network; it is delivered to the run's
    /// [`HopSink`](crate::network::HopSink) via
    /// [`on_fault`](crate::network::HopSink::on_fault) so a measurement
    /// plane can discard the tap's window state and account the outage.
    TapDown {
        /// The node whose taps crash.
        node: NodeId,
    },
    /// The measurement tap(s) at `node` recover and re-attach cold.
    TapUp {
        /// The node whose taps recover.
        node: NodeId,
    },
}

/// One timed fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time at which the transition takes effect. The engine
    /// applies it before processing any packet event at `at` or later.
    pub at: SimTime,
    /// The transition.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered script of fault transitions.
///
/// Events are kept sorted by time (stable, so same-time events apply in
/// construction order). The script is borrowed by the engine for the
/// duration of a run; see [`crate::network::RunOptions`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// Build a script from transitions (sorted stably by time).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultScript { events }
    }

    /// The script with no faults — guaranteed byte-identical to running
    /// without a script at all.
    pub fn empty() -> Self {
        FaultScript::default()
    }

    /// True if the script holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The transitions, in application order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Append a transition, keeping the script time-ordered.
    pub fn push(&mut self, ev: FaultEvent) {
        let pos = self.events.partition_point(|e| e.at <= ev.at);
        self.events.insert(pos, ev);
    }

    /// Time of the earliest transition, if any — the fault *onset* a
    /// detection-latency metric measures from.
    pub fn first_onset(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }
}

/// The set of administratively-dead egress ports at one switch, handed to
/// [`Forwarder::reroute`](crate::network::Forwarder::reroute) so a
/// topology-aware forwarder can pick a live ECMP alternative.
#[derive(Debug, Clone, Copy)]
pub struct DeadPorts<'a> {
    node: NodeId,
    dead: &'a BTreeSet<(NodeId, PortId)>,
}

impl DeadPorts<'_> {
    /// True if `port` at this switch is currently dead.
    pub fn is_dead(&self, port: PortId) -> bool {
        self.dead.contains(&(self.node, port))
    }
}

/// Live fault state the engine advances as its clock passes scripted
/// transition times.
#[derive(Debug)]
pub(crate) struct FaultState<'a> {
    script: &'a [FaultEvent],
    /// Next unapplied script index.
    next: usize,
    /// Currently-dead egress ports.
    dead: BTreeSet<(NodeId, PortId)>,
    /// Nodes inside a loss burst.
    lossy: BTreeSet<NodeId>,
    /// Per-port baseline processing delays of currently-degraded switches,
    /// saved at the first uncleared onset.
    slowed: BTreeMap<NodeId, Vec<SimDuration>>,
    /// Packets dropped *because of* a fault: loss-burst deaths plus
    /// dead-link blackholes (also counted in the per-node route drops).
    pub(crate) fault_drops: u64,
}

impl<'a> FaultState<'a> {
    pub(crate) fn new(script: &'a FaultScript) -> Self {
        FaultState {
            script: script.events(),
            next: 0,
            dead: BTreeSet::new(),
            lossy: BTreeSet::new(),
            slowed: BTreeMap::new(),
            fault_drops: 0,
        }
    }

    /// Apply every transition due at or before `at`. Transitions between
    /// two packet events apply lazily at the later event — equivalent,
    /// since fault state is only *read* when packets are processed.
    ///
    /// Returns the range of script indices applied by this call so the
    /// engine can deliver them to the sink (see
    /// [`HopSink::on_fault`](crate::network::HopSink::on_fault)).
    pub(crate) fn advance(&mut self, at: SimTime, network: &mut Network) -> std::ops::Range<usize> {
        let first = self.next;
        while let Some(ev) = self.script.get(self.next) {
            if ev.at > at {
                break;
            }
            self.next += 1;
            match ev.kind {
                FaultKind::LinkDown { node, port } => {
                    self.dead.insert((node, port));
                }
                FaultKind::LinkUp { node, port } => {
                    self.dead.remove(&(node, port));
                }
                FaultKind::SlowSwitch { node, extra } => {
                    let ports = &mut network.nodes[node].ports;
                    self.slowed.entry(node).or_insert_with(|| {
                        ports
                            .iter()
                            .map(|p| p.queue.config().processing_delay)
                            .collect()
                    });
                    for p in ports.iter_mut() {
                        let d = p.queue.config().processing_delay + extra;
                        p.queue.set_processing_delay(d);
                    }
                }
                FaultKind::ClearSwitch { node } => {
                    if let Some(baseline) = self.slowed.remove(&node) {
                        let ports = &mut network.nodes[node].ports;
                        for (p, d) in ports.iter_mut().zip(baseline) {
                            p.queue.set_processing_delay(d);
                        }
                    }
                }
                FaultKind::LossBurstStart { node } => {
                    self.lossy.insert(node);
                }
                FaultKind::LossBurstEnd { node } => {
                    self.lossy.remove(&node);
                }
                // Measurement-plane transitions: no network effect. They are
                // surfaced to the sink via the applied-index range.
                FaultKind::TapDown { .. } | FaultKind::TapUp { .. } => {}
            }
        }
        first..self.next
    }

    /// The script transition at index `i` (as returned by [`advance`]).
    ///
    /// [`advance`]: FaultState::advance
    pub(crate) fn event(&self, i: usize) -> FaultEvent {
        self.script[i]
    }

    /// True while `node` is inside a loss burst.
    pub(crate) fn lossy(&self, node: NodeId) -> bool {
        self.lossy.contains(&node)
    }

    /// True if egress `(node, port)` is currently dead.
    pub(crate) fn is_dead(&self, node: NodeId, port: PortId) -> bool {
        self.dead.contains(&(node, port))
    }

    /// The dead-port view for `node`, as handed to `Forwarder::reroute`.
    pub(crate) fn dead_ports(&self, node: NodeId) -> DeadPorts<'_> {
        DeadPorts {
            node,
            dead: &self.dead,
        }
    }
}

/// Cooperative early-termination flag for an engine run — the
/// closed-loop detector's termination hook.
///
/// Cloneable and cheap; a sink (e.g. an online change detector wrapping
/// the measurement plane) holds one clone and raises it mid-run, and the
/// engine loop checks it before each event, draining nothing further once
/// set. Single-threaded by construction (the engine is single-threaded;
/// sweep parallelism is across runs, never within one).
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Rc<Cell<bool>>);

impl StopFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Request the run stop before its next event.
    pub fn request_stop(&self) {
        self.0.set(true);
    }

    /// True once a stop has been requested.
    pub fn is_set(&self) -> bool {
        self.0.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_sorts_and_reports_onset() {
        let s = FaultScript::new(vec![
            FaultEvent {
                at: SimTime::from_nanos(500),
                kind: FaultKind::LossBurstEnd { node: 1 },
            },
            FaultEvent {
                at: SimTime::from_nanos(100),
                kind: FaultKind::LossBurstStart { node: 1 },
            },
        ]);
        assert_eq!(s.first_onset(), Some(SimTime::from_nanos(100)));
        assert!(matches!(
            s.events()[0].kind,
            FaultKind::LossBurstStart { .. }
        ));
        let mut s2 = FaultScript::empty();
        assert!(s2.is_empty());
        s2.push(s.events()[1]);
        s2.push(s.events()[0]);
        assert_eq!(s2, s);
    }

    #[test]
    fn stop_flag_shares_state_across_clones() {
        let a = StopFlag::new();
        let b = a.clone();
        assert!(!a.is_set());
        b.request_stop();
        assert!(a.is_set());
    }
}
