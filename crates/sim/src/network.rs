//! Event-driven simulation of arbitrary switch topologies.
//!
//! The tandem pipeline covers the paper's Fig. 3 evaluation; the RLIR
//! architecture itself (§3) lives on a *fat-tree*, where packets traverse
//! ToR → edge → core → edge → ToR with ECMP choosing among equal-cost ports.
//! This module provides the general engine: switches with per-output-port
//! [`FifoQueue`]s, links with propagation delay, a pluggable [`Forwarder`]
//! (implemented by `rlir-topo`), and per-packet hop-by-hop ground truth.
//!
//! Events are drained in (time, sequence) order from a bucketed
//! [`CalendarQueue`](crate::sched::CalendarQueue) (heap fallback for
//! far-future events; the original `BinaryHeap` is kept behind
//! [`SchedulerKind::Heap`] as the differential oracle), so the simulation is
//! deterministic and every queue sees time-ordered arrivals.
//!
//! ## The hop-event stream
//!
//! [`run_network_with`] additionally emits a typed, allocation-free stream
//! of [`HopEvent`]s to a [`HopSink`] — every switch arrival, queue
//! enqueue/dequeue, drop and delivery, each carrying the packet by
//! reference plus the hop record accumulated so far. This is the
//! measurement plane's observation point: an RLI instance "deployed at a
//! router" is a sink that watches one `(node, port)` tap of this stream
//! (see `rlir::plane::MeasurementPlane`). Sink callbacks are invoked in
//! engine processing order: [`HopKind::Arrive`] events are therefore
//! globally time-ordered, while dequeue/delivery timestamps may run ahead
//! of the engine clock (the analytic queues decide departure at offer
//! time) — consumers that need strict delivery-time order sort per tap, as
//! [`NetworkRun::deliveries`] itself is sorted.
//!
//! ## The arena-backed engine
//!
//! In-flight packet state (packet, injection provenance, hop record)
//! lives in a free-list [`PacketSlab`](crate::slab::PacketSlab); the
//! scheduler moves only an 8-byte `Copy` handle (slot + node), and slots
//! are recycled the moment a packet delivers or drops. Engine memory is
//! therefore O(max in-flight), and hop-record storage is amortized across
//! the run (recycled slots keep their vectors' capacity). The pre-slab
//! engine — full packet + `Vec<Hop>` moved through every scheduler
//! push/pop — is retained behind [`EngineKind::MovingOracle`] as the
//! differential oracle; the two are pinned byte-identical (deliveries,
//! drop counters, hop records, full `HopEvent` + watermark sequence) by
//! `tests/slab_engine_differential.rs`.
//!
//! [`run_network_streamed`] exposes the slab's memory bound end-to-end: a
//! delivery callback replaces the buffered `Vec<NetDelivery>`, so a
//! plane-driven run holds *no* per-delivery state at all and returns a
//! bounded [`NetworkRunStats`].

use crate::fault::{DeadPorts, FaultScript, FaultState, StopFlag};
use crate::queue::{FifoQueue, QueueConfig, Verdict};
use crate::sched::{CalendarQueue, EventSchedule, HeapSchedule};
use crate::slab::{PacketSlab, SlotId};
use crate::source::{InjectionSource, SortedVecSource};
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};

/// Index of a switch in the network.
pub type NodeId = usize;
/// Index of a port within a switch.
pub type PortId = usize;

/// One output port: a queue draining onto a link.
#[derive(Debug, Clone)]
pub struct Port {
    /// The output queue.
    pub queue: FifoQueue,
    /// Switch at the far end of the link; `None` for a host-facing port
    /// (packets delivered after queueing).
    pub link_to: Option<NodeId>,
    /// Propagation delay of the attached link.
    pub link_delay: SimDuration,
}

impl Port {
    /// A port towards another switch.
    pub fn to_switch(cfg: QueueConfig, node: NodeId, link_delay: SimDuration) -> Self {
        Port {
            queue: FifoQueue::new(cfg),
            link_to: Some(node),
            link_delay,
        }
    }

    /// A host-facing port (delivery after queueing).
    pub fn to_host(cfg: QueueConfig, link_delay: SimDuration) -> Self {
        Port {
            queue: FifoQueue::new(cfg),
            link_to: None,
            link_delay,
        }
    }
}

/// A switch: a named collection of output ports.
#[derive(Debug, Clone)]
pub struct SwitchNode {
    /// Human-readable name (e.g. `"T1"`, `"C3"` as in the paper's Fig. 1).
    pub name: String,
    /// Output ports.
    pub ports: Vec<Port>,
}

/// The switch graph.
#[derive(Debug, Clone, Default)]
pub struct Network {
    /// All switches, indexed by [`NodeId`].
    pub nodes: Vec<SwitchNode>,
}

impl Network {
    /// Add a switch, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(SwitchNode {
            name: name.into(),
            ports: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Add a port to `node`, returning its port id.
    pub fn add_port(&mut self, node: NodeId, port: Port) -> PortId {
        self.nodes[node].ports.push(port);
        self.nodes[node].ports.len() - 1
    }

    /// Look up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }
}

/// Forwarding decision for one packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Send out this port (queueing applies; if the port is host-facing the
    /// packet is delivered at its queue departure time).
    Forward(PortId),
    /// Deliver immediately at this switch (no further queueing) — used when
    /// the measurement point is the switch ingress.
    Deliver,
    /// Administratively drop (no route).
    Drop,
}

/// The routing/marking plane, implemented by the topology crate.
pub trait Forwarder {
    /// Choose what `node` does with `packet`.
    fn route(&self, node: NodeId, packet: &Packet) -> RouteDecision;

    /// Hook invoked when `node` forwards `packet` out `port` — RLIR's
    /// packet-marking demultiplexer stamps the ToS byte here (§3.1).
    fn on_forward(&self, node: NodeId, port: PortId, packet: &mut Packet) {
        let _ = (node, port, packet);
    }

    /// The forwarder's chosen egress `chosen` is administratively dead
    /// (fault plane, see [`crate::fault`]): pick an alternative.
    ///
    /// A topology-aware forwarder returns `Forward` of a live ECMP
    /// sibling (consult `dead`); the default — and the honest answer
    /// wherever no equal-cost alternative exists, e.g. the unique
    /// downward path of a fat-tree — is [`RouteDecision::Drop`], which
    /// the engine accounts as a route drop (blackhole). Returning a port
    /// that is itself dead is treated as `Drop`.
    fn reroute(
        &self,
        node: NodeId,
        packet: &Packet,
        chosen: PortId,
        dead: &DeadPorts<'_>,
    ) -> RouteDecision {
        let _ = (node, packet, chosen, dead);
        RouteDecision::Drop
    }
}

/// One traversed hop in a packet's ground-truth record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The switch.
    pub node: NodeId,
    /// The egress port taken.
    pub port: PortId,
    /// Arrival at the switch.
    pub arrived: SimTime,
    /// Departure from the switch (last bit out).
    pub departed: SimTime,
}

/// What a [`HopEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// The packet arrived at the switch ([`HopEvent::at`] = arrival time).
    /// These events are emitted in global time order.
    Arrive,
    /// The packet was accepted into an output queue (`at` = arrival time;
    /// the marking hook has already run).
    Enqueue {
        /// The egress port.
        port: PortId,
    },
    /// The packet's last bit left the port (`at` = departure time, which
    /// the analytic queue computed at enqueue; `arrived` is its arrival at
    /// the switch). [`HopEvent::hops`] already includes this hop.
    Dequeue {
        /// The egress port.
        port: PortId,
        /// Arrival at the switch.
        arrived: SimTime,
    },
    /// Drop-tail discarded the packet at an output queue (`at` = arrival).
    QueueDrop {
        /// The egress port.
        port: PortId,
    },
    /// The forwarder had no route (`at` = arrival).
    RouteDrop,
    /// The packet left the network at this switch (`at` = delivery time;
    /// `hops` is the complete path record).
    Deliver,
}

/// One typed observation from the engine's per-hop stream — the
/// measurement plane's raw input. Borrowed, allocation-free: the packet
/// and the hop record live in the engine's event.
#[derive(Debug, Clone, Copy)]
pub struct HopEvent<'a> {
    /// What happened.
    pub kind: HopKind,
    /// Where.
    pub node: NodeId,
    /// When (see [`HopKind`] for which timestamp each kind carries).
    pub at: SimTime,
    /// The packet, marks applied so far.
    pub packet: &'a Packet,
    /// Where the packet entered the network.
    pub injected_node: NodeId,
    /// When the packet entered the network.
    pub injected_at: SimTime,
    /// Hops completed so far (complete path for [`HopKind::Deliver`]).
    pub hops: &'a [Hop],
}

/// A consumer of the engine's hop-event stream.
pub trait HopSink {
    /// Observe one event. Called synchronously from the engine loop.
    fn on_hop(&mut self, ev: &HopEvent<'_>);

    /// The engine's **event-time watermark** advanced to `watermark`.
    ///
    /// Called by [`run_network_with`] each time the scheduler's clock moves
    /// forward (strictly increasing across calls), *before* the events at
    /// that time are emitted. The contract, which streaming consumers build
    /// bounded reorder windows on:
    ///
    /// * every subsequent [`HopEvent`] — of any [`HopKind`] — carries
    ///   `ev.at >= watermark` (departure/delivery timestamps are computed
    ///   at enqueue and are never earlier than the enqueue-time clock);
    /// * timestamps inside a future event's hop record can lie *before*
    ///   the watermark by at most the packet's residence time between that
    ///   hop and the event (a delivered-gated tap reconstructing upstream
    ///   crossings therefore lags by at most the downstream path delay).
    ///
    /// The default implementation ignores the watermark.
    fn on_watermark(&mut self, watermark: SimTime) {
        let _ = watermark;
    }

    /// A scripted [`FaultEvent`] was applied by the engine.
    ///
    /// Called once per applied transition, in script order, at the moment
    /// the engine lazily applies it — i.e. immediately before the
    /// watermark/hop callbacks of the first packet event whose processing
    /// time is `>= ev.at`. Most transitions only matter to the network
    /// itself; measurement-plane transitions
    /// ([`FaultKind::TapDown`](crate::fault::FaultKind::TapDown) /
    /// [`FaultKind::TapUp`](crate::fault::FaultKind::TapUp)) are pure
    /// sink-side notifications. The default implementation ignores them.
    fn on_fault(&mut self, ev: &crate::fault::FaultEvent) {
        let _ = ev;
    }
}

/// Closures are sinks.
impl<F: FnMut(&HopEvent<'_>)> HopSink for F {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self(ev)
    }
}

/// The no-op sink used by [`run_network`]; its callbacks compile away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl HopSink for NullSink {
    #[inline(always)]
    fn on_hop(&mut self, _ev: &HopEvent<'_>) {}
}

/// Fan one hop-event stream out to two sinks (`a` first, then `b`) —
/// events and watermarks both. The engine takes a single sink; tee lets
/// independent observers (a measurement plane and a capture-point pair,
/// say) share one run without knowing about each other. Nest tees for
/// more than two.
#[derive(Debug)]
pub struct TeeSink<'a, A: HopSink, B: HopSink> {
    /// First observer (sees every callback before `b`).
    pub a: &'a mut A,
    /// Second observer.
    pub b: &'a mut B,
}

impl<'a, A: HopSink, B: HopSink> TeeSink<'a, A, B> {
    /// Tee the stream into `a` then `b`.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: HopSink, B: HopSink> HopSink for TeeSink<'_, A, B> {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.a.on_hop(ev);
        self.b.on_hop(ev);
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.a.on_watermark(watermark);
        self.b.on_watermark(watermark);
    }

    fn on_fault(&mut self, ev: &crate::fault::FaultEvent) {
        self.a.on_fault(ev);
        self.b.on_fault(ev);
    }
}

/// Order-sensitive digest over the full hop-event + watermark stream.
///
/// Two runs produced the same observable stream iff their digests match —
/// the differential tests and the trace-replay bench use this to pin
/// streamed ingest ([`run_network_streamed_source`]) to the sorted-Vec
/// oracle, event for event. [`fold`](Self::fold) is public so callers can
/// mix in anything else order-sensitive (delivery records, counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamDigest(u64);

impl StreamDigest {
    /// Mix one word into the digest (order-sensitive).
    pub fn fold(&mut self, x: u64) {
        let mut h = self.0 ^ x;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }

    /// The digest value so far.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl HopSink for StreamDigest {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.fold(match ev.kind {
            HopKind::Arrive => 1,
            HopKind::Enqueue { port } => 2 + ((port as u64) << 8),
            HopKind::Dequeue { port, arrived } => (3 + ((port as u64) << 8)) ^ arrived.as_nanos(),
            HopKind::QueueDrop { port } => 4 + ((port as u64) << 8),
            HopKind::RouteDrop => 5,
            HopKind::Deliver => 6,
        });
        self.fold(ev.node as u64);
        self.fold(ev.at.as_nanos());
        self.fold(ev.packet.id.0);
        self.fold(u64::from(ev.packet.mark));
        self.fold(ev.packet.created_at.as_nanos());
        self.fold(ev.hops.len() as u64);
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.fold(0xFFFF_0000 ^ watermark.as_nanos());
    }
}

/// Ground-truth record of a packet that exited the network.
#[derive(Debug, Clone)]
pub struct NetDelivery {
    /// The packet as delivered (marks applied).
    pub packet: Packet,
    /// Where it was injected.
    pub injected_node: NodeId,
    /// When it was injected.
    pub injected_at: SimTime,
    /// The switch at which it was delivered.
    pub delivered_node: NodeId,
    /// Delivery time.
    pub delivered_at: SimTime,
    /// Every switch traversal, in order.
    pub hops: Vec<Hop>,
}

impl NetDelivery {
    /// True end-to-end delay.
    pub fn true_delay(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.injected_at)
    }
}

/// Aggregate result of a network run.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Deliveries in delivery-time order.
    pub deliveries: Vec<NetDelivery>,
    /// Packets dropped by queues, per node.
    pub queue_drops: Vec<u64>,
    /// Packets dropped for lack of a route, per node.
    pub route_drops: Vec<u64>,
    /// The network with final queue states (counters).
    pub network: Network,
}

/// Which event scheduler drives the run (see [`crate::sched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Bucketed calendar queue with heap fallback, its geometry picked
    /// adaptively from the injected workload's event spacing (the default;
    /// see [`CalendarQueue::for_spacing`]).
    #[default]
    Calendar,
    /// Calendar queue with an explicit geometry — the configuration
    /// override for workloads whose hop-event density differs wildly from
    /// their injection density.
    CalendarFixed {
        /// `log2` of the bucket width in nanoseconds.
        bucket_ns_log2: u32,
        /// `log2` of the bucket count per rotation.
        buckets_log2: u32,
    },
    /// The original binary heap — differential oracle / benchmark baseline.
    Heap,
}

/// Which in-flight representation drives the run (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The arena-backed engine (the default): packet state pinned in a
    /// free-list slab, 8-byte `Copy` handles through the scheduler, slots
    /// recycled at deliver/drop — engine memory O(max in-flight).
    #[default]
    Slab,
    /// The pre-slab engine moving the full event (packet + hop vector, ~130
    /// bytes) through every scheduler push/pop — the differential oracle
    /// and benchmark baseline.
    MovingOracle,
}

/// What the scheduler moves under the slab engine: a slot handle plus the
/// switch the packet arrives at next. 8 bytes, `Copy` — calendar-queue
/// rotations and heap sift-downs shuffle this instead of the ~130-byte
/// moving-engine event.
#[derive(Debug, Clone, Copy)]
struct SlotEvent {
    node: u32,
    slot: SlotId,
}

const _: () = assert!(std::mem::size_of::<SlotEvent>() == 8);

/// The moving oracle's event: everything a packet is, carried by value.
#[derive(Debug)]
struct Event {
    node: NodeId,
    packet: Packet,
    injected_node: NodeId,
    injected_at: SimTime,
    hops: Vec<Hop>,
}

/// One delivery handed to [`run_network_streamed`]'s callback: the same
/// ground truth a [`NetDelivery`] carries, borrowed from the engine's slab
/// — no per-delivery allocation. The slot is recycled as soon as the
/// callback returns; copy out what must outlive it ([`Self::to_owned`]).
///
/// Deliveries stream in engine **processing** order: timestamps may
/// interleave (exactly like [`HopKind::Deliver`] events), unlike the
/// sorted [`NetworkRun::deliveries`]. Order-sensitive consumers sort what
/// they keep.
#[derive(Debug, Clone, Copy)]
pub struct StreamedDelivery<'a> {
    /// The packet as delivered (marks applied).
    pub packet: &'a Packet,
    /// Where it was injected.
    pub injected_node: NodeId,
    /// When it was injected.
    pub injected_at: SimTime,
    /// The switch at which it was delivered.
    pub delivered_node: NodeId,
    /// Delivery time.
    pub delivered_at: SimTime,
    /// Every switch traversal, in order.
    pub hops: &'a [Hop],
}

impl StreamedDelivery<'_> {
    /// True end-to-end delay.
    pub fn true_delay(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.injected_at)
    }

    /// Clone into an owned [`NetDelivery`] (allocates the hop record).
    pub fn to_owned(&self) -> NetDelivery {
        NetDelivery {
            packet: *self.packet,
            injected_node: self.injected_node,
            injected_at: self.injected_at,
            delivered_node: self.delivered_node,
            delivered_at: self.delivered_at,
            hops: self.hops.to_vec(),
        }
    }
}

/// Bounded aggregate of a streamed run — everything [`NetworkRun`] carries
/// except the unbounded delivery buffer, plus the slab's own accounting.
///
/// # Per-shard vs fused semantics
///
/// The pod-sharded engine ([`crate::shard::run_network_sharded`]) returns
/// one *fused* value of this struct. Every field a consumer can observe
/// through the merged event stream is **shard-count invariant** — counted
/// at emission, so `delivered`, `queue_drops`, `route_drops`, `injected`,
/// `events`, `fault_drops` and the final `network` (each switch taken from
/// the shard that owned it) are byte-identical for any shard count,
/// including under a mid-run [`StopFlag`] truncation. The two capacity
/// diagnostics are genuinely per-shard quantities and fuse differently:
/// `peak_live_slots` is the **max** over the shards' peaks (each shard owns
/// its own slab, so the fleet-wide bound is the largest single arena) and
/// `hop_allocations` is the **sum** (every shard's allocations are real
/// work done); both legitimately vary with the shard count and are
/// excluded from the determinism digests.
#[derive(Debug, Clone)]
pub struct NetworkRunStats {
    /// Packets delivered (each was handed to the callback exactly once).
    pub delivered: u64,
    /// Packets dropped by queues, per node.
    pub queue_drops: Vec<u64>,
    /// Packets dropped for lack of a route, per node.
    pub route_drops: Vec<u64>,
    /// Packets injected.
    pub injected: u64,
    /// Scheduler events processed (arrivals, including the injections).
    pub events: u64,
    /// High-water mark of concurrently in-flight packets — the engine's
    /// memory bound, independent of [`Self::injected`]. Sharded runs fuse
    /// this as the max of the per-shard peaks; see
    /// [`crate::shard::ShardRunStats::merged`] for the rationale.
    pub peak_live_slots: usize,
    /// Hop-storage (re)allocations over the whole run; amortized O(max
    /// in-flight) thanks to slot recycling. Sharded runs fuse this as the
    /// sum over shards; see [`crate::shard::ShardRunStats::merged`].
    pub hop_allocations: u64,
    /// Packets dropped *because of* an injected fault (loss-burst deaths
    /// and dead-link blackholes) — a subset of the route drops. Zero for
    /// runs without a [`FaultScript`].
    pub fault_drops: u64,
    /// The network with final queue states (counters).
    pub network: Network,
}

/// Run packets through the network.
///
/// `injections` is a list of `(entry_node, packet)`; each packet enters the
/// network at `packet.created_at`. Returns deliveries plus per-node drop
/// counts; final per-port queue counters are available in the returned
/// network.
pub fn run_network(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
) -> NetworkRun {
    run_network_with(network, forwarder, injections, &mut NullSink)
}

/// Run packets through the network, streaming every per-hop observation to
/// `sink` (see [`HopEvent`]). Identical simulation semantics to
/// [`run_network`]; the sink is purely observational.
pub fn run_network_with(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
) -> NetworkRun {
    run_network_sched(
        network,
        forwarder,
        injections,
        sink,
        SchedulerKind::default(),
    )
}

/// [`run_network_with`] with an explicit scheduler choice — the two
/// schedulers produce byte-identical runs (pinned by the scheduler property
/// tests); `Heap` exists for differential testing and benchmarking.
pub fn run_network_sched(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    scheduler: SchedulerKind,
) -> NetworkRun {
    run_network_engine(
        network,
        forwarder,
        injections,
        sink,
        scheduler,
        EngineKind::default(),
    )
}

/// [`run_network_sched`] with an explicit engine choice. The two engines
/// produce byte-identical runs — deliveries, drop counters, hop records
/// and the full `HopEvent`/watermark sequence — pinned by
/// `tests/slab_engine_differential.rs`; [`EngineKind::MovingOracle`]
/// exists for differential testing and benchmarking.
pub fn run_network_engine(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    scheduler: SchedulerKind,
    engine: EngineKind,
) -> NetworkRun {
    match engine {
        EngineKind::MovingOracle => run_moving(network, forwarder, injections, sink, scheduler),
        EngineKind::Slab => {
            let mut deliveries: Vec<NetDelivery> = Vec::new();
            let stats = run_slab(
                network,
                forwarder,
                injections,
                sink,
                RunOptions {
                    scheduler,
                    ..RunOptions::default()
                },
                &mut |d| deliveries.push(d.to_owned()),
            );
            deliveries.sort_by_key(|d| (d.delivered_at, d.packet.id));
            NetworkRun {
                deliveries,
                queue_drops: stats.queue_drops,
                route_drops: stats.route_drops,
                network: stats.network,
            }
        }
    }
}

/// Run packets through the network **without buffering deliveries**: each
/// delivery is handed to `on_delivery` as it happens (borrowed from the
/// slab, see [`StreamedDelivery`]) and its slot recycled immediately, so
/// whole-run engine memory is O(max in-flight) — the mode plane-driven
/// scenarios use. Simulation semantics, the hop-event stream and the drop
/// accounting are identical to [`run_network_with`]; only the delivery
/// presentation differs (processing order, not time-sorted).
pub fn run_network_streamed(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    run_network_streamed_sched(
        network,
        forwarder,
        injections,
        sink,
        SchedulerKind::default(),
        on_delivery,
    )
}

/// [`run_network_streamed`] with an explicit scheduler choice.
pub fn run_network_streamed_sched(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    scheduler: SchedulerKind,
    mut on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    run_slab(
        network,
        forwarder,
        injections,
        sink,
        RunOptions {
            scheduler,
            ..RunOptions::default()
        },
        &mut on_delivery,
    )
}

/// Run-shaping options for [`run_network_streamed_opts`] — the
/// full-featured slab-engine entry the robustness scenarios use.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions<'a> {
    /// Event scheduler (see [`SchedulerKind`]).
    pub scheduler: SchedulerKind,
    /// Timed fault script applied as the clock advances. `None` — and an
    /// empty script — are byte-identical to today's fault-free runs.
    pub faults: Option<&'a FaultScript>,
    /// Cooperative termination hook: when raised (typically by an online
    /// detector inside `sink`), the loop stops before its next event.
    pub stop: Option<&'a StopFlag>,
}

/// [`run_network_streamed`] with explicit [`RunOptions`]: scheduler
/// choice, mid-run fault injection and an early-termination hook. With
/// default options this is exactly [`run_network_streamed`]. Fault
/// injection is a slab-engine feature; the retained
/// [`EngineKind::MovingOracle`] stays fault-free.
pub fn run_network_streamed_opts(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    mut on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    run_slab(network, forwarder, injections, sink, opts, &mut on_delivery)
}

/// [`run_network_streamed_opts`] over a pull-based [`InjectionSource`]
/// instead of a materialized injection list — the O(buffer)-ingest entry
/// trace replay uses. The engine pulls injections lazily and merges them
/// against the scheduler head, so ingest-side memory is whatever the
/// source buffers (a fixed reorder window for the pcap replay source),
/// not O(run). Passing `&mut SortedVecSource::new(injections)` here is
/// byte-identical — deliveries, drop counters, the full
/// `HopEvent`/watermark sequence — to handing the same `injections` to
/// [`run_network_streamed_opts`]; `tests/trace_replay.rs` pins that.
///
/// Pass the source by `&mut` reference to keep it (and any counters it
/// carries, e.g. peak buffer occupancy) after the run.
pub fn run_network_streamed_source(
    network: Network,
    forwarder: &impl Forwarder,
    mut source: impl InjectionSource,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    mut on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    run_slab_source(
        network,
        forwarder,
        &mut source,
        sink,
        opts,
        &mut on_delivery,
    )
}

/// Slab-engine entry for `IntoIterator` injections: wrap them in a
/// [`SortedVecSource`] (stable sort by injection time, so same-time
/// injections keep their list order — exactly the moving oracle's
/// sequence-number tie-breaking) and drive the source-based core. Pending
/// injections live only in the source: they enter the slab — and count
/// against its peak — at injection time, not before.
fn run_slab(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    on_delivery: &mut impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    let mut source = SortedVecSource::new(injections);
    run_slab_source(network, forwarder, &mut source, sink, opts, on_delivery)
}

/// Slab-engine core over any [`InjectionSource`]: pick the scheduler
/// geometry from the source's span/len hints (the sorted-Vec adapter
/// reports exactly what the old collect-then-sort path measured from the
/// sorted ends; hint-less streaming sources get `for_spacing(0, 0)` — the
/// default geometry), then drive the merge loop.
fn run_slab_source(
    network: Network,
    forwarder: &impl Forwarder,
    source: &mut impl InjectionSource,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    on_delivery: &mut impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    match opts.scheduler {
        SchedulerKind::Calendar => {
            let span = source.span_hint().unwrap_or(0);
            let events = source.len_hint().unwrap_or(0);
            let sched = CalendarQueue::for_spacing(span, events);
            drive_slab(network, forwarder, source, sink, sched, opts, on_delivery)
        }
        SchedulerKind::CalendarFixed {
            bucket_ns_log2,
            buckets_log2,
        } => {
            let sched = CalendarQueue::with_geometry(bucket_ns_log2, buckets_log2);
            drive_slab(network, forwarder, source, sink, sched, opts, on_delivery)
        }
        SchedulerKind::Heap => drive_slab(
            network,
            forwarder,
            source,
            sink,
            HeapSchedule::new(),
            opts,
            on_delivery,
        ),
    }
}

/// Mutable engine state shared by the injection and scheduled-arrival
/// paths of the slab loop.
struct SlabEngine<'a, F, S, D> {
    network: Network,
    forwarder: &'a F,
    slab: PacketSlab,
    sink: &'a mut S,
    on_delivery: &'a mut D,
    queue_drops: Vec<u64>,
    route_drops: Vec<u64>,
    delivered: u64,
    events: u64,
    watermark: Option<SimTime>,
    /// Live fault state; `None` for fault-free runs, whose per-event cost
    /// is a skipped `Option` check (pinned byte-identical to the
    /// pre-fault engine).
    faults: Option<FaultState<'a>>,
}

impl<F: Forwarder, S: HopSink, D: FnMut(&StreamedDelivery<'_>)> SlabEngine<'_, F, S, D> {
    /// Emit one hop event for the packet in `slot` (which must be live).
    #[inline]
    fn emit(&mut self, kind: HopKind, node: usize, at: SimTime, slot: SlotId) {
        let st = self.slab.get(slot);
        self.sink.on_hop(&HopEvent {
            kind,
            node,
            at,
            packet: &st.packet,
            injected_node: st.injected_node,
            injected_at: st.injected_at,
            hops: st.hops(),
        });
    }

    /// Process one packet arrival at `node` — the entire per-event body of
    /// the engine, identical whether the packet was just injected or popped
    /// off the schedule. Mirrors the moving oracle event for event: same
    /// processing order, same `HopEvent`/watermark sequence.
    fn arrive(
        &mut self,
        at: SimTime,
        node: usize,
        slot: SlotId,
        schedule: &mut impl EventSchedule<SlotEvent>,
    ) {
        self.events += 1;
        if let Some(fs) = self.faults.as_mut() {
            let applied = fs.advance(at, &mut self.network);
            for i in applied {
                let ev = self.faults.as_ref().expect("faults present").event(i);
                self.sink.on_fault(&ev);
            }
        }
        if self.watermark.is_none_or(|w| at > w) {
            self.sink.on_watermark(at);
            self.watermark = Some(at);
        }
        self.emit(HopKind::Arrive, node, at, slot);
        if self.faults.as_ref().is_some_and(|f| f.lossy(node)) {
            // Loss burst: the packet dies here, accounted exactly like a
            // route drop so drop-aware taps see it.
            if let Some(fs) = self.faults.as_mut() {
                fs.fault_drops += 1;
            }
            self.route_drops[node] += 1;
            self.emit(HopKind::RouteDrop, node, at, slot);
            self.slab.release(slot);
            return;
        }
        let mut decision = self.forwarder.route(node, &self.slab.get(slot).packet);
        let mut blackholed = false;
        if let (RouteDecision::Forward(chosen), Some(fs)) = (decision, self.faults.as_ref()) {
            if fs.is_dead(node, chosen) {
                let dead = fs.dead_ports(node);
                decision =
                    match self
                        .forwarder
                        .reroute(node, &self.slab.get(slot).packet, chosen, &dead)
                    {
                        RouteDecision::Forward(alt) if !fs.is_dead(node, alt) => {
                            RouteDecision::Forward(alt)
                        }
                        RouteDecision::Deliver => RouteDecision::Deliver,
                        _ => {
                            blackholed = true;
                            RouteDecision::Drop
                        }
                    };
            }
        }
        if blackholed {
            if let Some(fs) = self.faults.as_mut() {
                fs.fault_drops += 1;
            }
        }
        match decision {
            RouteDecision::Drop => {
                self.route_drops[node] += 1;
                self.emit(HopKind::RouteDrop, node, at, slot);
                self.slab.release(slot);
            }
            RouteDecision::Deliver => self.deliver(at, node, slot),
            RouteDecision::Forward(port_id) => {
                self.forwarder
                    .on_forward(node, port_id, self.slab.packet_mut(slot));
                let verdict = {
                    let port = &mut self.network.nodes[node].ports[port_id];
                    port.queue.offer(at, &self.slab.get(slot).packet)
                };
                match verdict {
                    Verdict::Dropped => {
                        self.queue_drops[node] += 1;
                        self.emit(HopKind::QueueDrop { port: port_id }, node, at, slot);
                        self.slab.release(slot);
                    }
                    Verdict::Departs(departed) => {
                        self.emit(HopKind::Enqueue { port: port_id }, node, at, slot);
                        self.slab.push_hop(
                            slot,
                            Hop {
                                node,
                                port: port_id,
                                arrived: at,
                                departed,
                            },
                        );
                        self.emit(
                            HopKind::Dequeue {
                                port: port_id,
                                arrived: at,
                            },
                            node,
                            departed,
                            slot,
                        );
                        let port = &self.network.nodes[node].ports[port_id];
                        let (link_to, link_delay) = (port.link_to, port.link_delay);
                        match link_to {
                            Some(next) => {
                                schedule.push(
                                    departed + link_delay,
                                    SlotEvent {
                                        node: next as u32,
                                        slot,
                                    },
                                );
                            }
                            None => self.deliver(departed + link_delay, node, slot),
                        }
                    }
                }
            }
        }
    }

    /// Emit the `Deliver` hop event and the streamed delivery, then
    /// recycle the slot.
    fn deliver(&mut self, delivered_at: SimTime, node: usize, slot: SlotId) {
        self.emit(HopKind::Deliver, node, delivered_at, slot);
        {
            let st = self.slab.get(slot);
            (self.on_delivery)(&StreamedDelivery {
                packet: &st.packet,
                injected_node: st.injected_node,
                injected_at: st.injected_at,
                delivered_node: node,
                delivered_at,
                hops: st.hops(),
            });
        }
        self.delivered += 1;
        self.slab.release(slot);
    }
}

/// The slab engine's event loop: merge the time-ordered injection source
/// against the scheduler head — an injection due no later than the next
/// scheduled event wins the tie, exactly as its lower sequence number did
/// when the moving oracle pushed all injections up front. Each pull is
/// checked against the source contract (valid entry node, non-decreasing
/// injection time): a misordered source would emit `Arrive` events behind
/// the watermark and silently break every streaming consumer, so the
/// engine fails loudly instead.
fn drive_slab<F: Forwarder, S: HopSink, D: FnMut(&StreamedDelivery<'_>)>(
    network: Network,
    forwarder: &F,
    source: &mut impl InjectionSource,
    sink: &mut S,
    mut schedule: impl EventSchedule<SlotEvent>,
    opts: RunOptions<'_>,
    on_delivery: &mut D,
) -> NetworkRunStats {
    let n = network.nodes.len();
    let mut eng = SlabEngine {
        network,
        forwarder,
        slab: PacketSlab::new(),
        sink,
        on_delivery,
        queue_drops: vec![0u64; n],
        route_drops: vec![0u64; n],
        delivered: 0,
        events: 0,
        watermark: None,
        faults: opts.faults.map(FaultState::new),
    };
    let mut injected = 0u64;
    let mut last_injected_at = SimTime::ZERO;
    loop {
        if opts.stop.is_some_and(StopFlag::is_set) {
            break;
        }
        let due = match (source.peek(), schedule.peek_at()) {
            (Some(t), Some(head)) => t <= head,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if due {
            let (node, packet) = source.next_injection().expect("source peeked non-empty");
            assert!(node < n, "injection at unknown node {node}");
            let at = packet.created_at;
            assert!(
                at >= last_injected_at,
                "injection source went backwards: {} after {}",
                at.as_nanos(),
                last_injected_at.as_nanos()
            );
            last_injected_at = at;
            injected += 1;
            let slot = eng.slab.insert(packet, node, at);
            eng.arrive(at, node, slot, &mut schedule);
        } else {
            let (at, se) = schedule.pop().expect("peeked non-empty");
            eng.arrive(at, se.node as usize, se.slot, &mut schedule);
        }
    }

    NetworkRunStats {
        delivered: eng.delivered,
        queue_drops: eng.queue_drops,
        route_drops: eng.route_drops,
        injected,
        events: eng.events,
        peak_live_slots: eng.slab.peak_live(),
        hop_allocations: eng.slab.hop_allocations(),
        fault_drops: eng.faults.map_or(0, |f| f.fault_drops),
        network: eng.network,
    }
}

/// The retained pre-slab engine (see [`EngineKind::MovingOracle`]),
/// byte-for-byte the PR 4 implementation — including its pre-collection of
/// the injections for the adaptive calendar geometry, which the slab path
/// folds into the slab-fill pass instead.
fn run_moving(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    scheduler: SchedulerKind,
) -> NetworkRun {
    match scheduler {
        SchedulerKind::Calendar => {
            // Adaptive geometry: size buckets from the observed injection
            // spacing (injections undercount hop events by the mean path
            // length, but are the only spacing evidence available before
            // the run; `for_spacing` folds that in).
            let injections: Vec<(NodeId, Packet)> = injections.into_iter().collect();
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for (_, p) in &injections {
                let t = p.created_at.as_nanos();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            let span = hi.saturating_sub(if lo == u64::MAX { 0 } else { lo });
            let sched = CalendarQueue::for_spacing(span, injections.len());
            run_core(network, forwarder, injections, sink, sched)
        }
        SchedulerKind::CalendarFixed {
            bucket_ns_log2,
            buckets_log2,
        } => run_core(
            network,
            forwarder,
            injections,
            sink,
            CalendarQueue::with_geometry(bucket_ns_log2, buckets_log2),
        ),
        SchedulerKind::Heap => run_core(network, forwarder, injections, sink, HeapSchedule::new()),
    }
}

fn run_core(
    mut network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    mut schedule: impl EventSchedule<Event>,
) -> NetworkRun {
    let n = network.nodes.len();
    for (node, packet) in injections {
        assert!(node < n, "injection at unknown node {node}");
        schedule.push(
            packet.created_at,
            Event {
                node,
                injected_node: node,
                injected_at: packet.created_at,
                packet,
                hops: Vec::new(),
            },
        );
    }

    let mut deliveries = Vec::new();
    let mut queue_drops = vec![0u64; n];
    let mut route_drops = vec![0u64; n];

    let mut watermark: Option<SimTime> = None;
    while let Some((at, mut ev)) = schedule.pop() {
        if watermark.is_none_or(|w| at > w) {
            sink.on_watermark(at);
            watermark = Some(at);
        }
        sink.on_hop(&HopEvent {
            kind: HopKind::Arrive,
            node: ev.node,
            at,
            packet: &ev.packet,
            injected_node: ev.injected_node,
            injected_at: ev.injected_at,
            hops: &ev.hops,
        });
        match forwarder.route(ev.node, &ev.packet) {
            RouteDecision::Drop => {
                route_drops[ev.node] += 1;
                sink.on_hop(&HopEvent {
                    kind: HopKind::RouteDrop,
                    node: ev.node,
                    at,
                    packet: &ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    hops: &ev.hops,
                });
            }
            RouteDecision::Deliver => {
                sink.on_hop(&HopEvent {
                    kind: HopKind::Deliver,
                    node: ev.node,
                    at,
                    packet: &ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    hops: &ev.hops,
                });
                deliveries.push(NetDelivery {
                    packet: ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    delivered_node: ev.node,
                    delivered_at: at,
                    hops: ev.hops,
                });
            }
            RouteDecision::Forward(port_id) => {
                forwarder.on_forward(ev.node, port_id, &mut ev.packet);
                let port = &mut network.nodes[ev.node].ports[port_id];
                match port.queue.offer(at, &ev.packet) {
                    Verdict::Dropped => {
                        queue_drops[ev.node] += 1;
                        sink.on_hop(&HopEvent {
                            kind: HopKind::QueueDrop { port: port_id },
                            node: ev.node,
                            at,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                    }
                    Verdict::Departs(departed) => {
                        sink.on_hop(&HopEvent {
                            kind: HopKind::Enqueue { port: port_id },
                            node: ev.node,
                            at,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                        ev.hops.push(Hop {
                            node: ev.node,
                            port: port_id,
                            arrived: at,
                            departed,
                        });
                        sink.on_hop(&HopEvent {
                            kind: HopKind::Dequeue {
                                port: port_id,
                                arrived: at,
                            },
                            node: ev.node,
                            at: departed,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                        let (link_to, link_delay) = (port.link_to, port.link_delay);
                        match link_to {
                            Some(next) => {
                                schedule.push(
                                    departed + link_delay,
                                    Event {
                                        node: next,
                                        packet: ev.packet,
                                        injected_node: ev.injected_node,
                                        injected_at: ev.injected_at,
                                        hops: ev.hops,
                                    },
                                );
                            }
                            None => {
                                let delivered_at = departed + link_delay;
                                sink.on_hop(&HopEvent {
                                    kind: HopKind::Deliver,
                                    node: ev.node,
                                    at: delivered_at,
                                    packet: &ev.packet,
                                    injected_node: ev.injected_node,
                                    injected_at: ev.injected_at,
                                    hops: &ev.hops,
                                });
                                deliveries.push(NetDelivery {
                                    packet: ev.packet,
                                    injected_node: ev.injected_node,
                                    injected_at: ev.injected_at,
                                    delivered_node: ev.node,
                                    delivered_at,
                                    hops: ev.hops,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    deliveries.sort_by_key(|d| (d.delivered_at, d.packet.id));
    NetworkRun {
        deliveries,
        queue_drops,
        route_drops,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn qcfg() -> QueueConfig {
        QueueConfig {
            rate_bps: 8_000_000_000, // 1 B/ns
            capacity_bytes: 100_000,
            processing_delay: SimDuration::ZERO,
        }
    }

    fn pkt(id: u64, at_ns: u64, dport: u16) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000,
                Ipv4Addr::new(10, 1, 0, 1),
                dport,
            ),
            1000,
            SimTime::from_nanos(at_ns),
        )
    }

    /// A line of switches: everything forwards out port 0 until the last
    /// node, which delivers.
    struct LineForwarder {
        last: NodeId,
    }

    impl Forwarder for LineForwarder {
        fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
            if node == self.last {
                RouteDecision::Deliver
            } else {
                RouteDecision::Forward(0)
            }
        }
    }

    fn line(n: usize, link_ns: u64) -> Network {
        let mut net = Network::default();
        for i in 0..n {
            net.add_node(format!("S{i}"));
        }
        for i in 0..n - 1 {
            net.add_port(
                i,
                Port::to_switch(qcfg(), i + 1, SimDuration::from_nanos(link_ns)),
            );
        }
        net
    }

    #[test]
    fn single_hop_line_delay() {
        let net = line(3, 100);
        let run = run_network(net, &LineForwarder { last: 2 }, vec![(0, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries.len(), 1);
        let d = &run.deliveries[0];
        // 2 queues × 1000 ns tx + 2 links × 100 ns = 2200 ns.
        assert_eq!(d.delivered_at.as_nanos(), 2200);
        assert_eq!(d.hops.len(), 2);
        assert_eq!(d.hops[0].node, 0);
        assert_eq!(d.hops[1].node, 1);
        assert_eq!(d.true_delay().as_nanos(), 2200);
    }

    #[test]
    fn fifo_order_preserved_across_hops() {
        let net = line(2, 10);
        let inj: Vec<(NodeId, Packet)> = (0..100).map(|i| (0usize, pkt(i, i * 13, 80))).collect();
        let run = run_network(net, &LineForwarder { last: 1 }, inj);
        assert_eq!(run.deliveries.len(), 100);
        for w in run.deliveries.windows(2) {
            assert!(w[0].delivered_at <= w[1].delivered_at);
            assert!(w[0].packet.id < w[1].packet.id, "FIFO order violated");
        }
    }

    #[test]
    fn host_port_delivers_after_queueing() {
        let mut net = Network::default();
        let s = net.add_node("edge");
        net.add_port(s, Port::to_host(qcfg(), SimDuration::from_nanos(50)));
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, _p: &Packet) -> RouteDecision {
                RouteDecision::Forward(0)
            }
        }
        let run = run_network(net, &F, vec![(s, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries.len(), 1);
        // 1000 ns tx + 50 ns host link.
        assert_eq!(run.deliveries[0].delivered_at.as_nanos(), 1050);
        assert_eq!(run.deliveries[0].hops.len(), 1);
    }

    #[test]
    fn route_drop_counted() {
        let net = line(2, 10);
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, p: &Packet) -> RouteDecision {
                if p.flow.dport == 666 {
                    RouteDecision::Drop
                } else {
                    RouteDecision::Deliver
                }
            }
        }
        let run = run_network(net, &F, vec![(0, pkt(1, 0, 666)), (0, pkt(2, 5, 80))]);
        assert_eq!(run.route_drops[0], 1);
        assert_eq!(run.deliveries.len(), 1);
    }

    #[test]
    fn queue_drop_counted_and_packet_vanishes() {
        let mut net = Network::default();
        let s = net.add_node("sw");
        let mut cfg = qcfg();
        cfg.capacity_bytes = 1000; // fits exactly one packet
        net.add_port(s, Port::to_host(cfg, SimDuration::ZERO));
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, _p: &Packet) -> RouteDecision {
                RouteDecision::Forward(0)
            }
        }
        let run = run_network(
            net,
            &F,
            vec![(s, pkt(1, 0, 80)), (s, pkt(2, 0, 80)), (s, pkt(3, 0, 80))],
        );
        assert_eq!(run.deliveries.len(), 1, "only the first fits");
        assert_eq!(run.queue_drops[s], 2);
        assert_eq!(run.network.nodes[s].ports[0].queue.regular().drops, 2);
    }

    #[test]
    fn marking_hook_applies() {
        let net = line(2, 10);
        struct Marking;
        impl Forwarder for Marking {
            fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
                if node == 1 {
                    RouteDecision::Deliver
                } else {
                    RouteDecision::Forward(0)
                }
            }
            fn on_forward(&self, node: NodeId, _port: PortId, p: &mut Packet) {
                p.mark = node as u8 + 7;
            }
        }
        let run = run_network(net, &Marking, vec![(0, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries[0].packet.mark, 7);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let run_once = |sched: SchedulerKind| {
            let net = line(2, 10);
            let inj: Vec<(NodeId, Packet)> = (0..50).map(|i| (0usize, pkt(i, 0, 80))).collect(); // all at t=0
            run_network_sched(net, &LineForwarder { last: 1 }, inj, &mut NullSink, sched)
                .deliveries
                .iter()
                .map(|d| d.packet.id.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run_once(SchedulerKind::Calendar),
            run_once(SchedulerKind::Calendar)
        );
        // Heap and calendar schedulers break ties identically.
        assert_eq!(
            run_once(SchedulerKind::Calendar),
            run_once(SchedulerKind::Heap)
        );
    }

    #[test]
    fn node_lookup_by_name() {
        let net = line(3, 1);
        assert_eq!(net.node_by_name("S1"), Some(1));
        assert_eq!(net.node_by_name("nope"), None);
    }

    #[test]
    fn hop_stream_narrates_the_path() {
        let net = line(3, 100);
        let mut log: Vec<(HopKind, NodeId, u64)> = Vec::new();
        let mut sink = |ev: &HopEvent<'_>| log.push((ev.kind, ev.node, ev.at.as_nanos()));
        let run = run_network_with(
            net,
            &LineForwarder { last: 2 },
            vec![(0, pkt(1, 0, 80))],
            &mut sink,
        );
        assert_eq!(run.deliveries.len(), 1);
        let kinds: Vec<HopKind> = log.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                HopKind::Arrive,
                HopKind::Enqueue { port: 0 },
                HopKind::Dequeue {
                    port: 0,
                    arrived: SimTime::ZERO
                },
                HopKind::Arrive,
                HopKind::Enqueue { port: 0 },
                HopKind::Dequeue {
                    port: 0,
                    arrived: SimTime::from_nanos(1100)
                },
                HopKind::Arrive,
                HopKind::Deliver,
            ]
        );
        // Arrive events are globally time-ordered.
        let arrivals: Vec<u64> = log
            .iter()
            .filter(|(k, _, _)| *k == HopKind::Arrive)
            .map(|(_, _, t)| *t)
            .collect();
        assert_eq!(arrivals, vec![0, 1100, 2200]);
        // The final Deliver carries the delivery time.
        assert_eq!(log.last().unwrap().2, 2200);
    }

    #[test]
    fn hop_stream_reports_drops() {
        let net = line(2, 10);
        struct F;
        impl Forwarder for F {
            fn route(&self, node: NodeId, p: &Packet) -> RouteDecision {
                if p.flow.dport == 666 {
                    RouteDecision::Drop
                } else if node == 1 {
                    RouteDecision::Deliver
                } else {
                    RouteDecision::Forward(0)
                }
            }
        }
        let mut drops = Vec::new();
        let mut sink = |ev: &HopEvent<'_>| {
            if matches!(ev.kind, HopKind::RouteDrop | HopKind::QueueDrop { .. }) {
                drops.push((ev.kind, ev.packet.id.0));
            }
        };
        run_network_with(
            net,
            &F,
            vec![(0, pkt(1, 0, 666)), (0, pkt(2, 5, 80))],
            &mut sink,
        );
        assert_eq!(drops, vec![(HopKind::RouteDrop, 1)]);
    }

    #[test]
    fn watermark_is_monotone_and_bounds_future_events() {
        // The watermark contract streaming sinks rely on: strictly
        // increasing, and no event emitted after a watermark carries an
        // earlier `at`.
        struct W {
            marks: Vec<u64>,
            current: u64,
            violations: usize,
        }
        impl HopSink for W {
            fn on_hop(&mut self, ev: &HopEvent<'_>) {
                if ev.at.as_nanos() < self.current {
                    self.violations += 1;
                }
            }
            fn on_watermark(&mut self, watermark: SimTime) {
                self.marks.push(watermark.as_nanos());
                self.current = watermark.as_nanos();
            }
        }
        let mut sink = W {
            marks: Vec::new(),
            current: 0,
            violations: 0,
        };
        let net = line(3, 100);
        let inj: Vec<(NodeId, Packet)> = (0..50).map(|i| (0usize, pkt(i, i * 37, 80))).collect();
        run_network_with(net, &LineForwarder { last: 2 }, inj, &mut sink);
        assert!(!sink.marks.is_empty());
        for w in sink.marks.windows(2) {
            assert!(w[0] < w[1], "watermark not strictly increasing: {w:?}");
        }
        assert_eq!(sink.violations, 0, "events ran behind the watermark");
    }

    #[test]
    fn calendar_fixed_override_matches_default_run() {
        let run_once = |sched: SchedulerKind| {
            let net = line(3, 100);
            let inj: Vec<(NodeId, Packet)> =
                (0..80).map(|i| (0usize, pkt(i, i * 53, 80))).collect();
            run_network_sched(net, &LineForwarder { last: 2 }, inj, &mut NullSink, sched)
                .deliveries
                .iter()
                .map(|d| (d.delivered_at.as_nanos(), d.packet.id.0))
                .collect::<Vec<_>>()
        };
        let adaptive = run_once(SchedulerKind::Calendar);
        assert_eq!(adaptive, run_once(SchedulerKind::Heap));
        // Deliberately pathological override: still byte-identical.
        assert_eq!(
            adaptive,
            run_once(SchedulerKind::CalendarFixed {
                bucket_ns_log2: 1,
                buckets_log2: 2
            })
        );
    }

    /// One flattened delivery: id, time, node, hop tuples.
    type DeliveryPrint = (u64, u64, usize, Vec<(usize, usize, u64, u64)>);

    /// Deliveries, drop counters and hop records of a run, flattened for
    /// equality checks across engines.
    fn run_fingerprint(run: &NetworkRun) -> (Vec<DeliveryPrint>, Vec<u64>, Vec<u64>) {
        (
            run.deliveries
                .iter()
                .map(|d| {
                    (
                        d.packet.id.0,
                        d.delivered_at.as_nanos(),
                        d.delivered_node,
                        d.hops
                            .iter()
                            .map(|h| (h.node, h.port, h.arrived.as_nanos(), h.departed.as_nanos()))
                            .collect(),
                    )
                })
                .collect(),
            run.queue_drops.clone(),
            run.route_drops.clone(),
        )
    }

    #[test]
    fn slab_engine_matches_moving_oracle() {
        // Ties (all at t=0) + a shallow queue forcing drops: the regimes
        // where event order and slot recycling could diverge.
        let build = || {
            let mut net = Network::default();
            let a = net.add_node("a");
            let b = net.add_node("b");
            let mut cfg = qcfg();
            cfg.capacity_bytes = 4_000; // 4 packets deep
            net.add_port(a, Port::to_switch(cfg, b, SimDuration::from_nanos(10)));
            net.add_port(b, Port::to_host(cfg, SimDuration::from_nanos(10)));
            net
        };
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, p: &Packet) -> RouteDecision {
                if p.flow.dport == 666 {
                    RouteDecision::Drop
                } else {
                    RouteDecision::Forward(0)
                }
            }
        }
        let inj: Vec<(NodeId, Packet)> = (0..200)
            .map(|i| {
                (
                    0usize,
                    pkt(i, (i / 10) * 500, if i % 17 == 0 { 666 } else { 80 }),
                )
            })
            .collect();
        for sched in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let slab = run_network_engine(
                build(),
                &F,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::Slab,
            );
            let oracle = run_network_engine(
                build(),
                &F,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::MovingOracle,
            );
            assert_eq!(run_fingerprint(&slab), run_fingerprint(&oracle));
            assert!(slab.queue_drops.iter().sum::<u64>() > 0, "drops exercised");
            assert!(slab.route_drops[0] > 0, "route drops exercised");
        }
    }

    #[test]
    fn streamed_mode_matches_buffered_and_recycles_slots() {
        // 5000 packets spread over a long span through a 3-switch line:
        // only a handful are ever concurrently in flight, and the streamed
        // stats must reflect that — not the injected count.
        let inj: Vec<(NodeId, Packet)> = (0..5_000)
            .map(|i| (0usize, pkt(i, i * 2_500, 80)))
            .collect();
        let buffered = run_network(line(3, 100), &LineForwarder { last: 2 }, inj.clone());
        let mut streamed: Vec<(u64, u64, usize)> = Vec::new();
        let stats = run_network_streamed(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut NullSink,
            |d| {
                assert_eq!(
                    d.true_delay(),
                    d.delivered_at.saturating_since(d.injected_at)
                );
                streamed.push((d.packet.id.0, d.delivered_at.as_nanos(), d.delivered_node));
            },
        );
        streamed.sort_by_key(|&(id, at, _)| (at, id));
        let expect: Vec<(u64, u64, usize)> = buffered
            .deliveries
            .iter()
            .map(|d| (d.packet.id.0, d.delivered_at.as_nanos(), d.delivered_node))
            .collect();
        assert_eq!(streamed, expect);
        assert_eq!(stats.delivered, 5_000);
        assert_eq!(stats.injected, 5_000);
        assert_eq!(stats.queue_drops, buffered.queue_drops);
        assert_eq!(stats.route_drops, buffered.route_drops);
        // The memory bound the slab exists for: O(in-flight), not O(run).
        assert!(
            stats.peak_live_slots < 50,
            "peak {} slots for 5000 injected",
            stats.peak_live_slots
        );
        assert!(
            stats.hop_allocations < 200,
            "{} hop allocations for 5000 packets × 2 hops",
            stats.hop_allocations
        );
        assert!(stats.events >= 3 * 5_000, "arrivals at 3 switches");
    }

    use crate::fault::{FaultEvent, FaultKind};

    /// The watermark-contract sink shared by the fault-regime tests:
    /// strictly increasing marks, no event behind the current mark.
    struct WatermarkCheck {
        marks: Vec<u64>,
        current: u64,
        violations: usize,
    }

    impl WatermarkCheck {
        fn new() -> Self {
            WatermarkCheck {
                marks: Vec::new(),
                current: 0,
                violations: 0,
            }
        }

        fn assert_contract(&self) {
            assert!(!self.marks.is_empty());
            for w in self.marks.windows(2) {
                assert!(w[0] < w[1], "watermark not strictly increasing: {w:?}");
            }
            assert_eq!(self.violations, 0, "events ran behind the watermark");
        }
    }

    impl HopSink for WatermarkCheck {
        fn on_hop(&mut self, ev: &HopEvent<'_>) {
            if ev.at.as_nanos() < self.current {
                self.violations += 1;
            }
        }
        fn on_watermark(&mut self, watermark: SimTime) {
            self.marks.push(watermark.as_nanos());
            self.current = watermark.as_nanos();
        }
    }

    #[test]
    fn empty_fault_script_is_byte_identical() {
        let inj: Vec<(NodeId, Packet)> = (0..300)
            .map(|i| (0usize, pkt(i, (i / 5) * 700, 80)))
            .collect();
        let plain = run_network(line(3, 100), &LineForwarder { last: 2 }, inj.clone());
        let script = FaultScript::empty();
        let mut deliveries: Vec<NetDelivery> = Vec::new();
        let stats = run_network_streamed_opts(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut NullSink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |d| deliveries.push(d.to_owned()),
        );
        deliveries.sort_by_key(|d| (d.delivered_at, d.packet.id));
        assert_eq!(run_fingerprint(&plain).0.len(), deliveries.len());
        for (a, b) in plain.deliveries.iter().zip(&deliveries) {
            assert_eq!(a.packet.id, b.packet.id);
            assert_eq!(a.delivered_at, b.delivered_at);
            assert_eq!(a.hops, b.hops);
        }
        assert_eq!(stats.queue_drops, plain.queue_drops);
        assert_eq!(stats.route_drops, plain.route_drops);
        assert_eq!(stats.fault_drops, 0);
    }

    #[test]
    fn loss_burst_drops_only_inside_window_and_keeps_watermarks_monotone() {
        // 100 packets, 1 every 1000 ns; burst at node 1 covers arrivals
        // whose node-1 arrival time lands in [20_000, 40_000).
        let inj: Vec<(NodeId, Packet)> = (0..100).map(|i| (0usize, pkt(i, i * 1000, 80))).collect();
        let script = FaultScript::new(vec![
            FaultEvent {
                at: SimTime::from_nanos(20_000),
                kind: FaultKind::LossBurstStart { node: 1 },
            },
            FaultEvent {
                at: SimTime::from_nanos(40_000),
                kind: FaultKind::LossBurstEnd { node: 1 },
            },
        ]);
        let mut sink = WatermarkCheck::new();
        let mut delivered_ids: Vec<u64> = Vec::new();
        let stats = run_network_streamed_opts(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut sink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |d| delivered_ids.push(d.packet.id.0),
        );
        sink.assert_contract();
        assert!(stats.fault_drops > 0, "burst killed nobody");
        assert_eq!(stats.route_drops[1], stats.fault_drops);
        assert_eq!(stats.delivered + stats.fault_drops, 100);
        // Deaths are contiguous in injection order (fixed per-hop delay):
        // exactly one id gap, of exactly the burst's width.
        delivered_ids.sort_unstable();
        let gaps: Vec<u64> = delivered_ids
            .windows(2)
            .map(|w| w[1] - w[0] - 1)
            .filter(|&g| g > 0)
            .collect();
        assert_eq!(gaps, vec![stats.fault_drops]);
    }

    #[test]
    fn link_failure_blackholes_then_recovery_restores_and_watermarks_hold() {
        let inj: Vec<(NodeId, Packet)> = (0..100).map(|i| (0usize, pkt(i, i * 1500, 80))).collect();
        // Node 1's only egress (port 0) dies and later recovers; the line
        // forwarder knows no alternative, so the default reroute
        // blackholes — counted as route drops at node 1.
        let script = FaultScript::new(vec![
            FaultEvent {
                at: SimTime::from_nanos(30_000),
                kind: FaultKind::LinkDown { node: 1, port: 0 },
            },
            FaultEvent {
                at: SimTime::from_nanos(60_000),
                kind: FaultKind::LinkUp { node: 1, port: 0 },
            },
        ]);
        let mut sink = WatermarkCheck::new();
        let mut delivered = 0u64;
        let stats = run_network_streamed_opts(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut sink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |_| delivered += 1,
        );
        sink.assert_contract();
        assert!(stats.fault_drops > 0, "dead link dropped nobody");
        assert_eq!(stats.route_drops[1], stats.fault_drops);
        assert_eq!(delivered + stats.fault_drops, 100);
        assert!(delivered > 50, "recovery should restore most deliveries");
    }

    #[test]
    fn reroute_hook_diverts_to_live_ecmp_sibling() {
        // A diamond: node 0 has two equal ports to nodes 1 and 2, both of
        // which forward to 3. The forwarder always picks port 0; reroute
        // falls over to port 1 when it is dead.
        let build = || {
            let mut net = Network::default();
            let s = net.add_node("s");
            let a = net.add_node("a");
            let b = net.add_node("b");
            let t = net.add_node("t");
            net.add_port(s, Port::to_switch(qcfg(), a, SimDuration::from_nanos(10)));
            net.add_port(s, Port::to_switch(qcfg(), b, SimDuration::from_nanos(10)));
            net.add_port(a, Port::to_switch(qcfg(), t, SimDuration::from_nanos(10)));
            net.add_port(b, Port::to_switch(qcfg(), t, SimDuration::from_nanos(10)));
            net
        };
        struct Ecmp;
        impl Forwarder for Ecmp {
            fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
                if node == 3 {
                    RouteDecision::Deliver
                } else {
                    RouteDecision::Forward(0)
                }
            }
            fn reroute(
                &self,
                node: NodeId,
                _p: &Packet,
                chosen: PortId,
                dead: &crate::fault::DeadPorts<'_>,
            ) -> RouteDecision {
                // Node 0 has an equal-cost sibling; elsewhere, blackhole.
                if node == 0 && chosen == 0 && !dead.is_dead(1) {
                    RouteDecision::Forward(1)
                } else {
                    RouteDecision::Drop
                }
            }
        }
        let inj: Vec<(NodeId, Packet)> = (0..40).map(|i| (0usize, pkt(i, i * 2000, 80))).collect();
        let script = FaultScript::new(vec![FaultEvent {
            at: SimTime::from_nanos(20_000),
            kind: FaultKind::LinkDown { node: 0, port: 0 },
        }]);
        let mut via: Vec<usize> = Vec::new();
        let stats = run_network_streamed_opts(
            build(),
            &Ecmp,
            inj,
            &mut NullSink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |d| via.push(d.hops[1].node),
        );
        assert_eq!(stats.delivered, 40, "ECMP sibling must absorb the fault");
        assert_eq!(stats.fault_drops, 0);
        assert!(
            via.contains(&1) && via.contains(&2),
            "both paths used: {via:?}"
        );
    }

    #[test]
    fn slow_switch_onset_and_clearance_shift_delays() {
        // One packet before onset, one during degradation, one after
        // clearance; spacing large enough that queues idle in between.
        let inj = vec![
            (0usize, pkt(1, 0, 80)),
            (0usize, pkt(2, 100_000, 80)),
            (0usize, pkt(3, 200_000, 80)),
        ];
        let extra = SimDuration::from_nanos(5_000);
        let script = FaultScript::new(vec![
            FaultEvent {
                at: SimTime::from_nanos(50_000),
                kind: FaultKind::SlowSwitch { node: 1, extra },
            },
            FaultEvent {
                at: SimTime::from_nanos(150_000),
                kind: FaultKind::ClearSwitch { node: 1 },
            },
        ]);
        let mut delays: Vec<u64> = Vec::new();
        run_network_streamed_opts(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut NullSink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |d| delays.push(d.true_delay().as_nanos()),
        );
        delays.sort_unstable();
        assert_eq!(delays.len(), 3);
        assert_eq!(delays[0], delays[1], "pre-onset and post-clear identical");
        assert_eq!(
            delays[2],
            delays[0] + extra.as_nanos(),
            "degradation adds exactly the scripted extra at the one slowed hop"
        );
    }

    #[test]
    fn stop_flag_halts_the_run_early() {
        let inj: Vec<(NodeId, Packet)> = (0..100).map(|i| (0usize, pkt(i, i * 1000, 80))).collect();
        let stop = StopFlag::new();
        let raise_at = SimTime::from_nanos(50_000);
        let handle = stop.clone();
        let mut sink = move |ev: &HopEvent<'_>| {
            if ev.at >= raise_at {
                handle.request_stop();
            }
        };
        let stats = run_network_streamed_opts(
            line(3, 100),
            &LineForwarder { last: 2 },
            inj,
            &mut sink,
            RunOptions {
                stop: Some(&stop),
                ..RunOptions::default()
            },
            |_| {},
        );
        assert!(stats.delivered < 100, "run should have stopped early");
        assert!(stats.delivered > 10, "but not immediately");
        assert!(stop.is_set());
    }

    #[test]
    fn hop_stream_matches_ground_truth_hops() {
        let net = line(3, 100);
        let inj: Vec<(NodeId, Packet)> = (0..20).map(|i| (0usize, pkt(i, i * 400, 80))).collect();
        let mut dequeues: Vec<(u64, NodeId, u64, u64)> = Vec::new(); // (pkt, node, arrived, departed)
        let mut sink = |ev: &HopEvent<'_>| {
            if let HopKind::Dequeue { arrived, .. } = ev.kind {
                dequeues.push((
                    ev.packet.id.0,
                    ev.node,
                    arrived.as_nanos(),
                    ev.at.as_nanos(),
                ));
            }
        };
        let run = run_network_with(net, &LineForwarder { last: 2 }, inj, &mut sink);
        let mut from_truth: Vec<(u64, NodeId, u64, u64)> = run
            .deliveries
            .iter()
            .flat_map(|d| {
                d.hops.iter().map(|h| {
                    (
                        d.packet.id.0,
                        h.node,
                        h.arrived.as_nanos(),
                        h.departed.as_nanos(),
                    )
                })
            })
            .collect();
        dequeues.sort_unstable();
        from_truth.sort_unstable();
        assert_eq!(dequeues, from_truth);
    }
}
