//! Event-driven simulation of arbitrary switch topologies.
//!
//! The tandem pipeline covers the paper's Fig. 3 evaluation; the RLIR
//! architecture itself (§3) lives on a *fat-tree*, where packets traverse
//! ToR → edge → core → edge → ToR with ECMP choosing among equal-cost ports.
//! This module provides the general engine: switches with per-output-port
//! [`FifoQueue`]s, links with propagation delay, a pluggable [`Forwarder`]
//! (implemented by `rlir-topo`), and per-packet hop-by-hop ground truth.
//!
//! Events are drained in (time, sequence) order from a bucketed
//! [`CalendarQueue`](crate::sched::CalendarQueue) (heap fallback for
//! far-future events; the original `BinaryHeap` is kept behind
//! [`SchedulerKind::Heap`] as the differential oracle), so the simulation is
//! deterministic and every queue sees time-ordered arrivals.
//!
//! ## The hop-event stream
//!
//! [`run_network_with`] additionally emits a typed, allocation-free stream
//! of [`HopEvent`]s to a [`HopSink`] — every switch arrival, queue
//! enqueue/dequeue, drop and delivery, each carrying the packet by
//! reference plus the hop record accumulated so far. This is the
//! measurement plane's observation point: an RLI instance "deployed at a
//! router" is a sink that watches one `(node, port)` tap of this stream
//! (see `rlir::plane::MeasurementPlane`). Sink callbacks are invoked in
//! engine processing order: [`HopKind::Arrive`] events are therefore
//! globally time-ordered, while dequeue/delivery timestamps may run ahead
//! of the engine clock (the analytic queues decide departure at offer
//! time) — consumers that need strict delivery-time order sort per tap, as
//! [`NetworkRun::deliveries`] itself is sorted.

use crate::queue::{FifoQueue, QueueConfig, Verdict};
use crate::sched::{CalendarQueue, EventSchedule, HeapSchedule};
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};

/// Index of a switch in the network.
pub type NodeId = usize;
/// Index of a port within a switch.
pub type PortId = usize;

/// One output port: a queue draining onto a link.
#[derive(Debug, Clone)]
pub struct Port {
    /// The output queue.
    pub queue: FifoQueue,
    /// Switch at the far end of the link; `None` for a host-facing port
    /// (packets delivered after queueing).
    pub link_to: Option<NodeId>,
    /// Propagation delay of the attached link.
    pub link_delay: SimDuration,
}

impl Port {
    /// A port towards another switch.
    pub fn to_switch(cfg: QueueConfig, node: NodeId, link_delay: SimDuration) -> Self {
        Port {
            queue: FifoQueue::new(cfg),
            link_to: Some(node),
            link_delay,
        }
    }

    /// A host-facing port (delivery after queueing).
    pub fn to_host(cfg: QueueConfig, link_delay: SimDuration) -> Self {
        Port {
            queue: FifoQueue::new(cfg),
            link_to: None,
            link_delay,
        }
    }
}

/// A switch: a named collection of output ports.
#[derive(Debug, Clone)]
pub struct SwitchNode {
    /// Human-readable name (e.g. `"T1"`, `"C3"` as in the paper's Fig. 1).
    pub name: String,
    /// Output ports.
    pub ports: Vec<Port>,
}

/// The switch graph.
#[derive(Debug, Clone, Default)]
pub struct Network {
    /// All switches, indexed by [`NodeId`].
    pub nodes: Vec<SwitchNode>,
}

impl Network {
    /// Add a switch, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(SwitchNode {
            name: name.into(),
            ports: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Add a port to `node`, returning its port id.
    pub fn add_port(&mut self, node: NodeId, port: Port) -> PortId {
        self.nodes[node].ports.push(port);
        self.nodes[node].ports.len() - 1
    }

    /// Look up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }
}

/// Forwarding decision for one packet at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Send out this port (queueing applies; if the port is host-facing the
    /// packet is delivered at its queue departure time).
    Forward(PortId),
    /// Deliver immediately at this switch (no further queueing) — used when
    /// the measurement point is the switch ingress.
    Deliver,
    /// Administratively drop (no route).
    Drop,
}

/// The routing/marking plane, implemented by the topology crate.
pub trait Forwarder {
    /// Choose what `node` does with `packet`.
    fn route(&self, node: NodeId, packet: &Packet) -> RouteDecision;

    /// Hook invoked when `node` forwards `packet` out `port` — RLIR's
    /// packet-marking demultiplexer stamps the ToS byte here (§3.1).
    fn on_forward(&self, node: NodeId, port: PortId, packet: &mut Packet) {
        let _ = (node, port, packet);
    }
}

/// One traversed hop in a packet's ground-truth record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The switch.
    pub node: NodeId,
    /// The egress port taken.
    pub port: PortId,
    /// Arrival at the switch.
    pub arrived: SimTime,
    /// Departure from the switch (last bit out).
    pub departed: SimTime,
}

/// What a [`HopEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// The packet arrived at the switch ([`HopEvent::at`] = arrival time).
    /// These events are emitted in global time order.
    Arrive,
    /// The packet was accepted into an output queue (`at` = arrival time;
    /// the marking hook has already run).
    Enqueue {
        /// The egress port.
        port: PortId,
    },
    /// The packet's last bit left the port (`at` = departure time, which
    /// the analytic queue computed at enqueue; `arrived` is its arrival at
    /// the switch). [`HopEvent::hops`] already includes this hop.
    Dequeue {
        /// The egress port.
        port: PortId,
        /// Arrival at the switch.
        arrived: SimTime,
    },
    /// Drop-tail discarded the packet at an output queue (`at` = arrival).
    QueueDrop {
        /// The egress port.
        port: PortId,
    },
    /// The forwarder had no route (`at` = arrival).
    RouteDrop,
    /// The packet left the network at this switch (`at` = delivery time;
    /// `hops` is the complete path record).
    Deliver,
}

/// One typed observation from the engine's per-hop stream — the
/// measurement plane's raw input. Borrowed, allocation-free: the packet
/// and the hop record live in the engine's event.
#[derive(Debug, Clone, Copy)]
pub struct HopEvent<'a> {
    /// What happened.
    pub kind: HopKind,
    /// Where.
    pub node: NodeId,
    /// When (see [`HopKind`] for which timestamp each kind carries).
    pub at: SimTime,
    /// The packet, marks applied so far.
    pub packet: &'a Packet,
    /// Where the packet entered the network.
    pub injected_node: NodeId,
    /// When the packet entered the network.
    pub injected_at: SimTime,
    /// Hops completed so far (complete path for [`HopKind::Deliver`]).
    pub hops: &'a [Hop],
}

/// A consumer of the engine's hop-event stream.
pub trait HopSink {
    /// Observe one event. Called synchronously from the engine loop.
    fn on_hop(&mut self, ev: &HopEvent<'_>);

    /// The engine's **event-time watermark** advanced to `watermark`.
    ///
    /// Called by [`run_network_with`] each time the scheduler's clock moves
    /// forward (strictly increasing across calls), *before* the events at
    /// that time are emitted. The contract, which streaming consumers build
    /// bounded reorder windows on:
    ///
    /// * every subsequent [`HopEvent`] — of any [`HopKind`] — carries
    ///   `ev.at >= watermark` (departure/delivery timestamps are computed
    ///   at enqueue and are never earlier than the enqueue-time clock);
    /// * timestamps inside a future event's hop record can lie *before*
    ///   the watermark by at most the packet's residence time between that
    ///   hop and the event (a delivered-gated tap reconstructing upstream
    ///   crossings therefore lags by at most the downstream path delay).
    ///
    /// The default implementation ignores the watermark.
    fn on_watermark(&mut self, watermark: SimTime) {
        let _ = watermark;
    }
}

/// Closures are sinks.
impl<F: FnMut(&HopEvent<'_>)> HopSink for F {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self(ev)
    }
}

/// The no-op sink used by [`run_network`]; its callbacks compile away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl HopSink for NullSink {
    #[inline(always)]
    fn on_hop(&mut self, _ev: &HopEvent<'_>) {}
}

/// Ground-truth record of a packet that exited the network.
#[derive(Debug, Clone)]
pub struct NetDelivery {
    /// The packet as delivered (marks applied).
    pub packet: Packet,
    /// Where it was injected.
    pub injected_node: NodeId,
    /// When it was injected.
    pub injected_at: SimTime,
    /// The switch at which it was delivered.
    pub delivered_node: NodeId,
    /// Delivery time.
    pub delivered_at: SimTime,
    /// Every switch traversal, in order.
    pub hops: Vec<Hop>,
}

impl NetDelivery {
    /// True end-to-end delay.
    pub fn true_delay(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.injected_at)
    }
}

/// Aggregate result of a network run.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// Deliveries in delivery-time order.
    pub deliveries: Vec<NetDelivery>,
    /// Packets dropped by queues, per node.
    pub queue_drops: Vec<u64>,
    /// Packets dropped for lack of a route, per node.
    pub route_drops: Vec<u64>,
    /// The network with final queue states (counters).
    pub network: Network,
}

/// Which event scheduler drives the run (see [`crate::sched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Bucketed calendar queue with heap fallback, its geometry picked
    /// adaptively from the injected workload's event spacing (the default;
    /// see [`CalendarQueue::for_spacing`]).
    #[default]
    Calendar,
    /// Calendar queue with an explicit geometry — the configuration
    /// override for workloads whose hop-event density differs wildly from
    /// their injection density.
    CalendarFixed {
        /// `log2` of the bucket width in nanoseconds.
        bucket_ns_log2: u32,
        /// `log2` of the bucket count per rotation.
        buckets_log2: u32,
    },
    /// The original binary heap — differential oracle / benchmark baseline.
    Heap,
}

#[derive(Debug)]
struct Event {
    node: NodeId,
    packet: Packet,
    injected_node: NodeId,
    injected_at: SimTime,
    hops: Vec<Hop>,
}

/// Run packets through the network.
///
/// `injections` is a list of `(entry_node, packet)`; each packet enters the
/// network at `packet.created_at`. Returns deliveries plus per-node drop
/// counts; final per-port queue counters are available in the returned
/// network.
pub fn run_network(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
) -> NetworkRun {
    run_network_with(network, forwarder, injections, &mut NullSink)
}

/// Run packets through the network, streaming every per-hop observation to
/// `sink` (see [`HopEvent`]). Identical simulation semantics to
/// [`run_network`]; the sink is purely observational.
pub fn run_network_with(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
) -> NetworkRun {
    run_network_sched(
        network,
        forwarder,
        injections,
        sink,
        SchedulerKind::default(),
    )
}

/// [`run_network_with`] with an explicit scheduler choice — the two
/// schedulers produce byte-identical runs (pinned by the scheduler property
/// tests); `Heap` exists for differential testing and benchmarking.
pub fn run_network_sched(
    network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    scheduler: SchedulerKind,
) -> NetworkRun {
    match scheduler {
        SchedulerKind::Calendar => {
            // Adaptive geometry: size buckets from the observed injection
            // spacing (injections undercount hop events by the mean path
            // length, but are the only spacing evidence available before
            // the run; `for_spacing` folds that in).
            let injections: Vec<(NodeId, Packet)> = injections.into_iter().collect();
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for (_, p) in &injections {
                let t = p.created_at.as_nanos();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            let span = hi.saturating_sub(if lo == u64::MAX { 0 } else { lo });
            let sched = CalendarQueue::for_spacing(span, injections.len());
            run_core(network, forwarder, injections, sink, sched)
        }
        SchedulerKind::CalendarFixed {
            bucket_ns_log2,
            buckets_log2,
        } => run_core(
            network,
            forwarder,
            injections,
            sink,
            CalendarQueue::with_geometry(bucket_ns_log2, buckets_log2),
        ),
        SchedulerKind::Heap => run_core(network, forwarder, injections, sink, HeapSchedule::new()),
    }
}

fn run_core(
    mut network: Network,
    forwarder: &impl Forwarder,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    mut schedule: impl EventSchedule<Event>,
) -> NetworkRun {
    let n = network.nodes.len();
    for (node, packet) in injections {
        assert!(node < n, "injection at unknown node {node}");
        schedule.push(
            packet.created_at,
            Event {
                node,
                injected_node: node,
                injected_at: packet.created_at,
                packet,
                hops: Vec::new(),
            },
        );
    }

    let mut deliveries = Vec::new();
    let mut queue_drops = vec![0u64; n];
    let mut route_drops = vec![0u64; n];

    let mut watermark: Option<SimTime> = None;
    while let Some((at, mut ev)) = schedule.pop() {
        if watermark.is_none_or(|w| at > w) {
            sink.on_watermark(at);
            watermark = Some(at);
        }
        sink.on_hop(&HopEvent {
            kind: HopKind::Arrive,
            node: ev.node,
            at,
            packet: &ev.packet,
            injected_node: ev.injected_node,
            injected_at: ev.injected_at,
            hops: &ev.hops,
        });
        match forwarder.route(ev.node, &ev.packet) {
            RouteDecision::Drop => {
                route_drops[ev.node] += 1;
                sink.on_hop(&HopEvent {
                    kind: HopKind::RouteDrop,
                    node: ev.node,
                    at,
                    packet: &ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    hops: &ev.hops,
                });
            }
            RouteDecision::Deliver => {
                sink.on_hop(&HopEvent {
                    kind: HopKind::Deliver,
                    node: ev.node,
                    at,
                    packet: &ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    hops: &ev.hops,
                });
                deliveries.push(NetDelivery {
                    packet: ev.packet,
                    injected_node: ev.injected_node,
                    injected_at: ev.injected_at,
                    delivered_node: ev.node,
                    delivered_at: at,
                    hops: ev.hops,
                });
            }
            RouteDecision::Forward(port_id) => {
                forwarder.on_forward(ev.node, port_id, &mut ev.packet);
                let port = &mut network.nodes[ev.node].ports[port_id];
                match port.queue.offer(at, &ev.packet) {
                    Verdict::Dropped => {
                        queue_drops[ev.node] += 1;
                        sink.on_hop(&HopEvent {
                            kind: HopKind::QueueDrop { port: port_id },
                            node: ev.node,
                            at,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                    }
                    Verdict::Departs(departed) => {
                        sink.on_hop(&HopEvent {
                            kind: HopKind::Enqueue { port: port_id },
                            node: ev.node,
                            at,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                        ev.hops.push(Hop {
                            node: ev.node,
                            port: port_id,
                            arrived: at,
                            departed,
                        });
                        sink.on_hop(&HopEvent {
                            kind: HopKind::Dequeue {
                                port: port_id,
                                arrived: at,
                            },
                            node: ev.node,
                            at: departed,
                            packet: &ev.packet,
                            injected_node: ev.injected_node,
                            injected_at: ev.injected_at,
                            hops: &ev.hops,
                        });
                        let (link_to, link_delay) = (port.link_to, port.link_delay);
                        match link_to {
                            Some(next) => {
                                schedule.push(
                                    departed + link_delay,
                                    Event {
                                        node: next,
                                        packet: ev.packet,
                                        injected_node: ev.injected_node,
                                        injected_at: ev.injected_at,
                                        hops: ev.hops,
                                    },
                                );
                            }
                            None => {
                                let delivered_at = departed + link_delay;
                                sink.on_hop(&HopEvent {
                                    kind: HopKind::Deliver,
                                    node: ev.node,
                                    at: delivered_at,
                                    packet: &ev.packet,
                                    injected_node: ev.injected_node,
                                    injected_at: ev.injected_at,
                                    hops: &ev.hops,
                                });
                                deliveries.push(NetDelivery {
                                    packet: ev.packet,
                                    injected_node: ev.injected_node,
                                    injected_at: ev.injected_at,
                                    delivered_node: ev.node,
                                    delivered_at,
                                    hops: ev.hops,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    deliveries.sort_by_key(|d| (d.delivered_at, d.packet.id));
    NetworkRun {
        deliveries,
        queue_drops,
        route_drops,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn qcfg() -> QueueConfig {
        QueueConfig {
            rate_bps: 8_000_000_000, // 1 B/ns
            capacity_bytes: 100_000,
            processing_delay: SimDuration::ZERO,
        }
    }

    fn pkt(id: u64, at_ns: u64, dport: u16) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000,
                Ipv4Addr::new(10, 1, 0, 1),
                dport,
            ),
            1000,
            SimTime::from_nanos(at_ns),
        )
    }

    /// A line of switches: everything forwards out port 0 until the last
    /// node, which delivers.
    struct LineForwarder {
        last: NodeId,
    }

    impl Forwarder for LineForwarder {
        fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
            if node == self.last {
                RouteDecision::Deliver
            } else {
                RouteDecision::Forward(0)
            }
        }
    }

    fn line(n: usize, link_ns: u64) -> Network {
        let mut net = Network::default();
        for i in 0..n {
            net.add_node(format!("S{i}"));
        }
        for i in 0..n - 1 {
            net.add_port(
                i,
                Port::to_switch(qcfg(), i + 1, SimDuration::from_nanos(link_ns)),
            );
        }
        net
    }

    #[test]
    fn single_hop_line_delay() {
        let net = line(3, 100);
        let run = run_network(net, &LineForwarder { last: 2 }, vec![(0, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries.len(), 1);
        let d = &run.deliveries[0];
        // 2 queues × 1000 ns tx + 2 links × 100 ns = 2200 ns.
        assert_eq!(d.delivered_at.as_nanos(), 2200);
        assert_eq!(d.hops.len(), 2);
        assert_eq!(d.hops[0].node, 0);
        assert_eq!(d.hops[1].node, 1);
        assert_eq!(d.true_delay().as_nanos(), 2200);
    }

    #[test]
    fn fifo_order_preserved_across_hops() {
        let net = line(2, 10);
        let inj: Vec<(NodeId, Packet)> = (0..100).map(|i| (0usize, pkt(i, i * 13, 80))).collect();
        let run = run_network(net, &LineForwarder { last: 1 }, inj);
        assert_eq!(run.deliveries.len(), 100);
        for w in run.deliveries.windows(2) {
            assert!(w[0].delivered_at <= w[1].delivered_at);
            assert!(w[0].packet.id < w[1].packet.id, "FIFO order violated");
        }
    }

    #[test]
    fn host_port_delivers_after_queueing() {
        let mut net = Network::default();
        let s = net.add_node("edge");
        net.add_port(s, Port::to_host(qcfg(), SimDuration::from_nanos(50)));
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, _p: &Packet) -> RouteDecision {
                RouteDecision::Forward(0)
            }
        }
        let run = run_network(net, &F, vec![(s, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries.len(), 1);
        // 1000 ns tx + 50 ns host link.
        assert_eq!(run.deliveries[0].delivered_at.as_nanos(), 1050);
        assert_eq!(run.deliveries[0].hops.len(), 1);
    }

    #[test]
    fn route_drop_counted() {
        let net = line(2, 10);
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, p: &Packet) -> RouteDecision {
                if p.flow.dport == 666 {
                    RouteDecision::Drop
                } else {
                    RouteDecision::Deliver
                }
            }
        }
        let run = run_network(net, &F, vec![(0, pkt(1, 0, 666)), (0, pkt(2, 5, 80))]);
        assert_eq!(run.route_drops[0], 1);
        assert_eq!(run.deliveries.len(), 1);
    }

    #[test]
    fn queue_drop_counted_and_packet_vanishes() {
        let mut net = Network::default();
        let s = net.add_node("sw");
        let mut cfg = qcfg();
        cfg.capacity_bytes = 1000; // fits exactly one packet
        net.add_port(s, Port::to_host(cfg, SimDuration::ZERO));
        struct F;
        impl Forwarder for F {
            fn route(&self, _n: NodeId, _p: &Packet) -> RouteDecision {
                RouteDecision::Forward(0)
            }
        }
        let run = run_network(
            net,
            &F,
            vec![(s, pkt(1, 0, 80)), (s, pkt(2, 0, 80)), (s, pkt(3, 0, 80))],
        );
        assert_eq!(run.deliveries.len(), 1, "only the first fits");
        assert_eq!(run.queue_drops[s], 2);
        assert_eq!(run.network.nodes[s].ports[0].queue.regular().drops, 2);
    }

    #[test]
    fn marking_hook_applies() {
        let net = line(2, 10);
        struct Marking;
        impl Forwarder for Marking {
            fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
                if node == 1 {
                    RouteDecision::Deliver
                } else {
                    RouteDecision::Forward(0)
                }
            }
            fn on_forward(&self, node: NodeId, _port: PortId, p: &mut Packet) {
                p.mark = node as u8 + 7;
            }
        }
        let run = run_network(net, &Marking, vec![(0, pkt(1, 0, 80))]);
        assert_eq!(run.deliveries[0].packet.mark, 7);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let run_once = |sched: SchedulerKind| {
            let net = line(2, 10);
            let inj: Vec<(NodeId, Packet)> = (0..50).map(|i| (0usize, pkt(i, 0, 80))).collect(); // all at t=0
            run_network_sched(net, &LineForwarder { last: 1 }, inj, &mut NullSink, sched)
                .deliveries
                .iter()
                .map(|d| d.packet.id.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run_once(SchedulerKind::Calendar),
            run_once(SchedulerKind::Calendar)
        );
        // Heap and calendar schedulers break ties identically.
        assert_eq!(
            run_once(SchedulerKind::Calendar),
            run_once(SchedulerKind::Heap)
        );
    }

    #[test]
    fn node_lookup_by_name() {
        let net = line(3, 1);
        assert_eq!(net.node_by_name("S1"), Some(1));
        assert_eq!(net.node_by_name("nope"), None);
    }

    #[test]
    fn hop_stream_narrates_the_path() {
        let net = line(3, 100);
        let mut log: Vec<(HopKind, NodeId, u64)> = Vec::new();
        let mut sink = |ev: &HopEvent<'_>| log.push((ev.kind, ev.node, ev.at.as_nanos()));
        let run = run_network_with(
            net,
            &LineForwarder { last: 2 },
            vec![(0, pkt(1, 0, 80))],
            &mut sink,
        );
        assert_eq!(run.deliveries.len(), 1);
        let kinds: Vec<HopKind> = log.iter().map(|(k, _, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                HopKind::Arrive,
                HopKind::Enqueue { port: 0 },
                HopKind::Dequeue {
                    port: 0,
                    arrived: SimTime::ZERO
                },
                HopKind::Arrive,
                HopKind::Enqueue { port: 0 },
                HopKind::Dequeue {
                    port: 0,
                    arrived: SimTime::from_nanos(1100)
                },
                HopKind::Arrive,
                HopKind::Deliver,
            ]
        );
        // Arrive events are globally time-ordered.
        let arrivals: Vec<u64> = log
            .iter()
            .filter(|(k, _, _)| *k == HopKind::Arrive)
            .map(|(_, _, t)| *t)
            .collect();
        assert_eq!(arrivals, vec![0, 1100, 2200]);
        // The final Deliver carries the delivery time.
        assert_eq!(log.last().unwrap().2, 2200);
    }

    #[test]
    fn hop_stream_reports_drops() {
        let net = line(2, 10);
        struct F;
        impl Forwarder for F {
            fn route(&self, node: NodeId, p: &Packet) -> RouteDecision {
                if p.flow.dport == 666 {
                    RouteDecision::Drop
                } else if node == 1 {
                    RouteDecision::Deliver
                } else {
                    RouteDecision::Forward(0)
                }
            }
        }
        let mut drops = Vec::new();
        let mut sink = |ev: &HopEvent<'_>| {
            if matches!(ev.kind, HopKind::RouteDrop | HopKind::QueueDrop { .. }) {
                drops.push((ev.kind, ev.packet.id.0));
            }
        };
        run_network_with(
            net,
            &F,
            vec![(0, pkt(1, 0, 666)), (0, pkt(2, 5, 80))],
            &mut sink,
        );
        assert_eq!(drops, vec![(HopKind::RouteDrop, 1)]);
    }

    #[test]
    fn watermark_is_monotone_and_bounds_future_events() {
        // The watermark contract streaming sinks rely on: strictly
        // increasing, and no event emitted after a watermark carries an
        // earlier `at`.
        struct W {
            marks: Vec<u64>,
            current: u64,
            violations: usize,
        }
        impl HopSink for W {
            fn on_hop(&mut self, ev: &HopEvent<'_>) {
                if ev.at.as_nanos() < self.current {
                    self.violations += 1;
                }
            }
            fn on_watermark(&mut self, watermark: SimTime) {
                self.marks.push(watermark.as_nanos());
                self.current = watermark.as_nanos();
            }
        }
        let mut sink = W {
            marks: Vec::new(),
            current: 0,
            violations: 0,
        };
        let net = line(3, 100);
        let inj: Vec<(NodeId, Packet)> = (0..50).map(|i| (0usize, pkt(i, i * 37, 80))).collect();
        run_network_with(net, &LineForwarder { last: 2 }, inj, &mut sink);
        assert!(!sink.marks.is_empty());
        for w in sink.marks.windows(2) {
            assert!(w[0] < w[1], "watermark not strictly increasing: {w:?}");
        }
        assert_eq!(sink.violations, 0, "events ran behind the watermark");
    }

    #[test]
    fn calendar_fixed_override_matches_default_run() {
        let run_once = |sched: SchedulerKind| {
            let net = line(3, 100);
            let inj: Vec<(NodeId, Packet)> =
                (0..80).map(|i| (0usize, pkt(i, i * 53, 80))).collect();
            run_network_sched(net, &LineForwarder { last: 2 }, inj, &mut NullSink, sched)
                .deliveries
                .iter()
                .map(|d| (d.delivered_at.as_nanos(), d.packet.id.0))
                .collect::<Vec<_>>()
        };
        let adaptive = run_once(SchedulerKind::Calendar);
        assert_eq!(adaptive, run_once(SchedulerKind::Heap));
        // Deliberately pathological override: still byte-identical.
        assert_eq!(
            adaptive,
            run_once(SchedulerKind::CalendarFixed {
                bucket_ns_log2: 1,
                buckets_log2: 2
            })
        );
    }

    #[test]
    fn hop_stream_matches_ground_truth_hops() {
        let net = line(3, 100);
        let inj: Vec<(NodeId, Packet)> = (0..20).map(|i| (0usize, pkt(i, i * 400, 80))).collect();
        let mut dequeues: Vec<(u64, NodeId, u64, u64)> = Vec::new(); // (pkt, node, arrived, departed)
        let mut sink = |ev: &HopEvent<'_>| {
            if let HopKind::Dequeue { arrived, .. } = ev.kind {
                dequeues.push((
                    ev.packet.id.0,
                    ev.node,
                    arrived.as_nanos(),
                    ev.at.as_nanos(),
                ));
            }
        };
        let run = run_network_with(net, &LineForwarder { last: 2 }, inj, &mut sink);
        let mut from_truth: Vec<(u64, NodeId, u64, u64)> = run
            .deliveries
            .iter()
            .flat_map(|d| {
                d.hops.iter().map(|h| {
                    (
                        d.packet.id.0,
                        h.node,
                        h.arrived.as_nanos(),
                        h.departed.as_nanos(),
                    )
                })
            })
            .collect();
        dequeues.sort_unstable();
        from_truth.sort_unstable();
        assert_eq!(dequeues, from_truth);
    }
}
