//! # rlir-sim — discrete-event network simulator
//!
//! The simulation substrate behind the paper's evaluation (§4.1, Fig. 3):
//!
//! * [`queue`] — analytic drop-tail FIFO output queues (rate, byte capacity,
//!   processing delay) with per-traffic-class loss/byte counters.
//! * [`crosstraffic`] — the cross-traffic injector with the paper's two
//!   selection models (uniform/"random" and bursty) plus the keep-probability
//!   calibrator for utilization targets.
//! * [`pipeline`] — the two-switch tandem of Fig. 3, run as one streaming
//!   sorted merge (no event heap, no intermediate buffering) with full
//!   per-packet ground truth; the seed's two-pass variant is kept as a
//!   differential-testing oracle and benchmark baseline.
//! * [`network`] — a general event-driven engine for arbitrary topologies
//!   (used for the fat-tree RLIR experiments), with pluggable forwarding,
//!   ToS-marking hooks, hop-by-hop ground truth and a typed per-hop
//!   observation stream ([`HopEvent`]/[`HopSink`]) the measurement plane
//!   taps into.
//! * [`sched`] — the engine's event schedulers: the default bucketed
//!   calendar queue and the original binary heap kept as differential
//!   oracle.
//! * [`slab`] — the free-list arena holding in-flight packet state, so the
//!   schedulers move 8-byte `Copy` handles instead of full packets and
//!   engine memory is O(max in-flight) (the pre-slab engine is retained as
//!   [`EngineKind::MovingOracle`]).
//! * [`chaos`] — seeded chaos-campaign generation: composes random
//!   fault scripts (correlated link flaps, gray-loss ramps, tap outages)
//!   from a single `u64` seed via a self-contained splitmix64 stream.
//! * [`fault`] — deterministic mid-run fault injection (link
//!   failure/recovery, switch service-time degradation, loss bursts) plus
//!   the cooperative [`StopFlag`] termination hook closed-loop detectors
//!   raise; an empty [`FaultScript`] is byte-identical to a fault-free
//!   run.
//! * [`shard`] — the pod-sharded engine: conservative-lookahead windows
//!   over a topology-supplied node partition, each shard owning its own
//!   scheduler/slab/fault cursor, with cross-shard packets handed off at
//!   window barriers and the merged stream byte-identical for any shard
//!   count.
//! * [`source`] — pull-based [`InjectionSource`]s: the engine's streaming
//!   ingest path (O(source buffer), not O(run)), with the sorted-Vec
//!   adapter kept byte-identical to the old collect-then-sort ingest as
//!   its differential oracle. `rlir_trace`'s pcap replay source streams
//!   captures off disk through this trait.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod crosstraffic;
pub mod fault;
pub mod network;
pub mod pipeline;
pub mod queue;
pub mod sched;
pub mod shard;
pub mod slab;
pub mod source;

pub use chaos::ChaosConfig;
pub use crosstraffic::{calibrate_keep_prob, CrossInjector, CrossModel};
pub use fault::{DeadPorts, FaultEvent, FaultKind, FaultScript, StopFlag};
pub use network::{
    run_network, run_network_engine, run_network_sched, run_network_streamed,
    run_network_streamed_opts, run_network_streamed_sched, run_network_streamed_source,
    run_network_with, EngineKind, Forwarder, Hop, HopEvent, HopKind, HopSink, NetDelivery, Network,
    NetworkRun, NetworkRunStats, NodeId, NullSink, Port, PortId, RouteDecision, RunOptions,
    SchedulerKind, StreamDigest, StreamedDelivery, SwitchNode, TeeSink,
};
pub use pipeline::{
    run_tandem, run_tandem_two_pass, run_tandem_with, Delivery, TandemConfig, TandemResult,
    TandemStats,
};
pub use queue::{ClassCounters, FifoQueue, QueueConfig, Verdict};
pub use sched::{CalendarQueue, EventSchedule, HeapSchedule};
pub use shard::{run_network_sharded, run_network_sharded_source, ShardPlan, ShardRunStats};
pub use slab::{FlightState, PacketSlab, SlotId};
pub use source::{InjectionSource, SortedVecSource};
