//! Free-list slab for the engine's in-flight packet state.
//!
//! The event engine keeps one [`FlightState`] per packet currently inside
//! the network — the packet itself, its injection provenance, and the
//! hop-by-hop ground-truth record. Before the slab, all of that travelled
//! *inside* the scheduler: every push/pop moved a ~130-byte event carrying
//! the `Packet` by value plus a heap-allocated `Vec<Hop>`, and every
//! injected packet paid for a fresh hop vector. The slab pins the state in
//! place and lets the scheduler move an 8-byte `Copy` handle instead
//! (see `network::SlotEvent`).
//!
//! Slots are recycled through a free list the moment a packet leaves the
//! network (deliver or drop), so:
//!
//! * slab capacity is bounded by the **peak number of in-flight packets**,
//!   not the number of packets injected over the whole run;
//! * a recycled slot keeps its hop vector's capacity (`Vec::clear`, not
//!   drop), so hop-storage allocation is amortized O(max in-flight) — a
//!   long run allocates no more than a short one at the same concurrency.
//!
//! The slab counts its own behaviour ([`PacketSlab::peak_live`],
//! [`PacketSlab::hop_allocations`]); `BENCH_network.json` reports both.
//! Liveness is tracked per slot: freeing a dead slot panics, and the
//! free-list property tests (`tests/slab_engine_differential.rs`) drive
//! interleaved insert/free/push-hop sequences against a mirror to prove
//! recycling never aliases two live packets.

use crate::network::{Hop, NodeId};
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;

/// Index of a slot in a [`PacketSlab`]. `u32` by design: the scheduler's
/// event payload carries one of these plus a node id in 8 bytes.
pub type SlotId = u32;

/// Everything the engine tracks about one in-flight packet.
#[derive(Debug, Clone)]
pub struct FlightState {
    /// The packet, marks applied so far.
    pub packet: Packet,
    /// Where it entered the network.
    pub injected_node: NodeId,
    /// When it entered the network.
    pub injected_at: SimTime,
    /// Hops completed so far. Private so every growth path is counted.
    hops: Vec<Hop>,
    /// Whether the slot currently holds a live packet.
    live: bool,
}

impl FlightState {
    /// The hop record accumulated so far.
    #[inline]
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }
}

/// Slot-recycling arena of [`FlightState`]s.
#[derive(Debug, Clone, Default)]
pub struct PacketSlab {
    slots: Vec<FlightState>,
    free: Vec<SlotId>,
    live: usize,
    peak_live: usize,
    hop_allocations: u64,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a newly injected packet, reusing a freed slot when one exists.
    /// The returned slot is guaranteed not to alias any live packet.
    pub fn insert(
        &mut self,
        packet: Packet,
        injected_node: NodeId,
        injected_at: SimTime,
    ) -> SlotId {
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        match self.free.pop() {
            Some(slot) => {
                let st = &mut self.slots[slot as usize];
                debug_assert!(!st.live, "free list handed out a live slot");
                st.packet = packet;
                st.injected_node = injected_node;
                st.injected_at = injected_at;
                st.hops.clear(); // keep the capacity: recycled, not dropped
                st.live = true;
                slot
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "slab full");
                self.slots.push(FlightState {
                    packet,
                    injected_node,
                    injected_at,
                    hops: Vec::new(),
                    live: true,
                });
                (self.slots.len() - 1) as SlotId
            }
        }
    }

    /// Store a packet handed off from another shard of the pod-sharded
    /// engine, seeding its hop record with the hops it accumulated there.
    /// Same recycling discipline as [`PacketSlab::insert`]: the slice is
    /// copied into the recycled vector, counting a hop allocation only when
    /// the seed outgrows the recycled capacity.
    pub fn insert_with_hops(
        &mut self,
        packet: Packet,
        injected_node: NodeId,
        injected_at: SimTime,
        hops: &[Hop],
    ) -> SlotId {
        let slot = self.insert(packet, injected_node, injected_at);
        let st = &mut self.slots[slot as usize];
        if st.hops.capacity() < hops.len() {
            self.hop_allocations += 1;
        }
        st.hops.extend_from_slice(hops);
        slot
    }

    /// The state of a live slot.
    #[inline]
    pub fn get(&self, slot: SlotId) -> &FlightState {
        let st = &self.slots[slot as usize];
        debug_assert!(st.live, "slab read of a freed slot");
        st
    }

    /// Mutable access to a live slot's packet (the marking hook's target).
    #[inline]
    pub fn packet_mut(&mut self, slot: SlotId) -> &mut Packet {
        let st = &mut self.slots[slot as usize];
        debug_assert!(st.live, "slab write to a freed slot");
        &mut st.packet
    }

    /// Append a hop to a live slot's ground-truth record.
    #[inline]
    pub fn push_hop(&mut self, slot: SlotId, hop: Hop) {
        let st = &mut self.slots[slot as usize];
        debug_assert!(st.live, "slab write to a freed slot");
        if st.hops.len() == st.hops.capacity() {
            // The push below will (re)allocate — the quantity the recycling
            // amortizes to O(max in-flight).
            self.hop_allocations += 1;
        }
        st.hops.push(hop);
    }

    /// Recycle a slot (the packet delivered or dropped). Panics on double
    /// free — an aliasing bug, never a recoverable condition.
    pub fn release(&mut self, slot: SlotId) {
        let st = &mut self.slots[slot as usize];
        assert!(st.live, "slab double free of slot {slot}");
        st.live = false;
        self.live -= 1;
        self.free.push(slot);
    }

    /// Whether `slot` currently holds a live packet.
    pub fn is_live(&self, slot: SlotId) -> bool {
        self.slots.get(slot as usize).is_some_and(|st| st.live)
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently live slots — the engine's memory
    /// bound, independent of how many packets the run injects in total.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Hop-storage (re)allocations performed so far. Amortized O(max
    /// in-flight): recycled slots keep their vectors' capacity.
    pub fn hop_allocations(&self) -> u64 {
        self.hop_allocations
    }

    /// Slots ever created (live + recycled). Equals [`Self::peak_live`]
    /// unless the slab was grown externally.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether no packet is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn pkt(id: u64) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 1, 0, 1), 2),
            1000,
            SimTime::from_nanos(id),
        )
    }

    fn hop(n: NodeId) -> Hop {
        Hop {
            node: n,
            port: 0,
            arrived: SimTime::ZERO,
            departed: SimTime::from_nanos(1),
        }
    }

    #[test]
    fn recycles_slots_and_keeps_hop_capacity() {
        let mut slab = PacketSlab::new();
        let a = slab.insert(pkt(1), 0, SimTime::ZERO);
        for i in 0..8 {
            slab.push_hop(a, hop(i));
        }
        let allocs_before = slab.hop_allocations();
        assert!(allocs_before >= 1);
        slab.release(a);
        // The freed slot is reused, hops cleared, capacity retained: the
        // next 8 pushes allocate nothing.
        let b = slab.insert(pkt(2), 1, SimTime::from_nanos(5));
        assert_eq!(a, b);
        assert!(slab.get(b).hops().is_empty());
        assert_eq!(slab.get(b).packet.id.0, 2);
        for i in 0..8 {
            slab.push_hop(b, hop(i));
        }
        assert_eq!(slab.hop_allocations(), allocs_before);
        assert_eq!(slab.capacity(), 1);
        assert_eq!(slab.peak_live(), 1);
    }

    #[test]
    fn peak_tracks_concurrency_not_total() {
        let mut slab = PacketSlab::new();
        for i in 0..100 {
            let s = slab.insert(pkt(i), 0, SimTime::ZERO);
            slab.release(s);
        }
        assert_eq!(slab.peak_live(), 1);
        assert_eq!(slab.capacity(), 1);
        assert!(slab.is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut slab = PacketSlab::new();
        let s = slab.insert(pkt(1), 0, SimTime::ZERO);
        slab.release(s);
        slab.release(s);
    }

    #[test]
    fn liveness_is_observable() {
        let mut slab = PacketSlab::new();
        assert!(!slab.is_live(0));
        let s = slab.insert(pkt(1), 0, SimTime::ZERO);
        assert!(slab.is_live(s));
        slab.release(s);
        assert!(!slab.is_live(s));
    }
}
