//! Pod-sharded deterministic engine: conservative-lookahead parallelism
//! *inside* one simulation.
//!
//! Sweep-level parallelism (`rlir-exec`) cannot speed up one large run;
//! this module shards [`run_network_streamed_opts`]-shaped runs by a
//! topology-supplied partition (for the fat-tree: one group per pod plus
//! one core group, see `FatTree::pod_partition` in `rlir-topo`). Each
//! shard owns its own calendar queue, free-list slab and fault-script
//! cursor, and advances only to the **global safe horizon**
//! `min(pending event time) + L`, where the lookahead `L` is the minimum
//! link latency on any inter-group edge — conservative-window PDES with
//! the window width the topology guarantees. Packets crossing a shard
//! boundary are handed off as timestamped injections into the destination
//! shard's mailbox at the window barrier (their arrival is provably `≥`
//! the horizon, so they never belong to the window that produced them).
//!
//! # Byte-identical for any shard count
//!
//! The sequential engine breaks same-time ties by global push order
//! (`seq`), which is unreproducible under partitioning: a shard cannot
//! know how its pushes interleave with another's. The sharded engine
//! instead keys every scheduler entry by `(ordinal, progress)` — the
//! packet's index in the globally time-sorted injection list and its hop
//! counter — a **partition-independent** total order `(time, tie, id)`.
//! Per-shard pops therefore drain in globally keyed order restricted to
//! the shard, and the coordinator's k-way merge of the per-window unit
//! streams *is* the global keyed order. Everything observable — the full
//! [`HopEvent`] + watermark sequence, deliveries, drop/queue counters,
//! fault semantics, [`StopFlag`] truncation — is emitted from the merged
//! stream and counted at emission, so an N-shard run is byte-identical to
//! the 1-shard run through this entry point (pinned by
//! `tests/shard_determinism.rs` and asserted in-run by `shard_bench`).
//! Only the capacity diagnostics (`peak_live_slots`, `hop_allocations`)
//! are per-shard quantities; see [`NetworkRunStats`].
//!
//! Same-time arrivals at one node from *different* upstream queues are
//! real in fat-tree workloads, and there the keyed order genuinely
//! differs from the sequential engine's push order — so scenarios opt in
//! explicitly (`shards: Some(n)`) and the 1-shard keyed run is the
//! identity baseline. On tie-free workloads the keyed and sequential
//! engines coincide exactly (differentially pinned in the test suite).

use crate::fault::{FaultScript, FaultState, StopFlag};
use crate::network::{
    Forwarder, Hop, HopEvent, HopKind, HopSink, Network, NetworkRunStats, NodeId, RouteDecision,
    RunOptions, SchedulerKind, StreamedDelivery,
};
use crate::queue::Verdict;
use crate::sched::{CalendarQueue, EventSchedule, HeapSchedule};
use crate::slab::{PacketSlab, SlotId};
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Partition-independent scheduler tie key: `(packet ordinal, hop
/// progress)`. The ordinal is the packet's index in the globally
/// time-sorted injection list (unique per packet); progress is its hop
/// counter, strictly increasing along the packet's life, so
/// `(at, ordinal, progress)` is a total order over engine units that no
/// partition can perturb.
type ShardKey = (u64, u32);

/// What a shard's scheduler moves: slot handle + next node, like the
/// sequential engine's event, private to this shard's slab.
#[derive(Debug, Clone, Copy)]
struct ShardEvent {
    node: u32,
    slot: SlotId,
}

/// A node-to-group partition of the network, the shard boundary.
///
/// Groups are the unit the lookahead is computed over — the window width
/// is the minimum link latency between *groups*, independent of how many
/// shards the groups are folded onto — which is what makes the window
/// sequence (and therefore every emitted byte) identical for every shard
/// count.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    groups: Vec<usize>,
}

impl ShardPlan {
    /// A plan from an explicit node → group map (indices must be dense
    /// enough that `max(group) + 1` is the group count).
    pub fn new(groups: Vec<usize>) -> Self {
        ShardPlan { groups }
    }

    /// The degenerate plan: every node in one group (no parallelism, one
    /// unbounded window — still exercises the keyed engine).
    pub fn single(n_nodes: usize) -> Self {
        ShardPlan {
            groups: vec![0; n_nodes],
        }
    }

    /// The node → group map.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }
}

/// Result of a sharded run: the fused [`NetworkRunStats`] plus the
/// coordinator's own accounting.
#[derive(Debug, Clone)]
pub struct ShardRunStats {
    /// The fused run stats — every stream-observable field shard-count
    /// invariant (see the struct docs for the fusion rules).
    pub stats: NetworkRunStats,
    /// Effective shard count the run used (requested count capped by the
    /// plan's group count, and collapsed to 1 when a zero-latency
    /// inter-group link makes conservative lookahead impossible).
    pub shards: usize,
    /// Safe-horizon windows the run was divided into (shard-count
    /// invariant: window boundaries depend only on the group partition).
    pub windows: u64,
    /// Safe-horizon stalls: windows in which some shard had no unit to
    /// process and advanced to the horizon idle — the synchronization
    /// overhead of conservative lookahead (0 for a 1-shard run, since the
    /// window minimum always belongs to the only shard).
    pub shard_stalls: u64,
}

impl ShardRunStats {
    /// Fold each shard's slab capacity diagnostics — `(peak_live_slots,
    /// hop_allocations)` pairs — into the fused [`NetworkRunStats`].
    ///
    /// Every stream-observable field of the fused stats is shard-count
    /// invariant and needs no aggregation rule: all shards emit the same
    /// merged stream. The two slab diagnostics are the exception, and
    /// this is their one documented fusion:
    ///
    /// * [`NetworkRunStats::peak_live_slots`] — **max** of the per-shard
    ///   peaks. Each shard owns an independent slab (its own memory
    ///   pool), so the bound on any one pool is the worst shard's
    ///   high-water mark; summing would claim residency that never
    ///   coexisted in a single slab.
    /// * [`NetworkRunStats::hop_allocations`] — **sum** over shards.
    ///   Every shard's hop-storage (re)allocations really happened, so
    ///   the run-wide allocator pressure is their total.
    pub fn merged(mut self, per_shard: impl IntoIterator<Item = (usize, u64)>) -> Self {
        for (peak_live_slots, hop_allocations) in per_shard {
            self.stats.peak_live_slots = self.stats.peak_live_slots.max(peak_live_slots);
            self.stats.hop_allocations += hop_allocations;
        }
        self
    }
}

/// One globally-time-sorted injection owned by a shard.
#[derive(Debug, Clone, Copy)]
struct Injection {
    node: NodeId,
    packet: Packet,
    ord: u64,
}

/// A packet crossing a shard boundary: everything the destination shard
/// needs to re-seed it as a timestamped keyed injection.
#[derive(Debug)]
struct Handoff {
    /// Arrival time at the destination node (≥ the producing window's
    /// horizon, by the lookahead bound).
    at: u64,
    ord: u64,
    prog: u32,
    /// Destination node.
    node: u32,
    packet: Packet,
    injected_node: u32,
    injected_at: u64,
    hops: Vec<Hop>,
}

/// One logged hop event, a deferred [`HopEvent`]: the packet snapshot at
/// emission time plus the length of the hop-record prefix visible then
/// (hops only append within a unit, so a prefix length into the unit's
/// sealed record reconstructs the exact borrowed view).
#[derive(Debug, Clone, Copy)]
struct LoggedEvent {
    kind: HopKind,
    node: u32,
    at: u64,
    packet: Packet,
    hops_len: u32,
}

/// A delivery produced by a unit (emitted after the unit's hop events,
/// exactly like the sequential engine's callback position).
#[derive(Debug, Clone, Copy)]
struct DeliveryRec {
    packet: Packet,
    node: u32,
    at: u64,
}

/// One engine unit (= one `arrive` cascade) a shard processed, with its
/// event/hop ranges into the shard's per-window log buffers.
#[derive(Debug, Clone, Copy)]
struct Unit {
    at: u64,
    ord: u64,
    prog: u32,
    injected: bool,
    fault_drop: bool,
    injected_node: u32,
    injected_at: u64,
    ev_start: u32,
    ev_end: u32,
    hop_start: u32,
    hop_end: u32,
    delivery: Option<DeliveryRec>,
}

impl Unit {
    #[inline]
    fn key(&self) -> (u64, u64, u32) {
        (self.at, self.ord, self.prog)
    }
}

/// Keyed scheduler selected per shard. An enum (not a generic) so the
/// worker type is uniform across scheduler kinds and threads.
enum ShardSched {
    Calendar(CalendarQueue<ShardEvent, ShardKey>),
    Heap(HeapSchedule<ShardEvent, ShardKey>),
}

impl ShardSched {
    /// Build the scheduler for one shard. The adaptive calendar geometry
    /// is derived from *this shard's own* injection spacing — a global
    /// span would over-bucket sparse shards (the core shard sees no
    /// injections at all and gets the default geometry).
    fn for_shard(kind: SchedulerKind, injections: &[Injection]) -> Self {
        match kind {
            SchedulerKind::Calendar => {
                let span = match (injections.first(), injections.last()) {
                    (Some(first), Some(last)) => {
                        last.packet.created_at.as_nanos() - first.packet.created_at.as_nanos()
                    }
                    _ => 0,
                };
                ShardSched::Calendar(CalendarQueue::for_spacing(span, injections.len()))
            }
            SchedulerKind::CalendarFixed {
                bucket_ns_log2,
                buckets_log2,
            } => ShardSched::Calendar(CalendarQueue::with_geometry(bucket_ns_log2, buckets_log2)),
            SchedulerKind::Heap => ShardSched::Heap(HeapSchedule::new()),
        }
    }

    #[inline]
    fn push_keyed(&mut self, at: SimTime, key: ShardKey, item: ShardEvent) {
        match self {
            ShardSched::Calendar(q) => q.push_keyed(at, key, item),
            ShardSched::Heap(q) => q.push_keyed(at, key, item),
        }
    }

    #[inline]
    fn pop_keyed(&mut self) -> Option<(SimTime, ShardKey, ShardEvent)> {
        match self {
            ShardSched::Calendar(q) => q.pop_keyed(),
            ShardSched::Heap(q) => q.pop_keyed(),
        }
    }

    #[inline]
    fn peek_key(&mut self) -> Option<(SimTime, ShardKey)> {
        match self {
            ShardSched::Calendar(q) => q.peek_key(),
            ShardSched::Heap(q) => q.peek_key(),
        }
    }
}

/// One shard: a full clone of the network (it only *reads and writes*
/// the queues of nodes it owns; fault transitions are replicated so every
/// clone's owned nodes carry the right state), its own slab, keyed
/// scheduler, fault cursor and per-window log buffers.
struct ShardWorker<'a, F> {
    shard: usize,
    network: Network,
    forwarder: &'a F,
    shard_of: &'a [usize],
    slab: PacketSlab,
    schedule: ShardSched,
    injections: Vec<Injection>,
    next_inj: usize,
    faults: Option<FaultState<'a>>,
    /// Handoffs routed to this shard at the last barrier, seeded into the
    /// slab + scheduler at the next window start.
    inbox: Vec<Handoff>,
    /// Handoffs this shard produced during the current window.
    outbox: Vec<Handoff>,
    /// Units processed this window, in keyed order.
    units: Vec<Unit>,
    /// Hop events logged this window (`Unit` ranges index into this).
    events: Vec<LoggedEvent>,
    /// Sealed hop records of this window's units (`Unit` ranges).
    arena: Vec<Hop>,
}

impl<F: Forwarder> ShardWorker<'_, F> {
    /// Earliest pending unit time across this shard's three sources
    /// (injection stream, scheduler, un-seeded inbox) — the coordinator
    /// min-reduces this into the global window start.
    fn next_time(&mut self) -> Option<u64> {
        let mut t = self
            .injections
            .get(self.next_inj)
            .map(|i| i.packet.created_at.as_nanos());
        if let Some((at, _)) = self.schedule.peek_key() {
            let a = at.as_nanos();
            t = Some(t.map_or(a, |x| x.min(a)));
        }
        for h in &self.inbox {
            t = Some(t.map_or(h.at, |x| x.min(h.at)));
        }
        t
    }

    /// Process every unit with `at < horizon` (all remaining units when
    /// `None`), filling the per-window log buffers.
    fn run_window(&mut self, horizon: Option<u64>) {
        self.units.clear();
        self.events.clear();
        self.arena.clear();
        for h in std::mem::take(&mut self.inbox) {
            let slot = self.slab.insert_with_hops(
                h.packet,
                h.injected_node as usize,
                SimTime::from_nanos(h.injected_at),
                &h.hops,
            );
            self.schedule.push_keyed(
                SimTime::from_nanos(h.at),
                (h.ord, h.prog),
                ShardEvent { node: h.node, slot },
            );
        }
        loop {
            // Merge the injection stream against the scheduler head by
            // full key — injections carry progress 0, scheduled events
            // progress ≥ 1, so keys never collide.
            let inj = self
                .injections
                .get(self.next_inj)
                .map(|i| (i.packet.created_at.as_nanos(), i.ord, 0u32));
            let sch = self
                .schedule
                .peek_key()
                .map(|(at, (o, p))| (at.as_nanos(), o, p));
            let (key, from_inj) = match (inj, sch) {
                (Some(i), Some(s)) => {
                    if i <= s {
                        (i, true)
                    } else {
                        (s, false)
                    }
                }
                (Some(i), None) => (i, true),
                (None, Some(s)) => (s, false),
                (None, None) => break,
            };
            if horizon.is_some_and(|h| key.0 >= h) {
                break;
            }
            if from_inj {
                let i = self.injections[self.next_inj];
                self.next_inj += 1;
                let at = i.packet.created_at;
                let slot = self.slab.insert(i.packet, i.node, at);
                self.unit(at, i.ord, 0, true, i.node, slot);
            } else {
                let (at, (ord, prog), ev) = self.schedule.pop_keyed().expect("peeked non-empty");
                self.unit(at, ord, prog, false, ev.node as usize, ev.slot);
            }
        }
    }

    /// Log one deferred hop event for the live packet in `slot`.
    #[inline]
    fn log(&mut self, kind: HopKind, node: usize, at: SimTime, slot: SlotId) {
        let st = self.slab.get(slot);
        self.events.push(LoggedEvent {
            kind,
            node: node as u32,
            at: at.as_nanos(),
            packet: st.packet,
            hops_len: st.hops().len() as u32,
        });
    }

    /// Seal the unit's hop record into the arena (called once per unit,
    /// after its last event is logged and before any release).
    #[inline]
    fn seal(&mut self, slot: SlotId) {
        let st = self.slab.get(slot);
        self.arena.extend_from_slice(st.hops());
    }

    /// One engine unit: the exact `SlabEngine::arrive` cascade, with hop
    /// events logged instead of emitted and cross-shard forwards turned
    /// into handoffs. Counter updates (drops/delivered/events/injected)
    /// happen at *emission* on the coordinator, derived from the log, so
    /// truncation by a [`StopFlag`] is unit-exact for every shard count.
    fn unit(
        &mut self,
        at: SimTime,
        ord: u64,
        prog: u32,
        injected: bool,
        node: usize,
        slot: SlotId,
    ) {
        if let Some(fs) = self.faults.as_mut() {
            fs.advance(at, &mut self.network);
        }
        let ev_start = self.events.len() as u32;
        let hop_start = self.arena.len() as u32;
        let (injected_node, injected_at) = {
            let st = self.slab.get(slot);
            (st.injected_node as u32, st.injected_at.as_nanos())
        };
        let mut fault_drop = false;
        let mut delivery = None;
        self.log(HopKind::Arrive, node, at, slot);
        if self.faults.as_ref().is_some_and(|f| f.lossy(node)) {
            fault_drop = true;
            self.log(HopKind::RouteDrop, node, at, slot);
            self.seal(slot);
            self.slab.release(slot);
        } else {
            let mut decision = self.forwarder.route(node, &self.slab.get(slot).packet);
            let mut blackholed = false;
            if let (RouteDecision::Forward(chosen), Some(fs)) = (decision, self.faults.as_ref()) {
                if fs.is_dead(node, chosen) {
                    let dead = fs.dead_ports(node);
                    decision = match self.forwarder.reroute(
                        node,
                        &self.slab.get(slot).packet,
                        chosen,
                        &dead,
                    ) {
                        RouteDecision::Forward(alt) if !fs.is_dead(node, alt) => {
                            RouteDecision::Forward(alt)
                        }
                        RouteDecision::Deliver => RouteDecision::Deliver,
                        _ => {
                            blackholed = true;
                            RouteDecision::Drop
                        }
                    };
                }
            }
            if blackholed {
                fault_drop = true;
            }
            match decision {
                RouteDecision::Drop => {
                    self.log(HopKind::RouteDrop, node, at, slot);
                    self.seal(slot);
                    self.slab.release(slot);
                }
                RouteDecision::Deliver => delivery = Some(self.deliver(at, node, slot)),
                RouteDecision::Forward(port_id) => {
                    self.forwarder
                        .on_forward(node, port_id, self.slab.packet_mut(slot));
                    let verdict = {
                        let port = &mut self.network.nodes[node].ports[port_id];
                        port.queue.offer(at, &self.slab.get(slot).packet)
                    };
                    match verdict {
                        Verdict::Dropped => {
                            self.log(HopKind::QueueDrop { port: port_id }, node, at, slot);
                            self.seal(slot);
                            self.slab.release(slot);
                        }
                        Verdict::Departs(departed) => {
                            self.log(HopKind::Enqueue { port: port_id }, node, at, slot);
                            self.slab.push_hop(
                                slot,
                                Hop {
                                    node,
                                    port: port_id,
                                    arrived: at,
                                    departed,
                                },
                            );
                            self.log(
                                HopKind::Dequeue {
                                    port: port_id,
                                    arrived: at,
                                },
                                node,
                                departed,
                                slot,
                            );
                            let port = &self.network.nodes[node].ports[port_id];
                            let (link_to, link_delay) = (port.link_to, port.link_delay);
                            match link_to {
                                Some(next) if self.shard_of[next] == self.shard => {
                                    self.schedule.push_keyed(
                                        departed + link_delay,
                                        (ord, prog + 1),
                                        ShardEvent {
                                            node: next as u32,
                                            slot,
                                        },
                                    );
                                    self.seal(slot);
                                }
                                Some(next) => {
                                    // Crossing the shard boundary: copy the
                                    // flight state out and recycle the slot
                                    // here; the destination re-seeds it.
                                    self.seal(slot);
                                    let st = self.slab.get(slot);
                                    self.outbox.push(Handoff {
                                        at: (departed + link_delay).as_nanos(),
                                        ord,
                                        prog: prog + 1,
                                        node: next as u32,
                                        packet: st.packet,
                                        injected_node: st.injected_node as u32,
                                        injected_at: st.injected_at.as_nanos(),
                                        hops: st.hops().to_vec(),
                                    });
                                    self.slab.release(slot);
                                }
                                None => {
                                    delivery =
                                        Some(self.deliver(departed + link_delay, node, slot));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.units.push(Unit {
            at: at.as_nanos(),
            ord,
            prog,
            injected,
            fault_drop,
            injected_node,
            injected_at,
            ev_start,
            ev_end: self.events.len() as u32,
            hop_start,
            hop_end: self.arena.len() as u32,
            delivery,
        });
    }

    /// Log the `Deliver` event, seal and recycle; the delivery callback
    /// itself runs on the coordinator at emission.
    fn deliver(&mut self, delivered_at: SimTime, node: usize, slot: SlotId) -> DeliveryRec {
        self.log(HopKind::Deliver, node, delivered_at, slot);
        self.seal(slot);
        let st = self.slab.get(slot);
        let rec = DeliveryRec {
            packet: st.packet,
            node: node as u32,
            at: delivered_at.as_nanos(),
        };
        self.slab.release(slot);
        rec
    }
}

/// Coordinator emission state: the fused stats are counted *here*, from
/// the merged stream, so every stream-observable field is shard-count
/// invariant even under mid-run truncation.
struct EmitState {
    stats: NetworkRunStats,
    watermark: Option<u64>,
    windows: u64,
    stalls: u64,
    /// Next undelivered fault-script index for the *coordinator's* sink
    /// notifications. Each shard advances its own replicated `FaultState`
    /// for network effects; sink delivery happens once, here, from the
    /// merged stream — at the same point in the observable order as the
    /// sequential engine's in-line delivery.
    fault_next: usize,
}

/// The windowed coordinator: compute the global safe horizon, run every
/// shard to it (`run_all` is the inline or threaded executor), k-way
/// merge the per-shard unit logs in `(time, ordinal, progress)` order,
/// emit, and route the produced handoffs for the next window.
#[allow(clippy::too_many_arguments)]
fn drive_windows<F, S, D>(
    workers: &[Mutex<ShardWorker<'_, F>>],
    shard_of: &[usize],
    lookahead: Option<u64>,
    stop: Option<&StopFlag>,
    faults: Option<&FaultScript>,
    sink: &mut S,
    on_delivery: &mut D,
    st: &mut EmitState,
    run_all: &mut dyn FnMut(Option<u64>),
) where
    F: Forwarder,
    S: HopSink,
    D: FnMut(&StreamedDelivery<'_>),
{
    'run: loop {
        if stop.is_some_and(StopFlag::is_set) {
            break;
        }
        let mut t_min: Option<u64> = None;
        for w in workers {
            if let Some(t) = w.lock().expect("worker poisoned").next_time() {
                t_min = Some(t_min.map_or(t, |x| x.min(t)));
            }
        }
        let Some(t0) = t_min else { break };
        // The horizon is *exclusive* and at least one tick wide, so the
        // t0 unit is always processed: every window makes progress.
        let horizon = lookahead.map(|l| t0.saturating_add(l.max(1)));
        st.windows += 1;
        run_all(horizon);

        let mut guards: Vec<_> = workers
            .iter()
            .map(|w| w.lock().expect("worker poisoned"))
            .collect();
        if guards.len() > 1 {
            st.stalls += guards.iter().filter(|g| g.units.is_empty()).count() as u64;
        }
        let mut cursors = vec![0usize; guards.len()];
        loop {
            let mut best: Option<((u64, u64, u32), usize)> = None;
            for (i, g) in guards.iter().enumerate() {
                if let Some(u) = g.units.get(cursors[i]) {
                    let k = u.key();
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            if stop.is_some_and(StopFlag::is_set) {
                break 'run;
            }
            let g = &guards[i];
            let u = g.units[cursors[i]];
            cursors[i] += 1;
            // Deliver scripted fault transitions that became due, exactly
            // where the sequential engine does: before the watermark/hop
            // callbacks of the first unit whose processing time reached
            // them. The merged stream *is* the sequential processing
            // order, so the sink observes the same interleaving.
            if let Some(script) = faults {
                let evs = script.events();
                while let Some(ev) = evs.get(st.fault_next) {
                    if ev.at.as_nanos() > u.at {
                        break;
                    }
                    st.fault_next += 1;
                    sink.on_fault(ev);
                }
            }
            if st.watermark.is_none_or(|w| u.at > w) {
                sink.on_watermark(SimTime::from_nanos(u.at));
                st.watermark = Some(u.at);
            }
            st.stats.events += 1;
            if u.injected {
                st.stats.injected += 1;
            }
            if u.fault_drop {
                st.stats.fault_drops += 1;
            }
            let hops = &g.arena[u.hop_start as usize..u.hop_end as usize];
            for e in &g.events[u.ev_start as usize..u.ev_end as usize] {
                match e.kind {
                    HopKind::QueueDrop { .. } => st.stats.queue_drops[e.node as usize] += 1,
                    HopKind::RouteDrop => st.stats.route_drops[e.node as usize] += 1,
                    _ => {}
                }
                sink.on_hop(&HopEvent {
                    kind: e.kind,
                    node: e.node as usize,
                    at: SimTime::from_nanos(e.at),
                    packet: &e.packet,
                    injected_node: u.injected_node as usize,
                    injected_at: SimTime::from_nanos(u.injected_at),
                    hops: &hops[..e.hops_len as usize],
                });
            }
            if let Some(d) = u.delivery {
                st.stats.delivered += 1;
                on_delivery(&StreamedDelivery {
                    packet: &d.packet,
                    injected_node: u.injected_node as usize,
                    injected_at: SimTime::from_nanos(u.injected_at),
                    delivered_node: d.node as usize,
                    delivered_at: SimTime::from_nanos(d.at),
                    hops,
                });
            }
        }
        // Route this window's handoffs; their arrival times are ≥ the
        // horizon (lookahead bound), so they belong to later windows.
        let mut routed = Vec::new();
        for g in guards.iter_mut() {
            routed.append(&mut g.outbox);
        }
        for h in routed {
            debug_assert!(
                horizon.is_none_or(|hz| h.at >= hz),
                "handoff inside its own window breaks the lookahead bound"
            );
            guards[shard_of[h.node as usize]].inbox.push(h);
        }
    }
}

/// [`run_network_sharded`] over a pull-based
/// [`InjectionSource`](crate::source::InjectionSource).
///
/// **The sharded engine materializes the source.** Its determinism
/// contract tags every injection with a globally unique ordinal (its
/// index in the time-sorted injection order) so that N shards draining
/// their own queues reproduce the one-shard drain exactly; assigning
/// those ordinals — and pre-partitioning each injection to the shard
/// that owns its entry node — requires seeing the whole stream before
/// the first window runs. So this entry drains the source into a `Vec`
/// and delegates: O(run) ingest memory, unlike the sequential
/// [`run_network_streamed_source`](crate::network::run_network_streamed_source)
/// path, which stays O(source buffer). Use the sequential entry when
/// ingest memory matters more than shard parallelism; when both matter,
/// split the capture externally and hand each shard-sized piece to its
/// own run. The observable stream is byte-identical to handing the same
/// injections to [`run_network_sharded`] directly, for any shard count.
#[allow(clippy::too_many_arguments)]
pub fn run_network_sharded_source<F: Forwarder + Sync>(
    network: Network,
    forwarder: &F,
    mut source: impl crate::source::InjectionSource,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    plan: &ShardPlan,
    shards: usize,
    on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> ShardRunStats {
    let mut injections = Vec::new();
    while source.peek().is_some() {
        injections.push(source.next_injection().expect("source peeked non-empty"));
    }
    run_network_sharded(
        network,
        forwarder,
        injections,
        sink,
        opts,
        plan,
        shards,
        on_delivery,
    )
}

/// Run the network sharded by `plan`, byte-identical to the same call
/// with `shards == 1` — see the module docs for the determinism argument
/// and [`NetworkRunStats`] for which fused fields are shard-count
/// invariant.
///
/// Ingest is materialized: the whole injection stream is collected,
/// stably time-sorted and pre-partitioned per shard before the first
/// window runs (the per-injection global ordinal the determinism
/// argument rests on is an index into that sorted order). Streamed
/// sources go through [`run_network_sharded_source`], which documents
/// the memory consequence.
///
/// The effective shard count is `shards` capped by the plan's group
/// count; if any inter-group link has zero latency the partition admits
/// no conservative lookahead and the run collapses to one shard (one
/// unbounded window). With one effective shard everything runs inline on
/// the calling thread; otherwise persistent worker threads process
/// windows between barriers while the caller's thread merges and emits —
/// `sink`, `on_delivery` and `stop` never leave the calling thread.
#[allow(clippy::too_many_arguments)]
pub fn run_network_sharded<F: Forwarder + Sync>(
    network: Network,
    forwarder: &F,
    injections: impl IntoIterator<Item = (NodeId, Packet)>,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    plan: &ShardPlan,
    shards: usize,
    mut on_delivery: impl FnMut(&StreamedDelivery<'_>),
) -> ShardRunStats {
    let n = network.nodes.len();
    assert_eq!(
        plan.groups().len(),
        n,
        "shard plan covers {} nodes, network has {n}",
        plan.groups().len()
    );
    let mut groups = plan.groups().to_vec();
    // Lookahead: minimum latency of any inter-group link. Zero admits no
    // conservative window — collapse to one group; absent (no inter-group
    // edges) the window is unbounded.
    let mut lookahead: Option<u64> = None;
    for (id, node) in network.nodes.iter().enumerate() {
        for p in &node.ports {
            if let Some(next) = p.link_to {
                if groups[id] != groups[next] {
                    let d = p.link_delay.as_nanos();
                    lookahead = Some(lookahead.map_or(d, |l| l.min(d)));
                }
            }
        }
    }
    if lookahead == Some(0) {
        groups = vec![0; n];
        lookahead = None;
    }
    let n_groups = groups.iter().max().map_or(1, |&m| m + 1);
    let s = shards.max(1).min(n_groups);
    let group_shard: Vec<usize> = (0..n_groups).map(|g| g % s).collect();
    let shard_of: Vec<usize> = groups.iter().map(|&g| group_shard[g]).collect();

    let mut inj: Vec<(NodeId, Packet)> = injections.into_iter().collect();
    for (node, _) in &inj {
        assert!(*node < n, "injection at unknown node {node}");
    }
    // The same stable time sort the sequential entry performs; the index
    // in this order is the packet's globally unique ordinal.
    inj.sort_by_key(|(_, p)| p.created_at);
    let mut per_shard: Vec<Vec<Injection>> = (0..s).map(|_| Vec::new()).collect();
    for (ord, &(node, packet)) in inj.iter().enumerate() {
        per_shard[shard_of[node]].push(Injection {
            node,
            packet,
            ord: ord as u64,
        });
    }

    let workers: Vec<Mutex<ShardWorker<'_, F>>> = per_shard
        .into_iter()
        .enumerate()
        .map(|(i, injections)| {
            let schedule = ShardSched::for_shard(opts.scheduler, &injections);
            Mutex::new(ShardWorker {
                shard: i,
                network: network.clone(),
                forwarder,
                shard_of: &shard_of,
                slab: PacketSlab::new(),
                schedule,
                injections,
                next_inj: 0,
                faults: opts.faults.map(FaultState::new),
                inbox: Vec::new(),
                outbox: Vec::new(),
                units: Vec::new(),
                events: Vec::new(),
                arena: Vec::new(),
            })
        })
        .collect();

    let mut st = EmitState {
        stats: NetworkRunStats {
            delivered: 0,
            queue_drops: vec![0; n],
            route_drops: vec![0; n],
            injected: 0,
            events: 0,
            peak_live_slots: 0,
            hop_allocations: 0,
            fault_drops: 0,
            network: Network::default(),
        },
        watermark: None,
        windows: 0,
        stalls: 0,
        fault_next: 0,
    };

    if s == 1 {
        drive_windows(
            &workers,
            &shard_of,
            lookahead,
            opts.stop,
            opts.faults,
            sink,
            &mut on_delivery,
            &mut st,
            &mut |h| workers[0].lock().expect("worker poisoned").run_window(h),
        );
    } else {
        // Horizon mailbox: a finite horizon is its own value; UNBOUNDED
        // encodes `None`; SHUTDOWN ends the worker loops.
        const UNBOUNDED: u64 = u64::MAX - 1;
        const SHUTDOWN: u64 = u64::MAX;
        let start = Barrier::new(s + 1);
        let done = Barrier::new(s + 1);
        let horizon = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in &workers {
                scope.spawn(|| loop {
                    start.wait();
                    let h = horizon.load(Ordering::Acquire);
                    if h == SHUTDOWN {
                        break;
                    }
                    w.lock()
                        .expect("worker poisoned")
                        .run_window((h != UNBOUNDED).then_some(h));
                    done.wait();
                });
            }
            drive_windows(
                &workers,
                &shard_of,
                lookahead,
                opts.stop,
                opts.faults,
                sink,
                &mut on_delivery,
                &mut st,
                &mut |h| {
                    horizon.store(h.unwrap_or(UNBOUNDED), Ordering::Release);
                    start.wait();
                    done.wait();
                },
            );
            horizon.store(SHUTDOWN, Ordering::Release);
            start.wait();
        });
    }

    let mut workers: Vec<ShardWorker<'_, F>> = workers
        .into_iter()
        .map(|m| m.into_inner().expect("worker poisoned"))
        .collect();
    // Fused final network: each switch's queue state from the shard that
    // owned (and therefore exclusively mutated) it.
    let mut fused = std::mem::take(&mut workers[0].network);
    for (node, &sh) in shard_of.iter().enumerate() {
        if sh != 0 {
            fused.nodes[node] = workers[sh].network.nodes[node].clone();
        }
    }
    st.stats.network = fused;

    ShardRunStats {
        stats: st.stats,
        shards: s,
        windows: st.windows,
        shard_stalls: st.stalls,
    }
    .merged(
        workers
            .iter()
            .map(|w| (w.slab.peak_live(), w.slab.hop_allocations())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{run_network_streamed_opts, Port};
    use crate::queue::QueueConfig;
    use rlir_net::flow::FlowKey;
    use rlir_net::time::SimDuration;
    use std::net::Ipv4Addr;

    /// Two switches in tandem, each its own group, 1 µs link.
    fn tandem() -> Network {
        let mut net = Network::default();
        let a = net.add_node("A");
        let b = net.add_node("B");
        let cfg = QueueConfig::oc192();
        net.add_port(a, Port::to_switch(cfg, b, SimDuration::from_micros(1)));
        net.add_port(b, Port::to_host(cfg, SimDuration::from_micros(1)));
        net
    }

    struct Chain;
    impl Forwarder for Chain {
        fn route(&self, _node: NodeId, _packet: &Packet) -> RouteDecision {
            RouteDecision::Forward(0)
        }
    }

    fn pkt(id: u64, at: u64) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000,
                Ipv4Addr::new(10, 0, 0, 2),
                2000,
            ),
            1000,
            SimTime::from_nanos(at),
        )
    }

    /// Order-sensitive digest sink over the full hop + watermark stream.
    #[derive(Default)]
    struct Digest(u64);
    impl Digest {
        fn fold(&mut self, x: u64) {
            let mut h = self.0 ^ x;
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            self.0 = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
    }
    impl HopSink for Digest {
        fn on_hop(&mut self, ev: &HopEvent<'_>) {
            self.fold(match ev.kind {
                HopKind::Arrive => 1,
                HopKind::Enqueue { port } => 2 + ((port as u64) << 8),
                HopKind::Dequeue { port, arrived } => {
                    (3 + ((port as u64) << 8)) ^ arrived.as_nanos()
                }
                HopKind::QueueDrop { port } => 4 + ((port as u64) << 8),
                HopKind::RouteDrop => 5,
                HopKind::Deliver => 6,
            });
            self.fold(ev.node as u64);
            self.fold(ev.at.as_nanos());
            self.fold(ev.packet.id.0);
            self.fold(ev.hops.len() as u64);
        }
        fn on_watermark(&mut self, watermark: SimTime) {
            self.fold(0xFFFF_0000 ^ watermark.as_nanos());
        }
    }

    fn sharded_digest(shards: usize, injections: &[(NodeId, Packet)]) -> (u64, ShardRunStats) {
        let mut sink = Digest::default();
        let plan = ShardPlan::new(vec![0, 1]);
        let mut deliveries = Vec::new();
        let out = run_network_sharded(
            tandem(),
            &Chain,
            injections.iter().copied(),
            &mut sink,
            RunOptions::default(),
            &plan,
            shards,
            |d| deliveries.push((d.packet.id.0, d.delivered_at.as_nanos())),
        );
        let mut digest = sink;
        for (id, at) in deliveries {
            digest.fold(id);
            digest.fold(at);
        }
        (digest.0, out)
    }

    #[test]
    fn streamed_source_entry_is_byte_identical_for_any_shard_count() {
        // The sharded engine materializes the source (ordinal assignment
        // needs the whole stream); what must NOT change is the observable
        // output — same digest as the iterator entry, for every shard
        // count.
        let injections: Vec<(NodeId, Packet)> = (0..600)
            .map(|i| (i as usize % 2, pkt(i, (i % 7) * 900)))
            .collect();
        for shards in [1, 2] {
            let (expect, _) = sharded_digest(shards, &injections);
            let mut sink = Digest::default();
            let mut deliveries = Vec::new();
            let out = run_network_sharded_source(
                tandem(),
                &Chain,
                crate::source::SortedVecSource::new(injections.iter().copied()),
                &mut sink,
                RunOptions::default(),
                &ShardPlan::new(vec![0, 1]),
                shards,
                |d| deliveries.push((d.packet.id.0, d.delivered_at.as_nanos())),
            );
            let mut digest = sink;
            for (id, at) in deliveries {
                digest.fold(id);
                digest.fold(at);
            }
            assert_eq!(
                digest.0, expect,
                "source entry diverged at {shards} shard(s)"
            );
            assert_eq!(out.stats.injected, injections.len() as u64);
        }
    }

    #[test]
    fn merged_takes_max_of_peaks_and_sums_allocations() {
        let stats = NetworkRunStats {
            delivered: 0,
            queue_drops: vec![],
            route_drops: vec![],
            injected: 0,
            events: 0,
            peak_live_slots: 3,
            hop_allocations: 5,
            fault_drops: 0,
            network: tandem(),
        };
        let fused = ShardRunStats {
            stats,
            shards: 3,
            windows: 0,
            shard_stalls: 0,
        }
        .merged([(7, 10), (2, 1), (4, 100)]);
        // Max of per-shard peaks (independent pools), sum of allocations.
        assert_eq!(fused.stats.peak_live_slots, 7);
        assert_eq!(fused.stats.hop_allocations, 5 + 10 + 1 + 100);
    }

    #[test]
    fn two_shards_match_one_shard_exactly() {
        let injections: Vec<(NodeId, Packet)> = (0..40)
            .map(|i| (0usize, pkt(i, (i * 313) % 7_000)))
            .collect();
        let (d1, s1) = sharded_digest(1, &injections);
        let (d2, s2) = sharded_digest(2, &injections);
        assert_eq!(d1, d2, "hop/watermark/delivery streams diverged");
        assert_eq!(s1.stats.delivered, s2.stats.delivered);
        assert_eq!(s1.stats.events, s2.stats.events);
        assert_eq!(s1.stats.queue_drops, s2.stats.queue_drops);
        assert_eq!(
            s1.windows, s2.windows,
            "window sequence must not depend on N"
        );
        assert_eq!(s2.shards, 2);
        assert!(s1.stats.delivered > 0);
    }

    #[test]
    fn tie_free_single_shard_matches_sequential_engine() {
        // One packet in flight at a time ⇒ no same-time ties anywhere ⇒
        // the keyed order coincides with the sequential push order.
        let injections: Vec<(NodeId, Packet)> =
            (0..20).map(|i| (0usize, pkt(i, i * 1_000_000))).collect();
        let mut seq_sink = Digest::default();
        let seq = run_network_streamed_opts(
            tandem(),
            &Chain,
            injections.iter().copied(),
            &mut seq_sink,
            RunOptions::default(),
            |_| {},
        );
        let (_, sharded) = sharded_digest(2, &injections);
        let mut sh_sink = Digest::default();
        let plan = ShardPlan::new(vec![0, 1]);
        run_network_sharded(
            tandem(),
            &Chain,
            injections.iter().copied(),
            &mut sh_sink,
            RunOptions::default(),
            &plan,
            2,
            |_| {},
        );
        assert_eq!(seq_sink.0, sh_sink.0, "tie-free streams must coincide");
        assert_eq!(seq.delivered, sharded.stats.delivered);
        assert_eq!(seq.events, sharded.stats.events);
    }

    #[test]
    fn shard_count_caps_at_group_count() {
        let injections = vec![(0usize, pkt(0, 0))];
        let (_, out) = sharded_digest(16, &injections);
        assert_eq!(out.shards, 2, "2 groups admit at most 2 shards");
    }
}
