//! Benchmark for the Fig. 5 interference measurement: one paired
//! (with/without references) utilization point.

use criterion::{criterion_group, criterion_main, Criterion};
use rlir::experiment::{run_loss_sweep_on, LossSweepConfig, TwoHopConfig};
use rlir_exec::SweepRunner;
use rlir_net::time::SimDuration;
use rlir_rli::PolicyKind;
use rlir_trace::generate;

fn bench_fig5(c: &mut Criterion) {
    let duration = SimDuration::from_millis(10);
    let base = TwoHopConfig {
        policy: PolicyKind::Static { n: 100 },
        ..TwoHopConfig::paper(42, duration)
    };
    let regular = generate(&base.regular_trace());
    let cross = generate(&base.cross_trace());
    let mut group = c.benchmark_group("fig5_interference");
    group.sample_size(10);
    group.bench_function("paired_point_93pct", |b| {
        b.iter(|| {
            let sweep = LossSweepConfig {
                base: base.clone(),
                targets: vec![0.93],
            };
            // Single-threaded so the benchmark measures the pipeline, not
            // the host's scheduling.
            run_loss_sweep_on(&sweep, &regular, &cross, &SweepRunner::single())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
