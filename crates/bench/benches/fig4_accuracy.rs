//! Benchmark for the Fig. 4 accuracy pipeline: one full two-hop run
//! (trace → sender instrumentation → tandem simulation → receiver →
//! per-flow error extraction) per policy, at a reduced duration so a
//! Criterion sample stays sub-second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlir::experiment::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_net::time::SimDuration;
use rlir_rli::{AdaptiveConfig, PolicyKind};
use rlir_trace::generate;

fn bench_fig4(c: &mut Criterion) {
    let duration = SimDuration::from_millis(10);
    let base = TwoHopConfig::paper(42, duration);
    let regular = generate(&base.regular_trace());
    let cross = generate(&base.cross_trace());
    let mut group = c.benchmark_group("fig4_accuracy");
    group.sample_size(10);
    for (name, policy) in [
        ("static_1_100", PolicyKind::Static { n: 100 }),
        (
            "adaptive",
            PolicyKind::Adaptive(AdaptiveConfig::paper_default()),
        ),
    ] {
        for target in [0.67f64, 0.93] {
            group.bench_function(format!("{name}_{:.0}pct", target * 100.0), |b| {
                b.iter_batched(
                    || {
                        let mut cfg = base.clone();
                        cfg.policy = policy.clone();
                        cfg.cross = CrossSpec::Uniform {
                            target_utilization: target,
                        };
                        cfg
                    },
                    |cfg| run_two_hop_on(&cfg, &regular, &cross),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
