//! Benchmarks for the §3.1 placement analysis: closed-form table vs
//! brute-force enumeration over constructed fat-trees.

use criterion::{criterion_group, criterion_main, Criterion};
use rlir_net::HashAlgo;
use rlir_topo::placement::{enumerate_cores_between, placement_table};
use rlir_topo::FatTree;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    group.bench_function("table_k4_to_k64", |b| {
        b.iter(|| placement_table(&[4, 8, 16, 32, 64]))
    });
    group.bench_function("fattree_build_k16", |b| {
        b.iter(|| FatTree::new(16, HashAlgo::default()))
    });
    let tree = FatTree::new(8, HashAlgo::Crc32 { seed: 1 });
    group.bench_function("enumerate_cores_k8", |b| {
        b.iter(|| enumerate_cores_between(&tree, tree.tor(0, 0), tree.tor(7, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
