//! Micro-benchmarks for the per-packet hot paths: ECMP hashing, LPM lookup,
//! queue offers, interpolation, LDA updates, wire encode/decode, workload
//! generation — and the headline `pipeline/*` group, which runs the Fig. 4
//! two-hop utilization-sweep pipeline end to end in both its streaming
//! (current) and batched (seed) forms. `scripts/bench.sh` turns the
//! `pipeline/*` results into `BENCH_pipeline.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rlir::experiment::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_baselines::{Lda, LdaConfig};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::wire::{decode_reference_packet, encode_reference_packet};
use rlir_net::{FlowKey, HashAlgo, Ipv4Prefix, PrefixTrie};
use rlir_rli::{DelaySample, FlowAccumulator, Interpolator, RliSender, StaticPolicy};
use rlir_sim::queue::baseline::SeedFifoQueue;
use rlir_sim::{
    calibrate_keep_prob, CrossInjector, CrossModel, Delivery, FifoQueue, QueueConfig, Verdict,
};
use rlir_stats::StreamingStats;
use rlir_trace::{generate, Trace, TraceConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn keys(n: u32) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            FlowKey::tcp(
                Ipv4Addr::from(0x0A00_0000 | (h as u32 & 0xFFFF)),
                (h >> 16) as u16,
                Ipv4Addr::new(10, 3, 0, 2),
                80,
            )
        })
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let ks = keys(1024);
    let mut group = c.benchmark_group("ecmp_hash");
    group.throughput(Throughput::Elements(ks.len() as u64));
    for algo in [
        HashAlgo::Crc32 { seed: 7 },
        HashAlgo::Fnv { seed: 7 },
        HashAlgo::XorFold { seed: 7 },
    ] {
        group.bench_function(format!("{algo:?}"), |b| {
            b.iter(|| ks.iter().map(|k| algo.select(k, 4)).sum::<usize>())
        });
    }
    group.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for pod in 0..64u8 {
        for tor in 0..32u8 {
            let p = Ipv4Prefix::new(Ipv4Addr::new(10, pod, tor, 0), 24).unwrap();
            trie.insert(p, (pod, tor));
        }
    }
    let addrs: Vec<Ipv4Addr> = (0..1024u32)
        .map(|i| Ipv4Addr::new(10, (i % 64) as u8, (i % 32) as u8, (i % 250) as u8))
        .collect();
    let mut group = c.benchmark_group("lpm_trie");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("lookup_2048_prefixes", |b| {
        b.iter(|| addrs.iter().filter(|a| trie.lookup(**a).is_some()).count())
    });
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let ks = keys(1);
    let mut group = c.benchmark_group("fifo_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("offer_10k", |b| {
        b.iter(|| {
            let mut q = FifoQueue::new(QueueConfig::oc192());
            let mut accepted = 0u64;
            for i in 0..10_000u64 {
                let p = Packet::regular(i, ks[0], 700, SimTime::from_nanos(i * 700));
                if matches!(q.offer(p.created_at, &p), rlir_sim::Verdict::Departs(_)) {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    group.bench_function("seed_offer_10k", |b| {
        // The frozen pre-optimization queue (u128 division per offer).
        b.iter(|| {
            let mut q = SeedFifoQueue::new(QueueConfig::oc192());
            let mut accepted = 0u64;
            for i in 0..10_000u64 {
                let p = Packet::regular(i, ks[0], 700, SimTime::from_nanos(i * 700));
                if matches!(q.offer(p.created_at, &p), rlir_sim::Verdict::Departs(_)) {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let left = DelaySample::new(SimTime::from_nanos(0), 3000.0);
    let right = DelaySample::new(SimTime::from_nanos(100_000), 5000.0);
    let mut group = c.benchmark_group("interpolation");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("linear_1k", |b| {
        b.iter(|| {
            (0..1000u64)
                .map(|i| Interpolator::Linear.estimate(left, right, SimTime::from_nanos(i * 100)))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_lda(c: &mut Criterion) {
    let mut group = c.benchmark_group("lda");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut lda = Lda::new(LdaConfig::default());
            for i in 0..10_000u64 {
                lda.record(i, SimTime::from_nanos(i * 700));
            }
            lda.recorded()
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let flow = keys(1)[0];
    let info = ReferenceInfo {
        sender: SenderId(3),
        seq: 12345,
        tx_timestamp: SimTime::from_nanos(987_654_321),
    };
    let encoded = encode_reference_packet(&flow, &info, 0);
    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_reference", |b| {
        b.iter(|| encode_reference_packet(&flow, &info, 0))
    });
    group.bench_function("decode_reference", |b| {
        b.iter(|| decode_reference_packet(&encoded).unwrap())
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("welford_push_10k", |b| {
        b.iter(|| {
            let mut s = StreamingStats::new();
            for i in 0..10_000 {
                s.push(i as f64 * 0.37);
            }
            s.variance()
        })
    });
    group.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    group.sample_size(10);
    group.bench_function("paper_regular_10ms", |b| {
        b.iter(|| {
            generate(&TraceConfig::paper_regular(
                42,
                SimDuration::from_millis(10),
            ))
        })
    });
    group.finish();
}

/// The sweep's reference-stream flow key (mirrors the two-hop harness).
fn pipeline_ref_key() -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(10, 1, 255, 254),
        40_000,
        Ipv4Addr::new(10, 200, 255, 254),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// The seed's batched Fig. 4 pipeline, reproduced component for component:
/// per-packet `Vec` from `observe_alloc`, whole-trace upstream/cross/
/// delivery buffers, the seed's two-pass tandem over [`SeedFifoQueue`]
/// (per-packet u128 division arithmetic), and a SipHash per-flow table.
/// This is the pre-optimization baseline `BENCH_pipeline.json` compares
/// against without checking out an old commit.
fn run_two_hop_batched(cfg: &TwoHopConfig, regular: &Trace, cross: &Trace) -> (usize, f64) {
    let CrossSpec::Uniform { target_utilization } = cfg.cross else {
        panic!("baseline models the uniform sweep only");
    };
    let keep_prob = calibrate_keep_prob(
        target_utilization,
        regular.offered_utilization(),
        cross.offered_utilization(),
        1.0,
    );
    let mut injector =
        CrossInjector::new(CrossModel::Uniform { keep_prob }, cfg.seed ^ 0xC505_11EC);
    let cross_packets: Vec<Packet> = cross
        .packets
        .iter()
        .copied()
        .filter(|p| injector.select(p))
        .collect();

    let mut sender = RliSender::new(
        SenderId(1),
        cfg.clocks.sender,
        cfg.policy.build(),
        vec![pipeline_ref_key()],
    );
    let mut upstream: Vec<Packet> = Vec::with_capacity(regular.packets.len() + 64);
    for p in &regular.packets {
        upstream.push(*p);
        // Seed behavior: a fresh Vec<Packet> per observed packet.
        upstream.extend(sender.observe_alloc(p));
    }

    // Seed tandem, pass 1: buffer every switch-1 survivor.
    let mut sw1 = SeedFifoQueue::new(cfg.tandem.switch1);
    let mut sw2 = SeedFifoQueue::new(cfg.tandem.switch2);
    let mut from_sw1: Vec<(Packet, SimTime, SimTime)> = Vec::new();
    for p in upstream {
        if let Verdict::Departs(egress) = sw1.offer(p.created_at, &p) {
            from_sw1.push((p, egress, egress + cfg.tandem.link_delay));
        }
    }

    // Seed tandem, pass 2: sorted merge into switch 2, buffering deliveries.
    let mut deliveries: Vec<Delivery> = Vec::with_capacity(from_sw1.len());
    let mut cross_in = cross_packets.into_iter().peekable();
    let mut sw1_out = from_sw1.into_iter().peekable();
    loop {
        let take_cross = match (sw1_out.peek(), cross_in.peek()) {
            (None, None) => break,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some((u, _, ua)), Some(c)) => (c.created_at, c.id) < (*ua, u.id),
        };
        if take_cross {
            let p = cross_in.next().expect("peeked");
            let _ = sw2.offer(p.created_at, &p);
        } else {
            let (p, egress1, at2) = sw1_out.next().expect("peeked");
            if let Verdict::Departs(out) = sw2.offer(at2, &p) {
                deliveries.push(Delivery {
                    packet: p,
                    sent_at: p.created_at,
                    sw1_egress: Some(egress1),
                    delivered_at: out,
                });
            }
        }
    }

    // Seed receiver: per-packet `Interpolator::estimate` (slope division
    // per packet) feeding the seed's sparse per-flow table — a SipHash
    // `HashMap` whose buckets hold the full ~300-byte accumulator, exactly
    // the layout this PR replaced with a dense FxHash index map.
    #[derive(Default)]
    struct SeedAccumulator {
        est: StreamingStats,
        truth: StreamingStats,
    }
    let rx_clock = cfg.clocks.receiver;
    let mut flows: HashMap<FlowKey, SeedAccumulator> = HashMap::new();
    let mut left: Option<DelaySample> = None;
    let mut pending: Vec<(SimTime, FlowKey, f64)> = Vec::new();
    for d in &deliveries {
        match d.packet.reference_info() {
            Some(info) => {
                let rx_local = rx_clock.observe(d.delivered_at);
                let delay_ns = rx_local.signed_delta_nanos(info.tx_timestamp) as f64;
                let right = DelaySample::new(d.delivered_at, delay_ns);
                if let Some(l) = left {
                    for (at, flow, truth) in pending.drain(..) {
                        let est = cfg.interpolator.estimate(l, right, at);
                        let acc = flows.entry(flow).or_default();
                        acc.est.push(est);
                        acc.truth.push(truth);
                    }
                }
                left = Some(right);
            }
            None if d.packet.is_regular() && left.is_some() => {
                pending.push((
                    d.delivered_at,
                    d.packet.flow,
                    d.true_delay().as_nanos() as f64,
                ));
            }
            None => {}
        }
    }
    (flows.len(), sw2.utilization(cfg.tandem.horizon))
}

/// `pipeline/*`: the tandem utilization sweep, streaming vs batched, in
/// packets/sec of offered trace traffic (regular + cross, pre-filtering).
fn bench_pipeline(c: &mut Criterion) {
    // Trace generation is seconds of work; skip it when the CLI filter
    // excludes this group (the vendored criterion filters inside
    // bench_function, after setup would already have run).
    if !c.filter_matches("pipeline") {
        return;
    }
    let duration = SimDuration::from_millis(150);
    let base = TwoHopConfig::paper(42, duration);
    let regular = generate(&base.regular_trace());
    let cross = generate(&base.cross_trace());
    let offered = (regular.packets.len() + cross.packets.len()) as u64;
    let targets = [0.34f64, 0.67, 0.93];

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(offered * targets.len() as u64));
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut flows = 0usize;
            for target in targets {
                let mut cfg = base.clone();
                cfg.cross = CrossSpec::Uniform {
                    target_utilization: target,
                };
                flows += run_two_hop_on(&cfg, &regular, &cross).flows.flow_count();
            }
            flows
        })
    });
    group.bench_function("batched_seed", |b| {
        b.iter(|| {
            let mut flows = 0usize;
            for target in targets {
                let mut cfg = base.clone();
                cfg.cross = CrossSpec::Uniform {
                    target_utilization: target,
                };
                flows += run_two_hop_batched(&cfg, &regular, &cross).0;
            }
            flows
        })
    });
    group.finish();
}

/// `sender_observe/*`: the per-packet sender hot path in isolation —
/// scratch-slice (current) vs allocating (seed) observe.
fn bench_sender_observe(c: &mut Criterion) {
    if !c.filter_matches("sender_observe") {
        return;
    }
    let n_packets = 100_000u64;
    let mk = || {
        RliSender::new(
            SenderId(1),
            ClockModel::perfect(),
            StaticPolicy::one_in(100),
            vec![pipeline_ref_key()],
        )
    };
    let packets: Vec<Packet> = (0..n_packets)
        .map(|i| {
            Packet::regular(
                i,
                FlowKey::tcp(
                    Ipv4Addr::from(0x0A00_0000 | (i as u32 & 0xFF)),
                    (i % 61) as u16,
                    Ipv4Addr::new(10, 3, 0, 2),
                    80,
                ),
                700,
                SimTime::from_nanos(i * 700),
            )
        })
        .collect();
    let mut group = c.benchmark_group("sender_observe");
    group.throughput(Throughput::Elements(n_packets));
    group.bench_function("scratch_slice", |b| {
        b.iter(|| {
            let mut s = mk();
            let mut refs = 0usize;
            for p in &packets {
                refs += s.observe(p).len();
            }
            refs
        })
    });
    group.bench_function("alloc_per_packet", |b| {
        b.iter(|| {
            let mut s = mk();
            let mut refs = 0usize;
            for p in &packets {
                refs += s.observe_alloc(p).len();
            }
            refs
        })
    });
    group.finish();
}

/// `flow_table/*`: FxHash vs SipHash per-flow aggregation.
fn bench_flow_table(c: &mut Criterion) {
    let n = 100_000u64;
    let ks = keys(512);
    let mut group = c.benchmark_group("flow_table");
    group.throughput(Throughput::Elements(n));
    group.bench_function("fxhash_record_100k", |b| {
        b.iter(|| {
            let mut t = rlir_rli::FlowTable::<rlir_net::FxBuildHasher>::new();
            for i in 0..n {
                t.record(ks[(i % 512) as usize], i as f64, Some(i as f64 + 5.0));
            }
            t.flow_count()
        })
    });
    group.bench_function("siphash_sparse_seed_record_100k", |b| {
        // The seed's layout: SipHash table whose buckets hold the whole
        // ~300-byte accumulator.
        b.iter(|| {
            let mut t: HashMap<FlowKey, FlowAccumulator> = HashMap::new();
            for i in 0..n {
                let acc = t.entry(ks[(i % 512) as usize]).or_default();
                acc.est.push(i as f64);
                acc.truth.push(i as f64 + 5.0);
            }
            t.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_sender_observe,
    bench_flow_table,
    bench_hash,
    bench_trie,
    bench_queue,
    bench_interpolation,
    bench_lda,
    bench_wire,
    bench_stats,
    bench_trace_gen
);
criterion_main!(benches);
