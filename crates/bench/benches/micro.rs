//! Micro-benchmarks for the per-packet hot paths: ECMP hashing, LPM lookup,
//! queue offers, interpolation, LDA updates, wire encode/decode, and
//! workload generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rlir_baselines::{Lda, LdaConfig};
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::wire::{decode_reference_packet, encode_reference_packet};
use rlir_net::{FlowKey, HashAlgo, Ipv4Prefix, PrefixTrie};
use rlir_rli::{DelaySample, Interpolator};
use rlir_sim::{FifoQueue, QueueConfig};
use rlir_stats::StreamingStats;
use rlir_trace::{generate, TraceConfig};
use std::net::Ipv4Addr;

fn keys(n: u32) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            FlowKey::tcp(
                Ipv4Addr::from(0x0A00_0000 | (h as u32 & 0xFFFF)),
                (h >> 16) as u16,
                Ipv4Addr::new(10, 3, 0, 2),
                80,
            )
        })
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let ks = keys(1024);
    let mut group = c.benchmark_group("ecmp_hash");
    group.throughput(Throughput::Elements(ks.len() as u64));
    for algo in [
        HashAlgo::Crc32 { seed: 7 },
        HashAlgo::Fnv { seed: 7 },
        HashAlgo::XorFold { seed: 7 },
    ] {
        group.bench_function(format!("{algo:?}"), |b| {
            b.iter(|| ks.iter().map(|k| algo.select(k, 4)).sum::<usize>())
        });
    }
    group.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    for pod in 0..64u8 {
        for tor in 0..32u8 {
            let p = Ipv4Prefix::new(Ipv4Addr::new(10, pod, tor, 0), 24).unwrap();
            trie.insert(p, (pod, tor));
        }
    }
    let addrs: Vec<Ipv4Addr> = (0..1024u32)
        .map(|i| Ipv4Addr::new(10, (i % 64) as u8, (i % 32) as u8, (i % 250) as u8))
        .collect();
    let mut group = c.benchmark_group("lpm_trie");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("lookup_2048_prefixes", |b| {
        b.iter(|| addrs.iter().filter(|a| trie.lookup(**a).is_some()).count())
    });
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let ks = keys(1);
    let mut group = c.benchmark_group("fifo_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("offer_10k", |b| {
        b.iter(|| {
            let mut q = FifoQueue::new(QueueConfig::oc192());
            let mut accepted = 0u64;
            for i in 0..10_000u64 {
                let p = Packet::regular(i, ks[0], 700, SimTime::from_nanos(i * 700));
                if matches!(q.offer(p.created_at, &p), rlir_sim::Verdict::Departs(_)) {
                    accepted += 1;
                }
            }
            accepted
        })
    });
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let left = DelaySample::new(SimTime::from_nanos(0), 3000.0);
    let right = DelaySample::new(SimTime::from_nanos(100_000), 5000.0);
    let mut group = c.benchmark_group("interpolation");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("linear_1k", |b| {
        b.iter(|| {
            (0..1000u64)
                .map(|i| {
                    Interpolator::Linear.estimate(left, right, SimTime::from_nanos(i * 100))
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_lda(c: &mut Criterion) {
    let mut group = c.benchmark_group("lda");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut lda = Lda::new(LdaConfig::default());
            for i in 0..10_000u64 {
                lda.record(i, SimTime::from_nanos(i * 700));
            }
            lda.recorded()
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let flow = keys(1)[0];
    let info = ReferenceInfo {
        sender: SenderId(3),
        seq: 12345,
        tx_timestamp: SimTime::from_nanos(987_654_321),
    };
    let encoded = encode_reference_packet(&flow, &info, 0);
    let mut group = c.benchmark_group("wire");
    group.bench_function("encode_reference", |b| {
        b.iter(|| encode_reference_packet(&flow, &info, 0))
    });
    group.bench_function("decode_reference", |b| {
        b.iter(|| decode_reference_packet(&encoded).unwrap())
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("welford_push_10k", |b| {
        b.iter(|| {
            let mut s = StreamingStats::new();
            for i in 0..10_000 {
                s.push(i as f64 * 0.37);
            }
            s.variance()
        })
    });
    group.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_gen");
    group.sample_size(10);
    group.bench_function("paper_regular_10ms", |b| {
        b.iter(|| generate(&TraceConfig::paper_regular(42, SimDuration::from_millis(10))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_trie,
    bench_queue,
    bench_interpolation,
    bench_lda,
    bench_wire,
    bench_stats,
    bench_trace_gen
);
criterion_main!(benches);
