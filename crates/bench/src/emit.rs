//! Shared terminal-table + CSV emitters.
//!
//! The `experiments` binary's legacy figure subcommands (`experiments
//! fig5`, `experiments interp`, …) and the scenario registry entries
//! (`experiments run interference`, `experiments run interp`, …) print the
//! same tables and persist the same series. These helpers are the single
//! source of truth for both paths, so the two cannot drift apart; only the
//! title and CSV file name stay caller-chosen (registry files are prefixed
//! `scenario_`).

use crate::figures::{DemuxRow, Fig5Point, InterpRow, QuantileRow, ShapeCheck, SyncRow};
use crate::output::{write_csv, OutputDir};
use rlir_rli::EpochSnapshot;

/// CSV header of every per-epoch time-series export.
pub const EPOCH_SERIES_HEADER: &str = "label,epoch,start_ns,regulars_seen,estimated,unestimated,\
dropped_after_metering,est_mean_ns,true_mean_ns";

/// Render labeled epoch series as the shared per-epoch CSV — the
/// registry's time-series export format, one row per `(label, epoch)`.
pub fn epoch_series_csv<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a [EpochSnapshot])>,
) -> String {
    write_csv(
        EPOCH_SERIES_HEADER,
        rows.into_iter().flat_map(|(label, series)| {
            series.iter().map(move |e| {
                format!(
                    "{label},{},{},{},{},{},{},{},{}",
                    e.epoch,
                    e.start.as_nanos(),
                    e.regulars_seen,
                    e.estimated,
                    e.unestimated,
                    e.dropped_after_metering,
                    e.est_mean().unwrap_or(f64::NAN),
                    e.true_mean().unwrap_or(f64::NAN),
                )
            })
        }),
    )
}

/// Print `[PASS]`/`[MISS]` shape-check lines.
pub fn print_shape_checks(checks: &[ShapeCheck]) {
    for c in checks {
        println!(
            "  [{}] {} — {}",
            if c.holds { "PASS" } else { "MISS" },
            c.claim,
            c.detail
        );
    }
}

/// Fig. 5 interference table + shape checks + CSV.
pub fn emit_fig5(
    title: &str,
    points: &[Fig5Point],
    checks: &[ShapeCheck],
    csv_name: &str,
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    println!(
        "  {:<10} {:>8} {:>10} {:>16} {:>12}",
        "policy", "target", "realised", "loss diff", "base loss"
    );
    for p in points {
        println!(
            "  {:<10} {:>7.0}% {:>9.1}% {:>15.6}% {:>11.4}%",
            p.policy,
            p.target * 100.0,
            p.utilization * 100.0,
            p.loss_difference * 100.0,
            p.base_loss * 100.0
        );
    }
    print_shape_checks(checks);
    let csv = write_csv(
        "policy,target_utilization,utilization,loss_difference,base_loss",
        points.iter().map(|p| {
            format!(
                "{},{},{},{},{}",
                p.policy, p.target, p.utilization, p.loss_difference, p.base_loss
            )
        }),
    );
    out.write(csv_name, &csv).map(|_| ())
}

/// Demultiplexing-ablation table + CSV.
pub fn emit_demux(
    title: &str,
    rows: &[DemuxRow],
    csv_name: &str,
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    println!(
        "  {:<14} {:>10} {:>16} {:>16} {:>12} {:>6} {:>6} {:>8}",
        "mode",
        "assoc acc",
        "seg1 median err",
        "seg2 median err",
        "estimates",
        "late",
        "shed",
        "pending"
    );
    for r in rows {
        println!(
            "  {:<14} {:>9.1}% {:>15.2}% {:>15.2}% {:>12} {:>6} {:>6} {:>8}",
            r.mode,
            r.accuracy * 100.0,
            r.seg1_median_error * 100.0,
            r.seg2_median_error * 100.0,
            r.seg2_estimates,
            r.late,
            r.shed,
            r.peak_pending
        );
    }
    let csv = write_csv(
        "mode,accuracy,seg1_median_error,seg2_median_error,seg2_estimates,late,shed,peak_pending",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{},{},{},{}",
                r.mode,
                r.accuracy,
                r.seg1_median_error,
                r.seg2_median_error,
                r.seg2_estimates,
                r.late,
                r.shed,
                r.peak_pending
            )
        }),
    );
    out.write(csv_name, &csv)?;
    // The per-epoch segment-2 series of every mode, as a companion file.
    let labeled: Vec<(String, &[EpochSnapshot])> = rows
        .iter()
        .map(|r| (r.mode.clone(), r.seg2_epochs.as_slice()))
        .collect();
    write_epoch_companion(out, csv_name, &labeled)
}

/// `foo.csv` → `foo_epochs.csv` (companion per-epoch series file).
pub fn epoch_csv_name(csv_name: &str) -> String {
    match csv_name.strip_suffix(".csv") {
        Some(base) => format!("{base}_epochs.csv"),
        None => format!("{csv_name}_epochs.csv"),
    }
}

/// Write a scenario's per-epoch companion file next to its main CSV: the
/// labeled series rendered as [`epoch_series_csv`] into
/// [`epoch_csv_name`]`(csv_name)`. The single path every registry entry
/// uses, so the companion convention cannot drift per scenario.
pub fn write_epoch_companion(
    out: &OutputDir,
    csv_name: &str,
    labeled: &[(String, &[EpochSnapshot])],
) -> std::io::Result<()> {
    let series = epoch_series_csv(labeled.iter().map(|(l, s)| (l.as_str(), *s)));
    out.write(&epoch_csv_name(csv_name), &series).map(|_| ())
}

/// Interpolation-ablation table + CSV.
pub fn emit_interp(
    title: &str,
    rows: &[InterpRow],
    csv_name: &str,
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    for r in rows {
        println!(
            "  {:<16} median {:>6.2}%   p90 {:>7.2}%",
            r.interpolator,
            r.median_error * 100.0,
            r.p90_error * 100.0
        );
    }
    let csv = write_csv(
        "interpolator,median_error,p90_error",
        rows.iter()
            .map(|r| format!("{},{},{}", r.interpolator, r.median_error, r.p90_error)),
    );
    out.write(csv_name, &csv).map(|_| ())
}

/// Clock-sensitivity table + CSV.
pub fn emit_sync(
    title: &str,
    rows: &[SyncRow],
    csv_name: &str,
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    for r in rows {
        println!(
            "  {:<34} median {:>7.2}%   mean |err| {:>9.1} ns",
            r.scenario,
            r.median_error * 100.0,
            r.mean_abs_error_ns
        );
    }
    let csv = write_csv(
        "scenario,median_error,mean_abs_error_ns",
        rows.iter()
            .map(|r| format!("{},{},{}", r.scenario, r.median_error, r.mean_abs_error_ns)),
    );
    out.write(csv_name, &csv).map(|_| ())
}

/// Tail-quantile accuracy table + CSV.
pub fn emit_quantiles(
    title: &str,
    rows: &[QuantileRow],
    csv_name: &str,
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    for r in rows {
        println!(
            "  {:<10} p{:.0} median err {:>6.2}%   (mean-est median {:>6.2}%)   flows {:>7}",
            r.policy,
            r.p * 100.0,
            r.median_error * 100.0,
            r.mean_median_error * 100.0,
            r.flows
        );
    }
    let csv = write_csv(
        "policy,p,median_error,mean_median_error,flows",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{}",
                r.policy, r.p, r.median_error, r.mean_median_error, r.flows
            )
        }),
    );
    out.write(csv_name, &csv).map(|_| ())
}
