//! Experiment scale.
//!
//! The paper's traces are 60 s of OC-192 (22.4 M regular packets). The
//! harness reproduces the same pipelines at configurable scale so figures
//! regenerate in minutes on a laptop; all rates and utilizations are
//! preserved, only the observation window shrinks. Override with
//! environment variables:
//!
//! * `RLIR_SCALE` — `quick` | `default` | `full`
//! * `RLIR_DURATION_MS` — explicit trace duration in milliseconds
//! * `RLIR_SEEDS` — number of seeds averaged where noise matters (Fig. 5)
//! * `RLIR_SEED` — base seed
//! * `RLIR_SHARDS` — pod-shard count for the fat-tree engine (the
//!   `--shards` CLI flag overrides it; unset keeps the sequential engine)

use rlir_net::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Scale knobs derived from the environment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scale {
    /// Trace duration for accuracy figures (4a–4c).
    pub accuracy_duration: SimDuration,
    /// Trace duration for the interference sweep (Fig. 5, loss differences
    /// need longer windows).
    pub interference_duration: SimDuration,
    /// Trace duration for fat-tree experiments.
    pub fattree_duration: SimDuration,
    /// Seeds averaged for noise-sensitive series.
    pub seeds: u64,
    /// Base seed.
    pub base_seed: u64,
    /// Pod-shard count for the fat-tree engine (`None` → sequential).
    #[serde(default)]
    pub shards: Option<usize>,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        let mut s = match std::env::var("RLIR_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            Ok("full") => Scale::full(),
            _ => Scale::default_scale(),
        };
        if let Ok(ms) = std::env::var("RLIR_DURATION_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                s.accuracy_duration = SimDuration::from_millis(ms);
                s.interference_duration = SimDuration::from_millis(ms);
                s.fattree_duration = SimDuration::from_millis(ms.min(200));
            }
        }
        if let Ok(n) = std::env::var("RLIR_SEEDS") {
            if let Ok(n) = n.parse::<u64>() {
                s.seeds = n.max(1);
            }
        }
        if let Ok(n) = std::env::var("RLIR_SEED") {
            if let Ok(n) = n.parse::<u64>() {
                s.base_seed = n;
            }
        }
        s.shards = rlir_exec::shards_from_env();
        s
    }

    /// CI-sized: seconds of wall clock.
    pub fn quick() -> Scale {
        Scale {
            accuracy_duration: SimDuration::from_millis(80),
            interference_duration: SimDuration::from_millis(120),
            fattree_duration: SimDuration::from_millis(25),
            seeds: 1,
            base_seed: 42,
            shards: None,
        }
    }

    /// Laptop default: a few minutes for the full figure set.
    pub fn default_scale() -> Scale {
        Scale {
            accuracy_duration: SimDuration::from_millis(400),
            interference_duration: SimDuration::from_millis(600),
            fattree_duration: SimDuration::from_millis(60),
            seeds: 3,
            base_seed: 42,
            shards: None,
        }
    }

    /// Closest to the paper (minutes to tens of minutes).
    pub fn full() -> Scale {
        Scale {
            accuracy_duration: SimDuration::from_secs(2),
            interference_duration: SimDuration::from_secs(3),
            fattree_duration: SimDuration::from_millis(150),
            seeds: 5,
            base_seed: 42,
            shards: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = Scale::quick();
        let d = Scale::default_scale();
        let f = Scale::full();
        assert!(q.accuracy_duration < d.accuracy_duration);
        assert!(d.accuracy_duration < f.accuracy_duration);
        assert!(q.seeds <= d.seeds && d.seeds <= f.seeds);
    }

    #[test]
    fn env_parsing_is_resilient() {
        // No env vars set in tests → default scale.
        let s = Scale::from_env();
        assert!(s.seeds >= 1);
        assert!(s.accuracy_duration.as_nanos() > 0);
    }
}
