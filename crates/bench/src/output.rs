//! Result persistence.
//!
//! Every figure writes its series as CSV into the output directory
//! (default `results/`, override with `RLIR_RESULTS_DIR`), one file per
//! curve, so external plotting tools can regenerate the paper's plots.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The directory results are written into.
#[derive(Debug, Clone)]
pub struct OutputDir {
    root: PathBuf,
}

impl OutputDir {
    /// From the environment (`RLIR_RESULTS_DIR`, default `results/`).
    pub fn from_env() -> std::io::Result<OutputDir> {
        let root = std::env::var("RLIR_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
        Self::at(Path::new(&root))
    }

    /// At an explicit path (created if absent).
    pub fn at(root: &Path) -> std::io::Result<OutputDir> {
        fs::create_dir_all(root)?;
        Ok(OutputDir {
            root: root.to_path_buf(),
        })
    }

    /// The root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `content` to `<root>/<name>`, returning the full path.
    pub fn write(&self, name: &str, content: &str) -> std::io::Result<PathBuf> {
        let path = self.root.join(name);
        let mut f = fs::File::create(&path)?;
        f.write_all(content.as_bytes())?;
        Ok(path)
    }
}

/// Render rows as CSV with a header line.
pub fn write_csv(header: &str, rows: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from(header);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    for r in rows {
        out.push_str(&r);
        if !out.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let s = write_csv("a,b", ["1,2".to_string(), "3,4".to_string()]);
        assert_eq!(s, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("rlir-bench-output-test");
        let out = OutputDir::at(&dir).unwrap();
        let p = out.write("x.csv", "hello\n").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "hello\n");
        fs::remove_file(p).ok();
    }
}
