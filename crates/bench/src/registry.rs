//! The concrete scenario registrations behind `experiments list` /
//! `experiments run <name> [--threads N]`.
//!
//! Each entry wraps one harness in a closure that runs it at the ambient
//! [`Scale`] on the caller's [`SweepRunner`], prints the terminal summary
//! and persists the CSV series — so adding a workload to the binary is one
//! `register` call, not a new subcommand.

use crate::emit::{
    emit_demux, emit_fig5, emit_interp, emit_quantiles, emit_sync, print_shape_checks,
    write_epoch_companion,
};
use crate::figures::{
    demux_ablation, fig4a, fig4a_shape_checks, fig5, fig5_shape_checks, interference_base,
    interp_ablation, quantile_accuracy, sync_ablation,
};
use crate::output::{write_csv, OutputDir};
use crate::scale::Scale;
use rlir::experiment::{
    run_asymmetric, run_chaos, run_drop_aware, run_faults, run_incast, run_localize_full,
    run_plane_scale, run_replay, AsymmetricConfig, ChaosCampaignConfig, DropAwareConfig,
    FaultsConfig, IncastConfig, LocalizeConfig, LossSweepConfig, PlaneScaleConfig, ReplayConfig,
};
use rlir_exec::ScenarioRegistry;
use rlir_rli::PolicyKind;

/// Everything a registered scenario needs besides the runner.
pub struct RunContext {
    /// Scale knobs (durations, seeds).
    pub scale: Scale,
    /// Where CSV series land.
    pub out: OutputDir,
    /// Capture file for the `replay` scenario (`--trace`); `None` replays
    /// a generated capture.
    pub trace: Option<std::path::PathBuf>,
    /// Entry-node demux spec for `replay` (`--entry-map`), already
    /// validated by the CLI.
    pub entry_map: Option<String>,
    /// Tenant weight split for the fat-tree plane (`--tenants w1,w2`),
    /// already validated by the CLI: segment-1 taps become tenant 0 with
    /// weight `w1`, segment-2 taps tenant 1 with weight `w2`.
    pub tenants: Option<(u64, u64)>,
    /// Master seed override for the `chaos` scenario (`--chaos-seed`).
    pub chaos_seed: Option<u64>,
    /// Run pcap ingest in lenient skip-and-count mode (`--lenient`).
    pub lenient: bool,
}

/// Build the registry of runnable scenarios.
pub fn build_registry() -> ScenarioRegistry<RunContext> {
    let mut reg: ScenarioRegistry<RunContext> = ScenarioRegistry::new();

    reg.register(
        "two_hop",
        "Fig. 4(a) accuracy grid: {Adaptive, Static} x {67%, 93%} on the two-hop tandem",
        |ctx, runner| {
            let curves = fig4a(&ctx.scale, runner);
            println!("== two_hop: per-flow mean-error CDFs (random cross traffic) ==");
            for c in &curves {
                println!("  {}", c.summary());
            }
            print_shape_checks(&fig4a_shape_checks(&curves));
            let csv = write_csv(
                "label,target_utilization,utilization,median_error,frac_below_10pct,flows",
                curves.iter().map(|c| {
                    format!(
                        "{},{},{},{},{},{}",
                        c.label,
                        c.target_utilization,
                        c.utilization,
                        c.median_error,
                        c.frac_below_10pct,
                        c.flows
                    )
                }),
            );
            ctx.out.write("scenario_two_hop.csv", &csv)?;
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> = curves
                .iter()
                .map(|c| (c.label.clone(), c.epochs.as_slice()))
                .collect();
            write_epoch_companion(&ctx.out, "scenario_two_hop.csv", &labeled)?;
            Ok(())
        },
    );

    reg.register(
        "loss_sweep",
        "Fig. 5 interference sweep: loss-rate difference caused by reference packets",
        |ctx, runner| {
            let (base, regular, cross) = interference_base(
                PolicyKind::Static { n: 100 },
                ctx.scale.base_seed,
                ctx.scale.interference_duration,
            );
            let cfg = LossSweepConfig {
                base,
                targets: LossSweepConfig::paper_targets(),
            };
            let points = rlir::experiment::run_loss_sweep_on(&cfg, &regular, &cross, runner);
            println!("== loss_sweep: reference-packet interference (static 1-and-100) ==");
            println!(
                "  {:>8} {:>10} {:>16} {:>12}",
                "target", "realised", "loss diff", "refs"
            );
            for p in &points {
                println!(
                    "  {:>7.0}% {:>9.1}% {:>15.6}% {:>12}",
                    p.target_utilization * 100.0,
                    p.utilization * 100.0,
                    p.loss_difference() * 100.0,
                    p.refs_emitted
                );
            }
            let csv = write_csv(
                "target_utilization,utilization,loss_with_refs,loss_without_refs,refs_emitted",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{}",
                        p.target_utilization,
                        p.utilization,
                        p.loss_with_refs,
                        p.loss_without_refs,
                        p.refs_emitted
                    )
                }),
            );
            ctx.out.write("scenario_loss_sweep.csv", &csv)?;
            Ok(())
        },
    );

    reg.register(
        "fattree",
        "S3 RLIR fat-tree demux ablation: naive vs marking vs reverse-ECMP",
        |ctx, runner| {
            emit_demux(
                "fattree: demultiplexing ablation (k = 4)",
                &demux_ablation(&ctx.scale, runner),
                "scenario_fattree.csv",
                &ctx.out,
            )
        },
    );

    reg.register(
        "asymmetric",
        "NEW: round-trip measurement under asymmetric routing (per-direction RLI attribution)",
        |ctx, runner| {
            let cfg = AsymmetricConfig::paper(ctx.scale.base_seed, ctx.scale.accuracy_duration);
            let points = run_asymmetric(&cfg, runner);
            println!("== asymmetric: forward fixed at 50%, reverse path swept ==");
            println!(
                "  {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>11} {:>7}",
                "rev tgt", "fwd", "rev", "fwd err", "rev err", "rtt err", "attribution", "flows"
            );
            for p in &points {
                println!(
                    "  {:>7.0}% {:>7.1}% {:>7.1}% {:>8.2}% {:>8.2}% {:>8.2}% {:>10.1}% {:>7}",
                    p.target_reverse_utilization * 100.0,
                    p.forward_utilization * 100.0,
                    p.reverse_utilization * 100.0,
                    p.forward_median_error * 100.0,
                    p.reverse_median_error * 100.0,
                    p.rtt_median_error * 100.0,
                    p.attribution_accuracy * 100.0,
                    p.paired_flows
                );
            }
            let csv = write_csv(
                "target_reverse_utilization,forward_utilization,reverse_utilization,forward_median_error,reverse_median_error,rtt_median_error,attribution_accuracy,paired_flows",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{},{},{},{}",
                        p.target_reverse_utilization,
                        p.forward_utilization,
                        p.reverse_utilization,
                        p.forward_median_error,
                        p.reverse_median_error,
                        p.rtt_median_error,
                        p.attribution_accuracy,
                        p.paired_flows
                    )
                }),
            );
            ctx.out.write("scenario_asymmetric.csv", &csv)?;
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> = points
                .iter()
                .flat_map(|p| {
                    let tag = (p.target_reverse_utilization * 100.0).round() as u64;
                    [
                        (format!("fwd@{tag}"), p.forward_epochs.as_slice()),
                        (format!("rev@{tag}"), p.reverse_epochs.as_slice()),
                    ]
                })
                .collect();
            write_epoch_companion(&ctx.out, "scenario_asymmetric.csv", &labeled)?;
            Ok(())
        },
    );

    reg.register(
        "incast",
        "NEW: synchronized burst fan-in on the fat-tree (per-flow accuracy vs fan-in)",
        |ctx, runner| {
            let mut cfg = IncastConfig::paper(ctx.scale.base_seed, ctx.scale.fattree_duration);
            cfg.base.shards = ctx.scale.shards;
            let points = run_incast(&cfg, runner);
            println!("== incast: synchronized 20%-duty bursts into one destination ToR ==");
            println!(
                "  {:>7} {:>13} {:>13} {:>14} {:>10} {:>10}",
                "fan-in", "seg1 med err", "seg2 med err", "seg2 delay µs", "demux", "delivered"
            );
            for p in &points {
                println!(
                    "  {:>7} {:>12.2}% {:>12.2}% {:>14.1} {:>9.1}% {:>10}",
                    p.fan_in,
                    p.seg1_median_error * 100.0,
                    p.seg2_median_error * 100.0,
                    p.seg2_true_delay_us,
                    p.demux_accuracy * 100.0,
                    p.measured_delivered
                );
            }
            let csv = write_csv(
                "fan_in,seg1_median_error,seg2_median_error,seg2_true_delay_us,demux_accuracy,measured_delivered,refs_emitted",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        p.fan_in,
                        p.seg1_median_error,
                        p.seg2_median_error,
                        p.seg2_true_delay_us,
                        p.demux_accuracy,
                        p.measured_delivered,
                        p.refs_emitted
                    )
                }),
            );
            ctx.out.write("scenario_incast.csv", &csv)?;
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> = points
                .iter()
                .map(|p| (format!("fanin{}", p.fan_in), p.seg2_epochs.as_slice()))
                .collect();
            write_epoch_companion(&ctx.out, "scenario_incast.csv", &labeled)?;
            Ok(())
        },
    );

    reg.register(
        "localize",
        "NEW: fabric-wide anomaly localization (random core/edge victim per point, accuracy + onset vs background load)",
        |ctx, runner| {
            let mut cfg = LocalizeConfig::paper(ctx.scale.base_seed, ctx.scale.fattree_duration);
            cfg.base.shards = ctx.scale.shards;
            let report = run_localize_full(&cfg, runner);
            println!(
                "== localize: {} fault at one random core/edge switch per trial ==",
                cfg.extra_processing
            );
            println!(
                "  {:>11} {:>7} {:>8} {:>8} {:>9} {:>13} {:>7} {:>13}",
                "background",
                "trials",
                "flagged",
                "correct",
                "accuracy",
                "mean severity",
                "onsets",
                "mean onset ms"
            );
            for p in &report.points {
                println!(
                    "  {:>10.0}% {:>7} {:>8} {:>8} {:>8.1}% {:>13.1} {:>7} {:>13.2}",
                    p.utilization * 100.0,
                    p.trials,
                    p.flagged,
                    p.correct,
                    p.accuracy * 100.0,
                    p.mean_severity,
                    p.onsets,
                    p.mean_onset_ns / 1e6
                );
            }
            let csv = write_csv(
                "utilization,trials,flagged,correct,accuracy,mean_severity,onsets,mean_onset_ns",
                report.points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{},{},{},{}",
                        p.utilization,
                        p.trials,
                        p.flagged,
                        p.correct,
                        p.accuracy,
                        p.mean_severity,
                        p.onsets,
                        p.mean_onset_ns
                    )
                }),
            );
            ctx.out.write("scenario_localize.csv", &csv)?;
            // The per-epoch victim time-series of every trial — the
            // "when did it start" view behind the onset column.
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> = report
                .trials
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let tag = (t.utilization * 100.0).round() as u64;
                    (
                        format!("u{tag}/t{i}/{}", t.victim),
                        t.victim_epochs.as_slice(),
                    )
                })
                .collect();
            write_epoch_companion(&ctx.out, "scenario_localize.csv", &labeled)?;
            Ok(())
        },
    );

    reg.register(
        "drop_aware",
        "NEW: live taps on a loss-heavy path — estimator bias when metered packets die downstream",
        |ctx, runner| {
            let cfg = DropAwareConfig::paper(ctx.scale.base_seed, ctx.scale.accuracy_duration);
            let points = run_drop_aware(&cfg, runner);
            println!("== drop_aware: live vs delivered-gated taps at the bottleneck's feeder ==");
            println!(
                "  {:>7} {:>9} {:>9} {:>9} {:>8} {:>12} {:>12} {:>13} {:>9}",
                "load",
                "offered",
                "ds loss",
                "us loss",
                "metered",
                "died after",
                "live err",
                "survivor bias",
                "pending"
            );
            for p in &points {
                println!(
                    "  {:>6.0}% {:>9} {:>8.2}% {:>8.2}% {:>8} {:>12} {:>11.2}% {:>12.2}% {:>9}",
                    p.offered_load * 100.0,
                    p.offered,
                    p.downstream_loss * 100.0,
                    p.upstream_loss * 100.0,
                    p.live_metered,
                    p.dropped_after_metering,
                    p.live_rel_err * 100.0,
                    p.survivor_bias * 100.0,
                    p.peak_pending
                );
            }
            let csv = write_csv(
                "offered_load,offered,downstream_loss,upstream_loss,live_metered,dropped_after_metering,live_est_mean_ns,live_true_mean_ns,delivered_est_mean_ns,delivered_true_mean_ns,survivor_bias,live_rel_err,peak_pending",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        p.offered_load,
                        p.offered,
                        p.downstream_loss,
                        p.upstream_loss,
                        p.live_metered,
                        p.dropped_after_metering,
                        p.live_est_mean_ns,
                        p.live_true_mean_ns,
                        p.delivered_est_mean_ns,
                        p.delivered_true_mean_ns,
                        p.survivor_bias,
                        p.live_rel_err,
                        p.peak_pending
                    )
                }),
            );
            ctx.out.write("scenario_drop_aware.csv", &csv)?;
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> = points
                .iter()
                .map(|p| {
                    let tag = (p.offered_load * 100.0).round() as u64;
                    (format!("load{tag}"), p.epochs.as_slice())
                })
                .collect();
            write_epoch_companion(&ctx.out, "scenario_drop_aware.csv", &labeled)?;
            Ok(())
        },
    );

    reg.register(
        "replay",
        "NEW: streaming pcap trace replay (--trace <file>, else generated) vs two-capture-point external ground truth",
        |ctx, runner| {
            let mut cfg = ReplayConfig::paper(ctx.scale.base_seed, ctx.scale.accuracy_duration);
            cfg.trace_path = ctx.trace.clone();
            cfg.lenient = ctx.lenient;
            if let Some(spec) = &ctx.entry_map {
                cfg.entry_spec = spec.clone();
            }
            let o = run_replay(&cfg, runner);
            println!(
                "== replay: {} streamed through the tandem ({} ingest) ==",
                match &cfg.trace_path {
                    Some(p) => p.display().to_string(),
                    None => "generated capture".to_string(),
                },
                cfg.entry_spec
            );
            println!(
                "  records {} replayed {} (late {}) refs {} delivered {} peak ingest buffer {}",
                o.records_read,
                o.replayed,
                o.late_dropped,
                o.refs_emitted,
                o.delivered,
                o.source_peak_buffered
            );
            println!(
                "  capture pair: matched {} expired {} mean {:.1} µs (vs engine truth err {:.3}%)",
                o.capture_matched,
                o.capture_expired,
                o.capture_mean_ns / 1e3,
                o.capture_vs_truth_rel_err * 100.0
            );
            println!(
                "  RLI estimate {:.1} µs — {:.2}% off the capture-pair truth",
                o.rli_est_mean_ns / 1e3,
                o.rli_vs_capture_rel_err * 100.0
            );
            match o.ingest_identical {
                Some(true) => println!("  streamed ingest byte-identical to Vec ingest: OK"),
                Some(false) => println!("  streamed ingest DIVERGED from Vec ingest"),
                None => {}
            }
            let csv = write_csv(
                "records_read,replayed,late_dropped,source_peak_buffered,refs_emitted,delivered,capture_matched,capture_expired,capture_mean_ns,truth_mean_ns,capture_vs_truth_rel_err,rli_est_mean_ns,rli_vs_capture_rel_err,ingest_identical",
                std::iter::once(format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    o.records_read,
                    o.replayed,
                    o.late_dropped,
                    o.source_peak_buffered,
                    o.refs_emitted,
                    o.delivered,
                    o.capture_matched,
                    o.capture_expired,
                    o.capture_mean_ns,
                    o.truth_mean_ns,
                    o.capture_vs_truth_rel_err,
                    o.rli_est_mean_ns,
                    o.rli_vs_capture_rel_err,
                    o.ingest_identical.map_or(-1i64, i64::from)
                )),
            );
            ctx.out.write("scenario_replay.csv", &csv)?;
            let labeled: Vec<(String, &[rlir_rli::EpochSnapshot])> =
                vec![("replay".to_string(), o.epochs.as_slice())];
            write_epoch_companion(&ctx.out, "scenario_replay.csv", &labeled)?;
            if o.ingest_identical == Some(false) {
                return Err(std::io::Error::other(
                    "streamed ingest diverged from the Vec-ingest oracle",
                ));
            }
            Ok(())
        },
    );

    reg.register(
        "faults",
        "NEW: closed-loop robustness sweep — mid-run switch degradation, online detection, time-to-localize + false positives",
        |ctx, runner| {
            let mut cfg = FaultsConfig::paper(ctx.scale.base_seed, ctx.scale.fattree_duration);
            cfg.base.shards = ctx.scale.shards;
            let points = run_faults(&cfg, runner);
            println!(
                "== faults: {} degradation switching on mid-run, detected online ==",
                cfg.extra_processing
            );
            println!(
                "  {:>11} {:>9} {:>7} {:>9} {:>8} {:>7} {:>12}",
                "background", "onset ms", "trials", "detected", "correct", "false+", "mean TTL ms"
            );
            for p in &points {
                println!(
                    "  {:>10.0}% {:>9.1} {:>7} {:>9} {:>8} {:>7} {:>12.2}",
                    p.utilization * 100.0,
                    p.onset_ns as f64 / 1e6,
                    p.trials,
                    p.detected,
                    p.correct,
                    p.false_positives,
                    p.mean_ttl_ns / 1e6
                );
            }
            let csv = write_csv(
                "utilization,onset_ns,trials,detected,correct,false_positives,mean_ttl_ns",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        p.utilization,
                        p.onset_ns,
                        p.trials,
                        p.detected,
                        p.correct,
                        p.false_positives,
                        p.mean_ttl_ns
                    )
                }),
            );
            ctx.out.write("scenario_faults.csv", &csv)?;
            Ok(())
        },
    );

    reg.register(
        "chaos",
        "NEW: seeded chaos campaigns — flaps, gray loss, tap crash/recovery, tenant cross-talk probe, hostile-ingest leg",
        |ctx, _runner| {
            let seed = ctx.chaos_seed.unwrap_or(ctx.scale.base_seed);
            let mut cfg = ChaosCampaignConfig::paper(seed, ctx.scale.fattree_duration);
            cfg.base.tenant_split = ctx.tenants;
            let rep = run_chaos(&cfg);
            println!(
                "== chaos: {} campaign(s) from seed {seed} on the k={} fabric ==",
                rep.campaigns.len(),
                cfg.base.k
            );
            println!(
                "  {:>4} {:>20} {:>7} {:>9} {:>7} {:>12} {:>8} {:>9} {:>10}",
                "#", "seed", "events", "outages", "recov", "lost obs", "drops", "detected", "TTL ms"
            );
            for c in &rep.campaigns {
                println!(
                    "  {:>4} {:>20} {:>7} {:>9} {:>7} {:>12} {:>8} {:>9} {:>10}",
                    c.campaign,
                    c.seed,
                    c.events,
                    c.tap_outages,
                    c.recovered_epochs,
                    c.lost_window_obs,
                    c.fault_drops,
                    if c.false_positive {
                        "FALSE+"
                    } else if c.detected {
                        "yes"
                    } else {
                        "no"
                    },
                    c.ttl_ns
                        .map_or("-".to_string(), |t| format!("{:.2}", t as f64 / 1e6)),
                );
            }
            println!(
                "  baseline false positive: {}   tenant cross-talk: {} ns   ingest: {}/{} records ({} skipped, {} resyncs, {} clamped)",
                rep.baseline_false_positive,
                rep.cross_talk_max_abs_ns,
                rep.ingest.emitted,
                rep.ingest.records,
                rep.ingest.skipped_records,
                rep.ingest.resyncs,
                rep.ingest.clamped_regressions,
            );
            let csv = write_csv(
                "campaign,seed,events,first_onset_ns,tap_outages,recovered_epochs,lost_window_obs,fault_drops,shed,peak_pending_total,detected,false_positive,ttl_ns",
                rep.campaigns.iter().map(|c| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        c.campaign,
                        c.seed,
                        c.events,
                        c.first_onset_ns,
                        c.tap_outages,
                        c.recovered_epochs,
                        c.lost_window_obs,
                        c.fault_drops,
                        c.shed,
                        c.peak_pending_total,
                        c.detected,
                        c.false_positive,
                        c.ttl_ns.map_or(-1i64, |t| t as i64)
                    )
                }),
            );
            ctx.out.write("scenario_chaos.csv", &csv)?;
            if rep.baseline_false_positive {
                return Err(std::io::Error::other(
                    "detector raised a false positive on the fault-free baseline",
                ));
            }
            if rep.cross_talk_max_abs_ns != 0.0 {
                return Err(std::io::Error::other(format!(
                    "tenant isolation violated: cross-talk {} ns",
                    rep.cross_talk_max_abs_ns
                )));
            }
            if !rep.ingest.strict_matches_lenient_on_clean {
                return Err(std::io::Error::other(
                    "lenient ingest diverged from strict on a clean capture",
                ));
            }
            Ok(())
        },
    );

    reg.register(
        "plane_scale",
        "NEW: fleet-scale plane — every (switch, port) of the k=8 fat-tree tapped under one shared-arena budget",
        |ctx, _runner| {
            let base = PlaneScaleConfig::fleet(ctx.scale.base_seed, ctx.scale.fattree_duration);
            let all = base.all_ports();
            println!(
                "== plane_scale: shared-arena plane, 1 -> {all} taps on the k={} fat-tree ==",
                base.base.k
            );
            println!(
                "  {:>6} {:>9} {:>10} {:>8} {:>8} {:>13} {:>12}",
                "taps", "metered", "estimated", "shed", "late", "peak pending", "state bytes"
            );
            // Deterministic series (no wall-clock — scripts/plane_bench.sh
            // times the same curve): tap counts from one port to all of
            // them, stride-spread over the fabric.
            let counts = [1, all / 32, all / 8, all / 2, all];
            let mut rows = Vec::new();
            for &taps in &counts {
                let mut cfg = base.clone();
                cfg.taps = Some(taps);
                let out = run_plane_scale(&cfg);
                println!(
                    "  {:>6} {:>9} {:>10} {:>8} {:>8} {:>13} {:>12}",
                    out.taps,
                    out.metered,
                    out.estimated,
                    out.shed,
                    out.late,
                    out.peak_pending_total,
                    out.peak_state_bytes
                );
                rows.push(out);
            }
            let csv = write_csv(
                "taps,metered,estimated,refs_accepted,shed,late,peak_pending,peak_pending_total,peak_state_bytes,report_digest",
                rows.iter().map(|o| {
                    format!(
                        "{},{},{},{},{},{},{},{},{},{}",
                        o.taps,
                        o.metered,
                        o.estimated,
                        o.refs_accepted,
                        o.shed,
                        o.late,
                        o.peak_pending,
                        o.peak_pending_total,
                        o.peak_state_bytes,
                        o.report_digest
                    )
                }),
            );
            ctx.out.write("scenario_plane_scale.csv", &csv)?;
            Ok(())
        },
    );

    reg.register(
        "interference",
        "Fig. 5 with seed averaging and both policies (the full figure)",
        |ctx, runner| {
            let points = fig5(&ctx.scale, runner);
            emit_fig5(
                &format!(
                    "interference: Fig. 5, both policies, {} seed(s)",
                    ctx.scale.seeds
                ),
                &points,
                &fig5_shape_checks(&points),
                "scenario_interference.csv",
                &ctx.out,
            )
        },
    );

    reg.register(
        "interp",
        "A2: interpolation-estimator ablation at 93% utilization",
        |ctx, runner| {
            emit_interp(
                "interp: estimator ablation",
                &interp_ablation(&ctx.scale, runner),
                "scenario_interp.csv",
                &ctx.out,
            )
        },
    );

    reg.register(
        "sync",
        "A4: clock-synchronisation-error sensitivity at 93% utilization",
        |ctx, runner| {
            emit_sync(
                "sync: clock sensitivity",
                &sync_ablation(&ctx.scale, runner),
                "scenario_sync.csv",
                &ctx.out,
            )
        },
    );

    reg.register(
        "quantiles",
        "A7: per-flow p90 tail-latency accuracy at 93% utilization",
        |ctx, runner| {
            emit_quantiles(
                "quantiles: per-flow p90 accuracy",
                &quantile_accuracy(&ctx.scale, runner),
                "scenario_quantiles.csv",
                &ctx.out,
            )
        },
    );

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_exec::SweepRunner;

    #[test]
    fn registry_resolves_the_required_scenarios() {
        let reg = build_registry();
        let names = reg.names();
        assert!(reg.len() >= 5, "only {} scenarios registered", reg.len());
        for required in [
            "two_hop",
            "loss_sweep",
            "fattree",
            "asymmetric",
            "incast",
            "localize",
            "drop_aware",
            "faults",
            "replay",
            "chaos",
        ] {
            assert!(names.contains(&required), "missing scenario {required}");
        }
    }

    #[test]
    fn every_entry_carries_a_description_for_list() {
        // `experiments list` prints each scenario's one-liner next to its
        // name; an empty summary would render as a bare key.
        for e in build_registry().entries() {
            assert!(
                e.summary().len() > 20,
                "scenario {} has no useful description",
                e.name()
            );
        }
    }

    #[test]
    fn loss_sweep_scenario_runs_end_to_end() {
        let dir = std::env::temp_dir().join("rlir-registry-smoke");
        let ctx = RunContext {
            scale: Scale {
                accuracy_duration: rlir_net::time::SimDuration::from_millis(10),
                interference_duration: rlir_net::time::SimDuration::from_millis(10),
                fattree_duration: rlir_net::time::SimDuration::from_millis(10),
                seeds: 1,
                base_seed: 42,
                shards: None,
            },
            out: OutputDir::at(&dir).unwrap(),
            trace: None,
            entry_map: None,
            tenants: None,
            chaos_seed: None,
            lenient: false,
        };
        build_registry()
            .run("loss_sweep", &ctx, &SweepRunner::new(2))
            .unwrap();
        assert!(dir.join("scenario_loss_sweep.csv").exists());
    }
}
