//! Heap vs calendar-queue scheduler wall-clock on the event engine.
//!
//! Runs the k = 4 fat-tree under the incast workload (synchronized-burst
//! measured traffic into one destination ToR plus all-ToR background) with
//! both [`SchedulerKind`]s and reports best-of-N wall-clock as JSON on
//! stdout — `scripts/network_bench.sh` captures it into
//! `BENCH_network.json`. A delivery digest cross-checks that the two
//! schedulers produced byte-identical runs while being timed.
//!
//! Knobs: `RLIR_NETBENCH_MS` (trace duration, default 40),
//! `RLIR_NETBENCH_REPS` (best-of, default 3), `RLIR_NETBENCH_FANIN`
//! (synchronized sources, default 4).

use rlir::experiment::{background_injections, measured_traces, FatTreeExpConfig, IncastConfig};
use rlir::fabric::{build_network, FatTreeFabric};
use rlir_net::packet::Packet;
use rlir_net::time::SimDuration;
use rlir_sim::{run_network_sched, NullSink, SchedulerKind};
use rlir_topo::{FatTree, TopoId};
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `incast` scenario's workload at one fan-in point, minus the
/// measurement plane: pure event-engine stress. Built from the *same*
/// generators the experiment uses, so the benchmark can never drift from
/// the workload it claims to time.
fn build_workload(cfg: &FatTreeExpConfig, tree: &FatTree) -> Vec<(TopoId, Packet)> {
    let mut injections = Vec::new();
    for (src, trace) in measured_traces(cfg, tree) {
        injections.extend(trace.packets.iter().map(|p| (src, *p)));
    }
    injections.extend(background_injections(cfg, tree));
    injections
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_NETBENCH_MS", 40));
    let reps = env_u64("RLIR_NETBENCH_REPS", 3).max(1);
    let fan_in = env_u64("RLIR_NETBENCH_FANIN", 4) as usize;

    // The incast configuration at this fan-in (25% measured load squeezed
    // into 20%-duty bursts, 15% background — see IncastConfig::paper).
    let incast = IncastConfig::paper(0xBE_7C, duration);
    let mut cfg = incast.base;
    cfg.n_src_tors = fan_in;
    cfg.burst = Some(incast.burst);
    let queue = cfg.queue;
    let link_delay = cfg.link_delay;

    let tree = FatTree::new(cfg.k, cfg.hash);
    let fabric = FatTreeFabric::new(&tree, false);
    let injections = build_workload(&cfg, &tree);

    let mut results: Vec<(SchedulerKind, u128, u64, usize)> = Vec::new();
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let mut best_ns = u128::MAX;
        let mut digest = 0u64;
        let mut deliveries = 0usize;
        for _ in 0..reps {
            let net = build_network(&tree, queue, link_delay, &[]);
            let inj = injections.clone();
            let start = Instant::now();
            let run = run_network_sched(net, &fabric, inj, &mut NullSink, kind);
            let elapsed = start.elapsed().as_nanos();
            best_ns = best_ns.min(elapsed);
            deliveries = run.deliveries.len();
            digest = run.deliveries.iter().fold(0u64, |h, d| {
                h.rotate_left(7) ^ (d.delivered_at.as_nanos() ^ d.packet.id.0)
            });
        }
        results.push((kind, best_ns, digest, deliveries));
    }
    let (heap_ns, cal_ns) = (results[0].1, results[1].1);
    assert_eq!(
        (results[0].2, results[0].3),
        (results[1].2, results[1].3),
        "schedulers diverged — the differential tests should have caught this"
    );

    let packets = injections.len();
    println!(
        concat!(
            "{{\n",
            "  \"bench\": \"event engine: heap vs calendar queue (k=4 fat-tree incast, {}ms, fan-in {}, best of {})\",\n",
            "  \"injected_packets\": {},\n",
            "  \"deliveries\": {},\n",
            "  \"heap_ms\": {:.3},\n",
            "  \"calendar_ms\": {:.3},\n",
            "  \"speedup\": {:.3},\n",
            "  \"runs_identical\": true\n",
            "}}"
        ),
        duration.as_nanos() / 1_000_000,
        fan_in,
        reps,
        packets,
        results[1].3,
        heap_ns as f64 / 1e6,
        cal_ns as f64 / 1e6,
        heap_ns as f64 / cal_ns as f64,
    );
}
