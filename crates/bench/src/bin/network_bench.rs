//! Moving-oracle vs arena-slab engine wall-clock on the event engine.
//!
//! Runs the k = 4 fat-tree under the incast workload (synchronized-burst
//! measured traffic into one destination ToR plus all-ToR background)
//! through three engine configurations — the retained PR 4 engine
//! ([`EngineKind::MovingOracle`]: full packet + hop vector moved through
//! every calendar-queue push/pop), the arena-backed slab engine
//! ([`EngineKind::Slab`]: state pinned, 8-byte `Copy` handles moving), and
//! the slab engine's streamed-delivery mode (no `Vec<NetDelivery>` at all)
//! — and reports best-of-N wall-clock plus the slab's memory accounting
//! (events/sec, peak in-flight slots, hop-storage allocations) as JSON on
//! stdout; `scripts/network_bench.sh` captures it into
//! `BENCH_network.json`. An order-insensitive delivery digest asserts that
//! all three runs were byte-identical while being timed.
//!
//! Knobs: `RLIR_NETBENCH_MS` (trace duration, default 120),
//! `RLIR_NETBENCH_REPS` (best-of, default 3), `RLIR_NETBENCH_FANIN`
//! (synchronized sources, default 4).

use rlir::experiment::{background_injections, measured_traces, FatTreeExpConfig, IncastConfig};
use rlir::fabric::{build_network, FatTreeFabric};
use rlir_net::packet::Packet;
use rlir_net::time::SimDuration;
use rlir_sim::{
    run_network_engine, run_network_streamed_sched, EngineKind, NetDelivery, NullSink,
    SchedulerKind, StreamedDelivery,
};
use rlir_topo::{FatTree, TopoId};
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `incast` scenario's workload at one fan-in point, minus the
/// measurement plane: pure event-engine stress. Built from the *same*
/// generators the experiment uses, so the benchmark can never drift from
/// the workload it claims to time.
fn build_workload(cfg: &FatTreeExpConfig, tree: &FatTree) -> Vec<(TopoId, Packet)> {
    let mut injections = Vec::new();
    for (src, trace) in measured_traces(cfg, tree) {
        injections.extend(trace.packets.iter().map(|p| (src, *p)));
    }
    injections.extend(background_injections(cfg, tree));
    injections
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Order-insensitive per-delivery hash: the streamed mode yields
/// deliveries in processing order without buffering them, so the digest
/// must commute (wrapping sum of a mixed per-delivery word).
fn delivery_word(id: u64, delivered_at: u64, delivered_node: usize, hops: usize) -> u64 {
    mix(id
        ^ delivered_at.rotate_left(17)
        ^ (delivered_node as u64).rotate_left(43)
        ^ (hops as u64).rotate_left(53))
}

#[derive(PartialEq, Eq, Debug, Clone)]
struct RunDigest {
    deliveries: usize,
    delivery_hash: u64,
    queue_drops: u64,
    route_drops: u64,
}

fn digest_buffered(
    deliveries: &[NetDelivery],
    queue_drops: &[u64],
    route_drops: &[u64],
) -> RunDigest {
    RunDigest {
        deliveries: deliveries.len(),
        delivery_hash: deliveries.iter().fold(0u64, |h, d| {
            h.wrapping_add(delivery_word(
                d.packet.id.0,
                d.delivered_at.as_nanos(),
                d.delivered_node,
                d.hops.len(),
            ))
        }),
        queue_drops: queue_drops.iter().sum(),
        route_drops: route_drops.iter().sum(),
    }
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_NETBENCH_MS", 120));
    let reps = env_u64("RLIR_NETBENCH_REPS", 3).max(1);
    let fan_in = env_u64("RLIR_NETBENCH_FANIN", 4) as usize;

    // The incast configuration at this fan-in (25% measured load squeezed
    // into 20%-duty bursts, 15% background — see IncastConfig::paper).
    let incast = IncastConfig::paper(0xBE_7C, duration);
    let mut cfg = incast.base;
    cfg.n_src_tors = fan_in;
    cfg.burst = Some(incast.burst);
    let queue = cfg.queue;
    let link_delay = cfg.link_delay;

    let tree = FatTree::new(cfg.k, cfg.hash);
    let fabric = FatTreeFabric::new(&tree, false);
    let injections = build_workload(&cfg, &tree);

    // Buffered runs: the PR 4 moving engine vs the slab engine, both on
    // the default calendar scheduler.
    let mut buffered: Vec<(EngineKind, u128, RunDigest)> = Vec::new();
    for engine in [EngineKind::MovingOracle, EngineKind::Slab] {
        let mut best_ns = u128::MAX;
        let mut digest = None;
        for _ in 0..reps {
            let net = build_network(&tree, queue, link_delay, &[]);
            let inj = injections.clone();
            let start = Instant::now();
            let run = run_network_engine(
                net,
                &fabric,
                inj,
                &mut NullSink,
                SchedulerKind::Calendar,
                engine,
            );
            best_ns = best_ns.min(start.elapsed().as_nanos());
            digest = Some(digest_buffered(
                &run.deliveries,
                &run.queue_drops,
                &run.route_drops,
            ));
        }
        buffered.push((engine, best_ns, digest.expect("reps >= 1")));
    }

    // Streamed run: no delivery buffering at all; digest folded on the fly.
    let mut streamed_best_ns = u128::MAX;
    let mut streamed_digest = None;
    let mut stats = None;
    for _ in 0..reps {
        let net = build_network(&tree, queue, link_delay, &[]);
        let inj = injections.clone();
        let mut hash = 0u64;
        let mut count = 0usize;
        let start = Instant::now();
        let s = run_network_streamed_sched(
            net,
            &fabric,
            inj,
            &mut NullSink,
            SchedulerKind::Calendar,
            |d: &StreamedDelivery<'_>| {
                count += 1;
                hash = hash.wrapping_add(delivery_word(
                    d.packet.id.0,
                    d.delivered_at.as_nanos(),
                    d.delivered_node,
                    d.hops.len(),
                ));
            },
        );
        streamed_best_ns = streamed_best_ns.min(start.elapsed().as_nanos());
        streamed_digest = Some(RunDigest {
            deliveries: count,
            delivery_hash: hash,
            queue_drops: s.queue_drops.iter().sum(),
            route_drops: s.route_drops.iter().sum(),
        });
        stats = Some(s);
    }
    let stats = stats.expect("reps >= 1");
    let streamed_digest = streamed_digest.expect("reps >= 1");

    let (oracle_ns, oracle_digest) = (buffered[0].1, &buffered[0].2);
    let (slab_ns, slab_digest) = (buffered[1].1, &buffered[1].2);
    assert_eq!(
        oracle_digest, slab_digest,
        "engines diverged — the differential tests should have caught this"
    );
    assert_eq!(
        oracle_digest, &streamed_digest,
        "streamed mode diverged — the differential tests should have caught this"
    );

    let packets = injections.len();
    let events_per_sec = stats.events as f64 / (streamed_best_ns as f64 / 1e9);
    println!(
        concat!(
            "{{\n",
            "  \"bench\": \"event engine: moving oracle vs arena slab (k=4 fat-tree incast, {}ms, fan-in {}, best of {})\",\n",
            "  \"injected_packets\": {},\n",
            "  \"deliveries\": {},\n",
            "  \"events\": {},\n",
            "  \"oracle_ms\": {:.3},\n",
            "  \"slab_ms\": {:.3},\n",
            "  \"streamed_ms\": {:.3},\n",
            "  \"slab_speedup\": {:.3},\n",
            "  \"streamed_speedup\": {:.3},\n",
            "  \"events_per_sec\": {:.0},\n",
            "  \"peak_inflight_slots\": {},\n",
            "  \"hop_allocations\": {},\n",
            "  \"runs_identical\": true\n",
            "}}"
        ),
        duration.as_nanos() / 1_000_000,
        fan_in,
        reps,
        packets,
        streamed_digest.deliveries,
        stats.events,
        oracle_ns as f64 / 1e6,
        slab_ns as f64 / 1e6,
        streamed_best_ns as f64 / 1e6,
        oracle_ns as f64 / slab_ns as f64,
        oracle_ns as f64 / streamed_best_ns as f64,
        events_per_sec,
        stats.peak_live_slots,
        stats.hop_allocations,
    );
}
