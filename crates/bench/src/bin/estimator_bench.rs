//! Streaming-epoch plane vs buffered-sort oracle: wall-clock and peak
//! buffered observations.
//!
//! Runs the full fat-tree RLIR harness (trace generation, both simulation
//! phases, every measurement-plane tap) under the synchronized-burst
//! incast-style workload with the plane's two drains — the default
//! streaming reorder window and the pre-refactor buffered-sort oracle —
//! and reports best-of-N wall-clock plus each path's buffered-observation
//! high-water mark as JSON on stdout; `scripts/estimator_bench.sh`
//! captures it into `BENCH_estimator.json`. A digest over the per-flow
//! error vectors cross-checks that the two paths produced byte-identical
//! estimates while being timed (pinned independently by
//! `tests/epoch_streaming_differential.rs`).
//!
//! Knobs: `RLIR_ESTBENCH_MS` (trace duration, default 40),
//! `RLIR_ESTBENCH_REPS` (best-of, default 3).

use rlir::experiment::{run_fattree, FatTreeExpConfig};
use rlir_net::time::SimDuration;
use rlir_rli::PolicyKind;
use rlir_trace::BurstShape;
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn digest(errs: &[f64]) -> u64 {
    errs.iter().fold(0u64, |h, e| {
        h.rotate_left(7) ^ e.to_bits().wrapping_mul(0x9E37_79B9_7F4A_7C15)
    })
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_ESTBENCH_MS", 40));
    let reps = env_u64("RLIR_ESTBENCH_REPS", 3).max(1);

    // The drop-/tie-heavy regime of the differential tests: synchronized
    // bursts into one destination ToR, drops at the shared downlink.
    let mut cfg = FatTreeExpConfig::paper(0xE57, duration);
    cfg.policy = PolicyKind::Static { n: 30 };
    cfg.n_src_tors = 4;
    cfg.measured_load = 0.30;
    cfg.burst = Some(BurstShape {
        period: SimDuration::from_millis(5),
        duty: 0.2,
    });

    // (label, oracle?) → (best_ns, peak_pending, late, estimates, digest)
    let mut rows: Vec<(&str, u128, usize, u64, u64, u64)> = Vec::new();
    for (label, oracle) in [("buffered_sort", true), ("streaming", false)] {
        let mut run_cfg = cfg.clone();
        run_cfg.buffered_oracle = oracle;
        let mut best_ns = u128::MAX;
        let mut peak = 0usize;
        let mut late = 0u64;
        let mut estimates = 0u64;
        let mut dig = 0u64;
        for _ in 0..reps {
            let start = Instant::now();
            let out = run_fattree(&run_cfg);
            let elapsed = start.elapsed().as_nanos();
            best_ns = best_ns.min(elapsed);
            peak = out.peak_pending;
            late = out.late;
            estimates = out.seg1_flows.estimate_count() + out.seg2_flows.estimate_count();
            dig = digest(&out.seg1_errors) ^ digest(&out.seg2_errors).rotate_left(31);
        }
        rows.push((label, best_ns, peak, late, estimates, dig));
    }
    let (oracle, streaming) = (&rows[0], &rows[1]);
    assert_eq!(
        oracle.5, streaming.5,
        "drains diverged — the differential tests should have caught this"
    );
    assert_eq!(streaming.3, 0, "late observations under the default window");

    println!(
        concat!(
            "{{\n",
            "  \"bench\": \"measurement plane: buffered-sort oracle vs streaming reorder window ",
            "(k=4 fat-tree, bursty fan-in 4, {}ms, best of {})\",\n",
            "  \"estimates\": {},\n",
            "  \"buffered_sort_ms\": {:.3},\n",
            "  \"streaming_ms\": {:.3},\n",
            "  \"wallclock_ratio\": {:.3},\n",
            "  \"buffered_sort_peak_pending\": {},\n",
            "  \"streaming_peak_pending\": {},\n",
            "  \"peak_pending_ratio\": {:.2},\n",
            "  \"streaming_late\": {},\n",
            "  \"outputs_identical\": true\n",
            "}}"
        ),
        duration.as_nanos() / 1_000_000,
        reps,
        streaming.4,
        oracle.1 as f64 / 1e6,
        streaming.1 as f64 / 1e6,
        oracle.1 as f64 / streaming.1 as f64,
        oracle.2,
        streaming.2,
        oracle.2 as f64 / (streaming.2.max(1)) as f64,
        streaming.3,
    );
}
