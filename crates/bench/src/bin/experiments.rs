//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <command>
//!
//!   fig4a       Fig. 4(a): per-flow mean-error CDFs (adaptive/static × 67/93%)
//!   fig4b       Fig. 4(b): per-flow std-dev-error CDFs (same runs)
//!   fig4c       Fig. 4(c): bursty vs random cross traffic (34%, 67%)
//!   fig5        Fig. 5: reference-packet interference (loss-rate difference)
//!   placement   §3.1 partial-placement complexity table
//!   demux       A1/A3: naive vs marking vs reverse-ECMP demultiplexing
//!   interp      A2: interpolation-estimator ablation
//!   sync        A4: clock-synchronisation-error sensitivity
//!   baselines   A6: RLI vs LDA vs Multiflow on an identical run
//!   localize    A5: latency-anomaly localization demo
//!   all         everything above
//! ```
//!
//! Scale via `RLIR_SCALE={quick,default,full}`, `RLIR_DURATION_MS`,
//! `RLIR_SEEDS`, `RLIR_SEED`; output directory via `RLIR_RESULTS_DIR`
//! (default `results/`). CSV series are written per curve.

use rlir_bench::{
    baselines_comparison, demux_ablation, fig4a, fig4a_shape_checks, fig4b, fig4c,
    fig4c_shape_checks, fig5, fig5_shape_checks, interp_ablation, localization_demo,
    placement_rows, quantile_accuracy, sync_ablation, write_csv, AccuracyCurve, OutputDir, Scale,
    ShapeCheck,
};

const HELP: &str = "experiments <fig4a|fig4b|fig4c|fig5|placement|demux|interp|sync|baselines|quantiles|localize|all>
Scale: RLIR_SCALE={quick,default,full} RLIR_DURATION_MS=<ms> RLIR_SEEDS=<n> RLIR_SEED=<n>
Output: RLIR_RESULTS_DIR=<dir> (default results/)";

fn print_checks(checks: &[ShapeCheck]) {
    for c in checks {
        println!(
            "  [{}] {} — {}",
            if c.holds { "PASS" } else { "MISS" },
            c.claim,
            c.detail
        );
    }
}

fn emit_accuracy_figure(
    name: &str,
    title: &str,
    curves: &[AccuracyCurve],
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    for c in curves {
        println!("  {}", c.summary());
        let file = format!(
            "{name}_{}.csv",
            c.label.to_lowercase().replace([',', ' ', '%'], "")
        );
        out.write(&file, &format!("relative_error,cdf\n{}", c.cdf_csv()))?;
    }
    println!("  → CSVs in {}", out.root().display());
    Ok(())
}

fn run(cmd: &str, scale: &Scale, out: &OutputDir) -> std::io::Result<()> {
    match cmd {
        "fig4a" => {
            let curves = fig4a(scale);
            emit_accuracy_figure(
                "fig4a",
                "Figure 4(a): per-flow MEAN latency — relative-error CDFs (random cross traffic)",
                &curves,
                out,
            )?;
            print_checks(&fig4a_shape_checks(&curves));
        }
        "fig4b" => {
            let curves = fig4b(scale);
            emit_accuracy_figure(
                "fig4b",
                "Figure 4(b): per-flow STD-DEV latency — relative-error CDFs (random cross traffic)",
                &curves,
                out,
            )?;
        }
        "fig4c" => {
            let curves = fig4c(scale);
            emit_accuracy_figure(
                "fig4c",
                "Figure 4(c): mean-error CDFs — bursty vs random cross traffic",
                &curves,
                out,
            )?;
            print_checks(&fig4c_shape_checks(&curves));
        }
        "fig5" => {
            let points = fig5(scale);
            println!("== Figure 5: loss-rate difference caused by reference packets ==");
            println!(
                "  {:<10} {:>8} {:>10} {:>16} {:>12}",
                "policy", "target", "realised", "loss diff", "base loss"
            );
            for p in &points {
                println!(
                    "  {:<10} {:>7.0}% {:>9.1}% {:>15.6}% {:>11.4}%",
                    p.policy,
                    p.target * 100.0,
                    p.utilization * 100.0,
                    p.loss_difference * 100.0,
                    p.base_loss * 100.0
                );
            }
            let csv = write_csv(
                "policy,target_utilization,utilization,loss_difference,base_loss",
                points.iter().map(|p| {
                    format!(
                        "{},{},{},{},{}",
                        p.policy, p.target, p.utilization, p.loss_difference, p.base_loss
                    )
                }),
            );
            out.write("fig5_interference.csv", &csv)?;
            print_checks(&fig5_shape_checks(&points));
        }
        "placement" => {
            println!("== §3.1: partial-placement complexity on k-ary fat-trees ==");
            println!(
                "  {:>4} {:>10} {:>10} {:>14} {:>14} {:>16} {:>10}",
                "k",
                "iface-pair",
                "tor-pair",
                "all-pairs",
                "(enumerated)",
                "full deploy",
                "reduction"
            );
            let rows = placement_rows();
            for r in &rows {
                println!(
                    "  {:>4} {:>10} {:>10} {:>14} {:>14} {:>16} {:>9.1}x",
                    r.k,
                    r.interface_pair,
                    r.tor_pair,
                    r.all_tor_pairs_paper,
                    r.all_tor_pairs_enumerated,
                    r.full_deployment,
                    r.reduction()
                );
            }
            let csv = write_csv(
                "k,interface_pair,tor_pair,all_tor_pairs_paper,all_tor_pairs_enumerated,full_deployment",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{},{},{}",
                        r.k,
                        r.interface_pair,
                        r.tor_pair,
                        r.all_tor_pairs_paper,
                        r.all_tor_pairs_enumerated,
                        r.full_deployment
                    )
                }),
            );
            out.write("placement_table.csv", &csv)?;
        }
        "demux" => {
            println!("== A1/A3: demultiplexing ablation on the k=4 fat-tree ==");
            println!(
                "  {:<14} {:>10} {:>16} {:>16} {:>12}",
                "mode", "assoc acc", "seg1 median err", "seg2 median err", "estimates"
            );
            let rows = demux_ablation(scale);
            for r in &rows {
                println!(
                    "  {:<14} {:>9.1}% {:>15.2}% {:>15.2}% {:>12}",
                    r.mode,
                    r.accuracy * 100.0,
                    r.seg1_median_error * 100.0,
                    r.seg2_median_error * 100.0,
                    r.seg2_estimates
                );
            }
            let csv = write_csv(
                "mode,accuracy,seg1_median_error,seg2_median_error,seg2_estimates",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{},{}",
                        r.mode,
                        r.accuracy,
                        r.seg1_median_error,
                        r.seg2_median_error,
                        r.seg2_estimates
                    )
                }),
            );
            out.write("demux_ablation.csv", &csv)?;
        }
        "interp" => {
            println!(
                "== A2: interpolation-estimator ablation (93% utilization, static 1-and-100) =="
            );
            let rows = interp_ablation(scale);
            for r in &rows {
                println!(
                    "  {:<16} median {:>6.2}%   p90 {:>7.2}%",
                    r.interpolator,
                    r.median_error * 100.0,
                    r.p90_error * 100.0
                );
            }
            let csv = write_csv(
                "interpolator,median_error,p90_error",
                rows.iter()
                    .map(|r| format!("{},{},{}", r.interpolator, r.median_error, r.p90_error)),
            );
            out.write("interp_ablation.csv", &csv)?;
        }
        "sync" => {
            println!("== A4: clock-synchronisation sensitivity (93% utilization) ==");
            let rows = sync_ablation(scale);
            for r in &rows {
                println!(
                    "  {:<34} median {:>7.2}%   mean |err| {:>9.1} ns",
                    r.scenario,
                    r.median_error * 100.0,
                    r.mean_abs_error_ns
                );
            }
            let csv = write_csv(
                "scenario,median_error,mean_abs_error_ns",
                rows.iter()
                    .map(|r| format!("{},{},{}", r.scenario, r.median_error, r.mean_abs_error_ns)),
            );
            out.write("sync_ablation.csv", &csv)?;
        }
        "baselines" => {
            println!("== A6: RLI vs LDA vs Multiflow (identical 93% run) ==");
            let rows = baselines_comparison(scale);
            for r in &rows {
                let per_flow = if r.per_flow_median_error.is_nan() {
                    "      n/a".to_string()
                } else {
                    format!("{:>8.2}%", r.per_flow_median_error * 100.0)
                };
                println!(
                    "  {:<32} per-flow median {per_flow}   aggregate err {:>7.2}%   flows {:>7}",
                    r.estimator,
                    r.aggregate_error * 100.0,
                    r.flows_covered
                );
            }
            let csv = write_csv(
                "estimator,per_flow_median_error,aggregate_error,flows_covered",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{}",
                        r.estimator, r.per_flow_median_error, r.aggregate_error, r.flows_covered
                    )
                }),
            );
            out.write("baselines_comparison.csv", &csv)?;
        }
        "quantiles" => {
            println!("== A7: per-flow p90 tail-latency accuracy (93% utilization) ==");
            let rows = quantile_accuracy(scale);
            for r in &rows {
                println!(
                    "  {:<10} p{:.0} median err {:>6.2}%   (mean-est median {:>6.2}%)   flows {:>7}",
                    r.policy,
                    r.p * 100.0,
                    r.median_error * 100.0,
                    r.mean_median_error * 100.0,
                    r.flows
                );
            }
            let csv = write_csv(
                "policy,p,median_error,mean_median_error,flows",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{},{}",
                        r.policy, r.p, r.median_error, r.mean_median_error, r.flows
                    )
                }),
            );
            out.write("quantile_accuracy.csv", &csv)?;
        }
        "localize" => {
            println!("== A5: anomaly localization on the fat-tree ==");
            let o = localization_demo(scale);
            println!("  injected fault at core {}", o.injected);
            for (name, est, truth) in &o.segments {
                println!(
                    "    segment {:<16} est {:>9.1} µs   true {:>9.1} µs",
                    name, est, truth
                );
            }
            println!("  flagged: {:?}", o.flagged);
            println!(
                "  verdict: {}",
                if o.correct {
                    "LOCALIZED CORRECTLY"
                } else {
                    "MISSED"
                }
            );
            let csv = write_csv(
                "segment,est_mean_us,true_mean_us",
                o.segments.iter().map(|(n, e, t)| format!("{n},{e},{t}")),
            );
            out.write("localization_segments.csv", &csv)?;
        }
        "all" => {
            for c in [
                "placement",
                "fig4a",
                "fig4b",
                "fig4c",
                "fig5",
                "demux",
                "interp",
                "sync",
                "baselines",
                "quantiles",
                "localize",
            ] {
                run(c, scale, out)?;
                println!();
            }
        }
        other => {
            eprintln!("unknown command {other:?}\n{HELP}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let cmd = args.get(1).map(String::as_str).unwrap_or("all");
    if cmd == "--help" || cmd == "-h" {
        println!("{HELP}");
        return Ok(());
    }
    let scale = Scale::from_env();
    let out = OutputDir::from_env()?;
    eprintln!(
        "scale: accuracy {} | interference {} | fat-tree {} | seeds {} | base seed {}",
        scale.accuracy_duration,
        scale.interference_duration,
        scale.fattree_duration,
        scale.seeds,
        scale.base_seed
    );
    run(cmd, &scale, &out)
}
