//! Regenerate every table and figure of the paper's evaluation, and run
//! registered scenarios by name.
//!
//! ```text
//! experiments <command> [--threads N] [--shards N]
//!
//!   list        list the registered scenarios (for `run`)
//!   run <name>  run one registered scenario through the shared SweepRunner
//!   fig4a       Fig. 4(a): per-flow mean-error CDFs (adaptive/static × 67/93%)
//!   fig4b       Fig. 4(b): per-flow std-dev-error CDFs (same runs)
//!   fig4c       Fig. 4(c): bursty vs random cross traffic (34%, 67%)
//!   fig5        Fig. 5: reference-packet interference (loss-rate difference)
//!   placement   §3.1 partial-placement complexity table
//!   demux       A1/A3: naive vs marking vs reverse-ECMP demultiplexing
//!   interp      A2: interpolation-estimator ablation
//!   sync        A4: clock-synchronisation-error sensitivity
//!   baselines   A6: RLI vs LDA vs Multiflow on an identical run
//!   localize    A5: latency-anomaly localization demo
//!   all         every figure command above
//! ```
//!
//! `--threads N` sizes the sweep worker pool (default: `RLIR_THREADS`, else
//! available parallelism); `--shards N` runs the fat-tree scenarios
//! (`fattree`, `faults`, `incast`, `localize`, `demux`) on the
//! pod-sharded engine (default:
//! `RLIR_SHARDS`, else the sequential engine). Results are byte-identical
//! for any thread or shard count. Scale via
//! `RLIR_SCALE={quick,default,full}`, `RLIR_DURATION_MS`, `RLIR_SEEDS`,
//! `RLIR_SEED`; output directory via `RLIR_RESULTS_DIR` (default
//! `results/`). CSV series are written per curve.

use rlir_bench::{
    baselines_comparison, build_registry, demux_ablation, emit_demux, emit_fig5, emit_interp,
    emit_quantiles, emit_sync, fig4a, fig4a_shape_checks, fig4b, fig4c, fig4c_shape_checks, fig5,
    fig5_shape_checks, interp_ablation, localization_demo, placement_rows, print_shape_checks,
    quantile_accuracy, sync_ablation, write_csv, AccuracyCurve, OutputDir, RunContext, Scale,
};
use rlir_exec::SweepRunner;

const HELP: &str = "experiments <list|run <name>|fig4a|fig4b|fig4c|fig5|placement|demux|interp|sync|baselines|quantiles|localize|all> [--threads N] [--shards N] [--trace <file>] [--entry-map <spec>] [--tenants w1,w2] [--chaos-seed N] [--lenient]
Scale: RLIR_SCALE={quick,default,full} RLIR_DURATION_MS=<ms> RLIR_SEEDS=<n> RLIR_SEED=<n>
Threads: --threads N (default RLIR_THREADS, else available parallelism)
Shards: --shards N pod-sharded fat-tree engine (default RLIR_SHARDS, else sequential; byte-identical for any N)
Replay: --trace <pcap> capture to stream through `run replay` (default: generated);
        --entry-map fixed:<node>|hash:<n0,n1,...> entry-node demux (tandem nodes are 0 and 1);
        --lenient skip-and-count pcap ingest (damaged records resynced, regressions clamped)
Chaos:  --chaos-seed <u64> master campaign seed for `run chaos` (default RLIR_SEED);
        --tenants w1,w2 positive tenant weights — segment-1 taps tenant 0, segment-2 tenant 1
Output: RLIR_RESULTS_DIR=<dir> (default results/)";

/// Parse a `--tenants` spec: exactly two positive integer weights,
/// comma-separated.
fn parse_tenants(spec: &str) -> Result<(u64, u64), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 2 {
        return Err(format!(
            "expected exactly two comma-separated weights, got {:?}",
            spec
        ));
    }
    let w: Vec<u64> = parts
        .iter()
        .map(|p| p.trim().parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad weight in {spec:?}: {e}"))?;
    if w[0] == 0 || w[1] == 0 {
        return Err(format!("tenant weights must be positive, got {spec:?}"));
    }
    Ok((w[0], w[1]))
}

fn emit_accuracy_figure(
    name: &str,
    title: &str,
    curves: &[AccuracyCurve],
    out: &OutputDir,
) -> std::io::Result<()> {
    println!("== {title} ==");
    for c in curves {
        println!("  {}", c.summary());
        let file = format!(
            "{name}_{}.csv",
            c.label.to_lowercase().replace([',', ' ', '%'], "")
        );
        out.write(&file, &format!("relative_error,cdf\n{}", c.cdf_csv()))?;
    }
    println!("  → CSVs in {}", out.root().display());
    Ok(())
}

fn run(cmd: &str, scale: &Scale, out: &OutputDir, runner: &SweepRunner) -> std::io::Result<()> {
    match cmd {
        "fig4a" => {
            let curves = fig4a(scale, runner);
            emit_accuracy_figure(
                "fig4a",
                "Figure 4(a): per-flow MEAN latency — relative-error CDFs (random cross traffic)",
                &curves,
                out,
            )?;
            print_shape_checks(&fig4a_shape_checks(&curves));
        }
        "fig4b" => {
            let curves = fig4b(scale, runner);
            emit_accuracy_figure(
                "fig4b",
                "Figure 4(b): per-flow STD-DEV latency — relative-error CDFs (random cross traffic)",
                &curves,
                out,
            )?;
        }
        "fig4c" => {
            let curves = fig4c(scale, runner);
            emit_accuracy_figure(
                "fig4c",
                "Figure 4(c): mean-error CDFs — bursty vs random cross traffic",
                &curves,
                out,
            )?;
            print_shape_checks(&fig4c_shape_checks(&curves));
        }
        "fig5" => {
            let points = fig5(scale, runner);
            emit_fig5(
                "Figure 5: loss-rate difference caused by reference packets",
                &points,
                &fig5_shape_checks(&points),
                "fig5_interference.csv",
                out,
            )?;
        }
        "placement" => {
            println!("== §3.1: partial-placement complexity on k-ary fat-trees ==");
            println!(
                "  {:>4} {:>10} {:>10} {:>14} {:>14} {:>16} {:>10}",
                "k",
                "iface-pair",
                "tor-pair",
                "all-pairs",
                "(enumerated)",
                "full deploy",
                "reduction"
            );
            let rows = placement_rows();
            for r in &rows {
                println!(
                    "  {:>4} {:>10} {:>10} {:>14} {:>14} {:>16} {:>9.1}x",
                    r.k,
                    r.interface_pair,
                    r.tor_pair,
                    r.all_tor_pairs_paper,
                    r.all_tor_pairs_enumerated,
                    r.full_deployment,
                    r.reduction()
                );
            }
            let csv = write_csv(
                "k,interface_pair,tor_pair,all_tor_pairs_paper,all_tor_pairs_enumerated,full_deployment",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{},{},{}",
                        r.k,
                        r.interface_pair,
                        r.tor_pair,
                        r.all_tor_pairs_paper,
                        r.all_tor_pairs_enumerated,
                        r.full_deployment
                    )
                }),
            );
            out.write("placement_table.csv", &csv)?;
        }
        "demux" => {
            emit_demux(
                "A1/A3: demultiplexing ablation on the k=4 fat-tree",
                &demux_ablation(scale, runner),
                "demux_ablation.csv",
                out,
            )?;
        }
        "interp" => {
            emit_interp(
                "A2: interpolation-estimator ablation (93% utilization, static 1-and-100)",
                &interp_ablation(scale, runner),
                "interp_ablation.csv",
                out,
            )?;
        }
        "sync" => {
            emit_sync(
                "A4: clock-synchronisation sensitivity (93% utilization)",
                &sync_ablation(scale, runner),
                "sync_ablation.csv",
                out,
            )?;
        }
        "baselines" => {
            println!("== A6: RLI vs LDA vs Multiflow (identical 93% run) ==");
            let rows = baselines_comparison(scale);
            for r in &rows {
                let per_flow = if r.per_flow_median_error.is_nan() {
                    "      n/a".to_string()
                } else {
                    format!("{:>8.2}%", r.per_flow_median_error * 100.0)
                };
                println!(
                    "  {:<32} per-flow median {per_flow}   aggregate err {:>7.2}%   flows {:>7}",
                    r.estimator,
                    r.aggregate_error * 100.0,
                    r.flows_covered
                );
            }
            let csv = write_csv(
                "estimator,per_flow_median_error,aggregate_error,flows_covered",
                rows.iter().map(|r| {
                    format!(
                        "{},{},{},{}",
                        r.estimator, r.per_flow_median_error, r.aggregate_error, r.flows_covered
                    )
                }),
            );
            out.write("baselines_comparison.csv", &csv)?;
        }
        "quantiles" => {
            emit_quantiles(
                "A7: per-flow p90 tail-latency accuracy (93% utilization)",
                &quantile_accuracy(scale, runner),
                "quantile_accuracy.csv",
                out,
            )?;
        }
        "localize" => {
            println!("== A5: anomaly localization on the fat-tree ==");
            let o = localization_demo(scale);
            println!("  injected fault at core {}", o.injected);
            for (name, est, truth) in &o.segments {
                println!(
                    "    segment {:<16} est {:>9.1} µs   true {:>9.1} µs",
                    name, est, truth
                );
            }
            println!("  flagged: {:?}", o.flagged);
            println!(
                "  verdict: {}",
                if o.correct {
                    "LOCALIZED CORRECTLY"
                } else {
                    "MISSED"
                }
            );
            let csv = write_csv(
                "segment,est_mean_us,true_mean_us",
                o.segments.iter().map(|(n, e, t)| format!("{n},{e},{t}")),
            );
            out.write("localization_segments.csv", &csv)?;
        }
        "all" => {
            for c in [
                "placement",
                "fig4a",
                "fig4b",
                "fig4c",
                "fig5",
                "demux",
                "interp",
                "sync",
                "baselines",
                "quantiles",
                "localize",
            ] {
                run(c, scale, out, runner)?;
                println!();
            }
        }
        other => {
            eprintln!("unknown command {other:?}\n{HELP}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    // Split `--threads N` out of the positional arguments.
    let mut positional: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut trace: Option<std::path::PathBuf> = None;
    let mut entry_map: Option<String> = None;
    let mut tenants: Option<(u64, u64)> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut lenient = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--tenants needs a spec like 3,1\n{HELP}");
                    std::process::exit(2);
                });
                tenants = Some(parse_tenants(&spec).unwrap_or_else(|e| {
                    eprintln!("--tenants: {e}\n{HELP}");
                    std::process::exit(2);
                }));
            }
            "--chaos-seed" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--chaos-seed needs an unsigned 64-bit integer\n{HELP}");
                        std::process::exit(2);
                    });
                chaos_seed = Some(n);
            }
            "--lenient" => lenient = true,
            "--trace" => {
                let p = args
                    .next()
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| {
                        eprintln!("--trace needs a capture file path\n{HELP}");
                        std::process::exit(2);
                    });
                if !p.is_file() {
                    eprintln!("--trace: {} is not a readable file\n{HELP}", p.display());
                    std::process::exit(2);
                }
                trace = Some(p);
            }
            "--entry-map" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!(
                        "--entry-map needs a spec (fixed:<node> or hash:<n0,n1,...>)\n{HELP}"
                    );
                    std::process::exit(2);
                });
                if let Err(e) = rlir_trace::EntryMap::parse(&spec) {
                    eprintln!("--entry-map: {e}\n{HELP}");
                    std::process::exit(2);
                }
                entry_map = Some(spec);
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer\n{HELP}");
                        std::process::exit(2);
                    });
                threads = Some(n);
            }
            "--shards" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--shards needs a positive integer\n{HELP}");
                        std::process::exit(2);
                    });
                shards = Some(n);
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}\n{HELP}");
                std::process::exit(2);
            }
            _ => positional.push(a),
        }
    }
    let cmd = positional.first().map(String::as_str).unwrap_or("all");
    // `run` takes exactly one scenario name; every other command takes no
    // operands. Anything extra is a mistake (e.g. `run loss_sweep 8` hoping
    // to set the thread count) — fail loudly rather than silently run with
    // defaults.
    let expected = if cmd == "run" { 2 } else { 1 };
    if positional.len() > expected {
        eprintln!("unexpected argument {:?}\n{HELP}", positional[expected]);
        std::process::exit(2);
    }
    let runner = threads.map(SweepRunner::new).unwrap_or_default();

    if cmd == "list" {
        let reg = build_registry();
        println!("registered scenarios ({}):", reg.len());
        for e in reg.entries() {
            println!("  {:<14} {}", e.name(), e.summary());
        }
        println!("\nrun one with: experiments run <name> [--threads N]");
        return Ok(());
    }

    let mut scale = Scale::from_env();
    if shards.is_some() {
        scale.shards = shards;
    }
    let out = OutputDir::from_env()?;
    eprintln!(
        "scale: accuracy {} | interference {} | fat-tree {} | seeds {} | base seed {} | threads {} | shards {}",
        scale.accuracy_duration,
        scale.interference_duration,
        scale.fattree_duration,
        scale.seeds,
        scale.base_seed,
        runner.threads(),
        scale.shards.map_or("seq".to_string(), |n| n.to_string()),
    );

    if cmd == "run" {
        let Some(name) = positional.get(1) else {
            eprintln!("run needs a scenario name; try `experiments list`\n{HELP}");
            std::process::exit(2);
        };
        let ctx = RunContext {
            scale,
            out,
            trace,
            entry_map,
            tenants,
            chaos_seed,
            lenient,
        };
        return match build_registry().run(name, &ctx, &runner) {
            Ok(()) => Ok(()),
            Err(rlir_exec::RegistryError::Io(e)) => Err(e),
            Err(e @ rlir_exec::RegistryError::Unknown { .. }) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
    }

    run(cmd, &scale, &out, &runner)
}

#[cfg(test)]
mod tests {
    use super::parse_tenants;

    #[test]
    fn tenants_spec_accepts_two_positive_weights() {
        assert_eq!(parse_tenants("3,1"), Ok((3, 1)));
        assert_eq!(parse_tenants(" 10 , 2 "), Ok((10, 2)));
    }

    #[test]
    fn tenants_spec_rejects_malformed_input() {
        assert!(parse_tenants("3").is_err(), "one weight");
        assert!(parse_tenants("3,1,2").is_err(), "three weights");
        assert!(parse_tenants("0,1").is_err(), "zero weight");
        assert!(parse_tenants("3,-1").is_err(), "negative weight");
        assert!(parse_tenants("a,b").is_err(), "non-numeric");
        assert!(parse_tenants("").is_err(), "empty");
    }
}
