//! Flat-memory soak harness for continuous operation.
//!
//! The deployment story is RLI running indefinitely on live routers, so
//! the engine and the measurement plane must hold **O(in-flight) memory
//! regardless of run length**: the PR 5 slab keeps `peak_live_slots`
//! bounded by concurrent packets, and the PR 4/6 plane keeps pending
//! observations bounded by the reorder window (plus the global
//! `pending_budget` backstop). This binary proves it the blunt way: it
//! runs the k = 4 fat-tree RLIR experiment (measured + background load,
//! full tap plane, no epochs so nothing accumulates per-epoch) at a
//! geometric ladder of simulated durations — by default 1×, 10× and 100×
//! the 120 ms the scenarios use today — and **fails** (non-zero exit) if
//! any peak-memory counter at a longer duration exceeds the shortest
//! run's high-water mark by more than a slack factor. Wall-clock, event
//! and delivery counts are reported alongside, as JSON on stdout;
//! `scripts/soak_bench.sh` captures it into `BENCH_soak.json`.
//!
//! Every rung also carries a **mid-run tap outage**: the destination-ToR
//! tap crashes at 40% of the rung's duration and cold-recovers at 60%
//! (scaled per rung, so every run loses and rebuilds its state mid-soak).
//! The flatness gate therefore also proves that crash/recovery leaves no
//! memory behind — freed window slices and arena handles must return to
//! the pool, not leak into the peaks of the longer rungs.
//!
//! Knobs: `RLIR_SOAK_BASE_MS` (base simulated duration, default 120),
//! `RLIR_SOAK_MULTIPLIERS` (comma list, default `1,10,100`),
//! `RLIR_SOAK_SLACK` (allowed growth factor, default 1.5),
//! `RLIR_SOAK_SETTLE_MS` (baseline-rung settle floor, default 25),
//! `RLIR_SOAK_BUDGET` (global plane pending budget, default 8192),
//! `RLIR_SOAK_OUTAGE` (0 disables the tap-outage phase, default 1).

use rlir::experiment::{run_fattree_faulted, FatTreeExpConfig};
use rlir_net::time::{SimDuration, SimTime};
use rlir_sim::{FaultEvent, FaultKind, FaultScript};
use rlir_topo::FatTree;
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn multipliers() -> Vec<u64> {
    std::env::var("RLIR_SOAK_MULTIPLIERS")
        .ok()
        .map(|v| v.split(',').filter_map(|m| m.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10, 100])
}

struct SoakRow {
    multiplier: u64,
    sim_ms: u64,
    wall_ms: f64,
    events: u64,
    delivered: u64,
    peak_live_slots: usize,
    peak_pending_total: usize,
    peak_pending_tap: usize,
    shed: u64,
    late: u64,
    tap_outages: u64,
    lost_window_obs: u64,
}

fn main() {
    let base_ms = env_u64("RLIR_SOAK_BASE_MS", 120);
    let slack = env_f64("RLIR_SOAK_SLACK", 1.5);
    let budget = env_u64("RLIR_SOAK_BUDGET", 8_192) as usize;
    let outage = env_u64("RLIR_SOAK_OUTAGE", 1) != 0;
    let mults = multipliers();

    let mut rows: Vec<SoakRow> = Vec::new();
    for &m in &mults {
        let sim_ms = base_ms * m;
        let mut cfg = FatTreeExpConfig::paper(0x50AC, SimDuration::from_millis(sim_ms));
        // No epoch aggregation: per-epoch series are output data and grow
        // with run length by design; the soak measures what must NOT grow.
        cfg.epoch = None;
        // Graceful degradation under test: the peak of an *unbounded*
        // pending buffer creeps logarithmically with run length (a longer
        // stationary run samples rarer burst extremes), so indefinite
        // operation needs the global budget — overflow regulars are shed
        // at the offering tap and counted, references always admitted.
        cfg.plane_budget = Some(budget);
        // The mid-run outage phase: the destination-ToR tap (the busiest
        // one — every measured flow terminates there) crashes at 40% and
        // cold-recovers at 60% of this rung's duration.
        let script = outage.then(|| {
            let tree = FatTree::new(cfg.k, cfg.hash);
            let tap_node = cfg.dst_tor(&tree);
            let ns = SimDuration::from_millis(sim_ms).as_nanos();
            FaultScript::new(vec![
                FaultEvent {
                    at: SimTime::from_nanos(ns * 2 / 5),
                    kind: FaultKind::TapDown { node: tap_node },
                },
                FaultEvent {
                    at: SimTime::from_nanos(ns * 3 / 5),
                    kind: FaultKind::TapUp { node: tap_node },
                },
            ])
        });
        let start = Instant::now();
        let run = run_fattree_faulted(&cfg, script.as_ref(), None);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        rows.push(SoakRow {
            multiplier: m,
            sim_ms,
            wall_ms,
            events: run.events,
            delivered: run.delivered,
            peak_live_slots: run.peak_live_slots,
            peak_pending_total: run.outcome.peak_pending_total,
            peak_pending_tap: run.outcome.peak_pending,
            shed: run.outcome.shed,
            late: run.outcome.late,
            tap_outages: run.outcome.tap_outages,
            lost_window_obs: run.outcome.lost_window_obs,
        });
    }

    // Flatness gate: every longer run's peaks must stay within `slack` of
    // the baseline rung's (plus a small absolute allowance so tiny smoke
    // bases aren't judged on single-digit noise). The baseline is the
    // first rung past the settle floor: pending peaks only plateau once
    // the run comfortably exceeds the 4 ms reorder window and the flow
    // ramp, so shorter rungs understate steady state and would flag
    // transient fill-up as growth. Clamped so at least one comparison
    // always happens; linear (unbounded) growth still blows through the
    // slack on whatever pair remains.
    let settle_ms = env_u64("RLIR_SOAK_SETTLE_MS", 25);
    let base_idx = rows
        .iter()
        .position(|r| r.sim_ms >= settle_ms)
        .unwrap_or(rows.len() - 1)
        .min(rows.len() - 2);
    let base = &rows[base_idx];
    let bound = |b: usize| (b as f64 * slack) as usize + 16;
    let mut flat = true;
    for r in &rows[base_idx + 1..] {
        if r.peak_live_slots > bound(base.peak_live_slots) {
            eprintln!(
                "FAIL: peak_live_slots grew {} -> {} at {}x",
                base.peak_live_slots, r.peak_live_slots, r.multiplier
            );
            flat = false;
        }
        if r.peak_pending_total > bound(base.peak_pending_total) {
            eprintln!(
                "FAIL: peak_pending_total grew {} -> {} at {}x",
                base.peak_pending_total, r.peak_pending_total, r.multiplier
            );
            flat = false;
        }
    }
    // The outage phase must actually fire on every rung (a gate that
    // silently skipped recovery would prove nothing about it).
    if outage {
        for r in &rows {
            if r.tap_outages == 0 {
                eprintln!("FAIL: tap-outage phase did not fire at {}x", r.multiplier);
                flat = false;
            }
        }
    }

    println!("{{");
    println!(
        "  \"bench\": \"flat-memory soak (k=4 fat-tree RLIR plane, base {base_ms} ms, multipliers {mults:?}, pending budget {budget}, slack {slack}, mid-run tap outage {})\",",
        if outage { "on" } else { "off" }
    );
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "    {{\"multiplier\": {}, \"sim_ms\": {}, \"wall_ms\": {:.1}, \"events\": {}, \"delivered\": {}, \"peak_live_slots\": {}, \"peak_pending_total\": {}, \"peak_pending_tap\": {}, \"shed\": {}, \"late\": {}, \"tap_outages\": {}, \"lost_window_obs\": {}}}{}",
            r.multiplier,
            r.sim_ms,
            r.wall_ms,
            r.events,
            r.delivered,
            r.peak_live_slots,
            r.peak_pending_total,
            r.peak_pending_tap,
            r.shed,
            r.late,
            r.tap_outages,
            r.lost_window_obs,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    println!("  ],");
    println!("  \"baseline_multiplier\": {},", rows[base_idx].multiplier);
    println!("  \"flat\": {flat}");
    println!("}}");

    if !flat {
        std::process::exit(1);
    }
}
