//! Flat-memory soak harness for continuous operation.
//!
//! The deployment story is RLI running indefinitely on live routers, so
//! the engine and the measurement plane must hold **O(in-flight) memory
//! regardless of run length**: the PR 5 slab keeps `peak_live_slots`
//! bounded by concurrent packets, and the PR 4/6 plane keeps pending
//! observations bounded by the reorder window (plus the global
//! `pending_budget` backstop). This binary proves it the blunt way: it
//! runs the k = 4 fat-tree RLIR experiment (measured + background load,
//! full tap plane, no epochs so nothing accumulates per-epoch) at a
//! geometric ladder of simulated durations — by default 1×, 10× and 100×
//! the 120 ms the scenarios use today — and **fails** (non-zero exit) if
//! any peak-memory counter at a longer duration exceeds the shortest
//! run's high-water mark by more than a slack factor. Wall-clock, event
//! and delivery counts are reported alongside, as JSON on stdout;
//! `scripts/soak_bench.sh` captures it into `BENCH_soak.json`.
//!
//! Knobs: `RLIR_SOAK_BASE_MS` (base simulated duration, default 120),
//! `RLIR_SOAK_MULTIPLIERS` (comma list, default `1,10,100`),
//! `RLIR_SOAK_SLACK` (allowed growth factor, default 1.5),
//! `RLIR_SOAK_SETTLE_MS` (baseline-rung settle floor, default 25),
//! `RLIR_SOAK_BUDGET` (global plane pending budget, default 8192).

use rlir::experiment::{run_fattree_faulted, FatTreeExpConfig};
use rlir_net::time::SimDuration;
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn multipliers() -> Vec<u64> {
    std::env::var("RLIR_SOAK_MULTIPLIERS")
        .ok()
        .map(|v| v.split(',').filter_map(|m| m.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 10, 100])
}

struct SoakRow {
    multiplier: u64,
    sim_ms: u64,
    wall_ms: f64,
    events: u64,
    delivered: u64,
    peak_live_slots: usize,
    peak_pending_total: usize,
    peak_pending_tap: usize,
    shed: u64,
    late: u64,
}

fn main() {
    let base_ms = env_u64("RLIR_SOAK_BASE_MS", 120);
    let slack = env_f64("RLIR_SOAK_SLACK", 1.5);
    let budget = env_u64("RLIR_SOAK_BUDGET", 8_192) as usize;
    let mults = multipliers();

    let mut rows: Vec<SoakRow> = Vec::new();
    for &m in &mults {
        let sim_ms = base_ms * m;
        let mut cfg = FatTreeExpConfig::paper(0x50AC, SimDuration::from_millis(sim_ms));
        // No epoch aggregation: per-epoch series are output data and grow
        // with run length by design; the soak measures what must NOT grow.
        cfg.epoch = None;
        // Graceful degradation under test: the peak of an *unbounded*
        // pending buffer creeps logarithmically with run length (a longer
        // stationary run samples rarer burst extremes), so indefinite
        // operation needs the global budget — overflow regulars are shed
        // at the offering tap and counted, references always admitted.
        cfg.plane_budget = Some(budget);
        let start = Instant::now();
        let run = run_fattree_faulted(&cfg, None, None);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        rows.push(SoakRow {
            multiplier: m,
            sim_ms,
            wall_ms,
            events: run.events,
            delivered: run.delivered,
            peak_live_slots: run.peak_live_slots,
            peak_pending_total: run.outcome.peak_pending_total,
            peak_pending_tap: run.outcome.peak_pending,
            shed: run.outcome.shed,
            late: run.outcome.late,
        });
    }

    // Flatness gate: every longer run's peaks must stay within `slack` of
    // the baseline rung's (plus a small absolute allowance so tiny smoke
    // bases aren't judged on single-digit noise). The baseline is the
    // first rung past the settle floor: pending peaks only plateau once
    // the run comfortably exceeds the 4 ms reorder window and the flow
    // ramp, so shorter rungs understate steady state and would flag
    // transient fill-up as growth. Clamped so at least one comparison
    // always happens; linear (unbounded) growth still blows through the
    // slack on whatever pair remains.
    let settle_ms = env_u64("RLIR_SOAK_SETTLE_MS", 25);
    let base_idx = rows
        .iter()
        .position(|r| r.sim_ms >= settle_ms)
        .unwrap_or(rows.len() - 1)
        .min(rows.len() - 2);
    let base = &rows[base_idx];
    let bound = |b: usize| (b as f64 * slack) as usize + 16;
    let mut flat = true;
    for r in &rows[base_idx + 1..] {
        if r.peak_live_slots > bound(base.peak_live_slots) {
            eprintln!(
                "FAIL: peak_live_slots grew {} -> {} at {}x",
                base.peak_live_slots, r.peak_live_slots, r.multiplier
            );
            flat = false;
        }
        if r.peak_pending_total > bound(base.peak_pending_total) {
            eprintln!(
                "FAIL: peak_pending_total grew {} -> {} at {}x",
                base.peak_pending_total, r.peak_pending_total, r.multiplier
            );
            flat = false;
        }
    }

    println!("{{");
    println!(
        "  \"bench\": \"flat-memory soak (k=4 fat-tree RLIR plane, base {base_ms} ms, multipliers {mults:?}, pending budget {budget}, slack {slack})\","
    );
    println!("  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "    {{\"multiplier\": {}, \"sim_ms\": {}, \"wall_ms\": {:.1}, \"events\": {}, \"delivered\": {}, \"peak_live_slots\": {}, \"peak_pending_total\": {}, \"peak_pending_tap\": {}, \"shed\": {}, \"late\": {}}}{}",
            r.multiplier,
            r.sim_ms,
            r.wall_ms,
            r.events,
            r.delivered,
            r.peak_live_slots,
            r.peak_pending_total,
            r.peak_pending_tap,
            r.shed,
            r.late,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    println!("  ],");
    println!("  \"baseline_multiplier\": {},", rows[base_idx].multiplier);
    println!("  \"flat\": {flat}");
    println!("}}");

    if !flat {
        std::process::exit(1);
    }
}
