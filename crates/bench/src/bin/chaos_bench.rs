//! Survivability bench: seeded chaos campaigns against the measurement
//! plane, reported as JSON on stdout (`scripts/chaos_bench.sh` captures
//! it into `BENCH_chaos.json`).
//!
//! Each campaign is one reproducible storm — correlated link flaps, gray
//! loss ramps, tap crash/recovery pairs and a hidden switch degradation —
//! generated from a single seed and run closed-loop under the online
//! detector. The bench reports, per campaign, detection + time-to-localize
//! against the degradation onset, false positives against the earliest
//! scripted onset, tap outages absorbed, observations lost while down and
//! epochs recovered cold; plus three plane-wide invariants that **fail the
//! bench** (non-zero exit) when violated:
//!
//! * the fault-free baseline run must raise no alarm;
//! * the tenant cross-talk probe must measure exactly 0.0 ns (a flooding
//!   tenant cannot move a victim tenant's estimates by a single bit);
//! * lenient pcap ingest must agree record-for-record with strict on a
//!   clean capture, and the campaigns must actually exercise recovery
//!   (non-zero outages and recovered epochs).
//!
//! Knobs: `RLIR_CHAOS_SEED` (master seed, default 0xC405), `RLIR_CHAOS_MS`
//! (per-campaign simulated duration, default 60), `RLIR_CHAOS_CAMPAIGNS`
//! (default 3).

use rlir::experiment::{run_chaos, ChaosCampaignConfig};
use rlir_net::time::SimDuration;
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("RLIR_CHAOS_SEED", 0xC405);
    let sim_ms = env_u64("RLIR_CHAOS_MS", 60);
    let campaigns = env_u64("RLIR_CHAOS_CAMPAIGNS", 3) as usize;

    let mut cfg = ChaosCampaignConfig::paper(seed, SimDuration::from_millis(sim_ms));
    cfg.campaigns = campaigns;
    let start = Instant::now();
    let rep = run_chaos(&cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let recovered: u64 = rep.total_recovered_epochs;
    let outages: u64 = rep.total_tap_outages;
    let mut ok = true;
    if rep.baseline_false_positive {
        eprintln!("FAIL: detector alarmed on the fault-free baseline");
        ok = false;
    }
    if rep.cross_talk_max_abs_ns != 0.0 {
        eprintln!(
            "FAIL: tenant cross-talk measured {} ns (must be exactly 0)",
            rep.cross_talk_max_abs_ns
        );
        ok = false;
    }
    if !rep.ingest.strict_matches_lenient_on_clean {
        eprintln!("FAIL: lenient ingest diverged from strict on a clean capture");
        ok = false;
    }
    if outages == 0 || recovered == 0 {
        eprintln!(
            "FAIL: campaigns exercised no tap recovery (outages {outages}, recovered epochs {recovered})"
        );
        ok = false;
    }

    println!("{{");
    println!(
        "  \"bench\": \"seeded chaos campaigns (k=4 fat-tree, seed {seed}, {campaigns} campaigns x {sim_ms} ms)\","
    );
    println!("  \"wall_ms\": {wall_ms:.1},");
    println!("  \"campaigns\": [");
    for (i, c) in rep.campaigns.iter().enumerate() {
        println!(
            "    {{\"campaign\": {}, \"seed\": {}, \"events\": {}, \"first_onset_ns\": {}, \"tap_outages\": {}, \"recovered_epochs\": {}, \"lost_window_obs\": {}, \"fault_drops\": {}, \"shed\": {}, \"peak_pending_total\": {}, \"detected\": {}, \"false_positive\": {}, \"ttl_ns\": {}}}{}",
            c.campaign,
            c.seed,
            c.events,
            c.first_onset_ns,
            c.tap_outages,
            c.recovered_epochs,
            c.lost_window_obs,
            c.fault_drops,
            c.shed,
            c.peak_pending_total,
            c.detected,
            c.false_positive,
            c.ttl_ns.map_or(-1i64, |t| t as i64),
            if i + 1 == rep.campaigns.len() { "" } else { "," }
        );
    }
    println!("  ],");
    println!("  \"detected\": {},", rep.detected);
    println!("  \"false_positives\": {},", rep.false_positives);
    println!(
        "  \"mean_ttl_ms\": {},",
        if rep.mean_ttl_ns.is_nan() {
            "null".to_string()
        } else {
            format!("{:.3}", rep.mean_ttl_ns / 1e6)
        }
    );
    println!("  \"total_tap_outages\": {outages},");
    println!("  \"total_recovered_epochs\": {recovered},");
    println!(
        "  \"total_lost_window_obs\": {},",
        rep.total_lost_window_obs
    );
    println!(
        "  \"baseline_false_positive\": {},",
        rep.baseline_false_positive
    );
    println!(
        "  \"cross_talk_max_abs_ns\": {},",
        rep.cross_talk_max_abs_ns
    );
    println!(
        "  \"ingest\": {{\"records\": {}, \"corruptions\": {}, \"emitted\": {}, \"skipped_records\": {}, \"skipped_bytes\": {}, \"resyncs\": {}, \"clamped_regressions\": {}, \"dup_capped\": {}, \"strict_matches_lenient_on_clean\": {}}},",
        rep.ingest.records,
        rep.ingest.corruptions,
        rep.ingest.emitted,
        rep.ingest.skipped_records,
        rep.ingest.skipped_bytes,
        rep.ingest.resyncs,
        rep.ingest.clamped_regressions,
        rep.ingest.dup_capped,
        rep.ingest.strict_matches_lenient_on_clean
    );
    println!("  \"ok\": {ok}");
    println!("}}");

    if !ok {
        std::process::exit(1);
    }
}
