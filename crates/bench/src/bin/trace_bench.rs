//! Packets/s-off-disk headline bench for the streaming trace-replay
//! ingest.
//!
//! The question this answers: how fast does a multi-million-packet
//! capture stream **off disk** through the full measurement stack — pcap
//! decode, bounded reorder window, RLI reference interleave, the
//! all-taps plane on the tandem, the two-point capture pair — and how
//! much ingest-side memory does it take, compared to the legacy
//! collect-then-sort Vec ingest over the identical capture?
//!
//! Procedure:
//!
//! 1. Stream-generate a capture to disk chunk by chunk (O(chunk) memory;
//!    each chunk is an independently-seeded synthetic trace shifted in
//!    time), until it holds at least `RLIR_TRACE_TARGET_PACKETS` records
//!    — by default 3 M, ≥ 10× the 120 ms incast workload. A 1-chunk
//!    capture is written alongside as the flatness baseline. Or replay
//!    your own file via `RLIR_TRACE_FILE` (skips generation and the
//!    flatness gate: one external capture has no size ladder).
//! 2. Replay it twice through identical observer stacks: `streamed`
//!    (pull-based [`PcapReplaySource`], the PR 9 path) and `vec` (drain
//!    the same decode into a `Vec`, hand it to the legacy ingest). Both
//!    runs digest the complete event + watermark + delivery stream.
//! 3. **Fail** (exit 1) if the digests differ — every bench run re-proves
//!    byte-identity on the workload it just timed — or if the streamed
//!    ingest buffer grew with capture size (`RLIR_TRACE_SLACK`, default
//!    1.5, plus a 16-record allowance).
//!
//! Output: JSON on stdout; `scripts/trace_bench.sh` captures it into
//! `BENCH_trace.json`.
//!
//! Knobs: `RLIR_TRACE_TARGET_PACKETS` (default 3000000),
//! `RLIR_TRACE_CHUNK_MS` (default 120), `RLIR_TRACE_UTIL` (default 0.85),
//! `RLIR_TRACE_SLACK` (default 1.5), `RLIR_TRACE_FILE` (external
//! capture), `RLIR_TRACE_KEEP` (keep the generated captures).

use rlir::experiment::{RefInterleave, ReplayConfig};
use rlir::{CapturePair, TapPoint};
use rlir::{MeasurementPlane, PlaneConfig, TapSpec, TruthRef};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{PolicyKind, RliSender};
use rlir_sim::{
    run_network_streamed, run_network_streamed_source, Forwarder, InjectionSource, Network, NodeId,
    Port, RouteDecision, RunOptions, StreamDigest, TeeSink,
};
use rlir_trace::{generate, EntryMap, PcapReplaySource, PcapWriter, TraceConfig};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const S0: NodeId = 0;
const S1: NodeId = 1;

struct Line;
impl Forwarder for Line {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

fn ref_key() -> FlowKey {
    FlowKey::udp(
        "10.3.255.254".parse().expect("static"),
        40_000,
        "10.200.255.254".parse().expect("static"),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

fn mk_sender() -> RliSender {
    RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        PolicyKind::Static { n: 100 }.build(),
        vec![ref_key()],
    )
}

fn build_net(cfg: &ReplayConfig) -> Network {
    let mut net = Network::default();
    net.add_node("S0");
    net.add_node("S1");
    net.add_port(S0, Port::to_switch(cfg.ingress_queue, S1, cfg.link_delay));
    net.add_port(S1, Port::to_host(cfg.bottleneck_queue, cfg.link_delay));
    net
}

/// Stream-generate a capture of at least `target` records to `path`,
/// chunk by chunk. Returns (records, chunks, generation seconds).
fn generate_capture(path: &Path, target: u64, chunk_ms: u64, util: f64) -> (u64, u64, f64) {
    let start = Instant::now();
    let file = std::fs::File::create(path).expect("create capture");
    let mut w = PcapWriter::new(BufWriter::new(file)).expect("pcap header");
    let chunk_ns = chunk_ms * 1_000_000;
    let mut chunks = 0u64;
    while w.records() < target {
        let mut tc =
            TraceConfig::paper_regular(0xCAFE + chunks, SimDuration::from_millis(chunk_ms));
        tc.link_rate_bps = 5_000_000_000;
        tc.target_utilization = util;
        let trace = generate(&tc);
        let offset = chunks * chunk_ns;
        for p in &trace.packets {
            let mut p = *p;
            p.created_at = SimTime::from_nanos(p.created_at.as_nanos() + offset);
            w.write(&p).expect("write record");
        }
        chunks += 1;
    }
    let records = w.records();
    w.finish()
        .expect("flush capture")
        .flush()
        .expect("flush capture");
    (records, chunks, start.elapsed().as_secs_f64())
}

/// The identical observer stack both modes run under: all taps of the
/// tandem (S0 egress + delivery), the two-point capture pair, and a
/// digest of the complete observable stream.
struct Stack<'a> {
    plane: MeasurementPlane<'a>,
    pair: CapturePair,
    digest: StreamDigest,
}

impl Stack<'_> {
    fn new(cfg: &ReplayConfig) -> Self {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            epoch: cfg.epoch,
            ..PlaneConfig::default()
        });
        let mut seg = TapSpec::new("s0-egress", TapPoint::PortDeparture(S0, 0), SenderId(1));
        seg.ordered = true;
        seg.truth = TruthRef::SinceInjection;
        plane.attach(seg);
        let mut e2e = TapSpec::new("delivery", TapPoint::Delivery(S1), SenderId(1));
        e2e.ordered = true;
        e2e.truth = TruthRef::SinceInjection;
        plane.attach(e2e);
        Stack {
            plane,
            pair: CapturePair::new(TapPoint::NodeArrival(S0), TapPoint::Delivery(S1)),
            digest: StreamDigest::default(),
        }
    }
}

struct RunRow {
    mode: &'static str,
    wall_s: f64,
    records: u64,
    packets_per_sec: f64,
    delivered: u64,
    events: u64,
    digest: u64,
    /// Peak records resident in the ingest path (reorder buffer for
    /// streamed; the whole materialized Vec for vec).
    ingest_peak_records: u64,
    ingest_peak_bytes: u64,
}

fn streamed_run(cfg: &ReplayConfig, path: &Path) -> RunRow {
    let start = Instant::now();
    let pcap =
        PcapReplaySource::from_path(path, EntryMap::Fixed(S0), cfg.reorder_ns).expect("open");
    let mut source = RefInterleave::new(pcap, mk_sender(), S0);
    let mut stack = Stack::new(cfg);
    let mut delivery_digest = StreamDigest::default();
    let stats = {
        let mut observers = TeeSink::new(&mut stack.plane, &mut stack.pair);
        let mut sink = TeeSink::new(&mut stack.digest, &mut observers);
        run_network_streamed_source(
            build_net(cfg),
            &Line,
            &mut source,
            &mut sink,
            RunOptions::default(),
            |d| {
                delivery_digest.fold(d.packet.id.0);
                delivery_digest.fold(d.delivered_at.as_nanos());
            },
        )
    };
    stack.digest.fold(delivery_digest.value());
    let wall_s = start.elapsed().as_secs_f64();
    assert!(source.inner().error().is_none(), "capture decode failed");
    let records = source.inner().records_read();
    RunRow {
        mode: "streamed",
        wall_s,
        records,
        packets_per_sec: records as f64 / wall_s,
        delivered: stats.delivered,
        events: stats.events,
        digest: stack.digest.value(),
        ingest_peak_records: source.inner().peak_buffered() as u64,
        ingest_peak_bytes: source.inner().peak_buffered_bytes() as u64,
    }
}

fn vec_run(cfg: &ReplayConfig, path: &Path) -> RunRow {
    let start = Instant::now();
    // The legacy ingest: decode and interleave exactly the same stream,
    // but materialize it whole before the engine starts.
    let pcap =
        PcapReplaySource::from_path(path, EntryMap::Fixed(S0), cfg.reorder_ns).expect("open");
    let mut source = RefInterleave::new(pcap, mk_sender(), S0);
    let mut injections: Vec<(NodeId, Packet)> = Vec::new();
    while source.peek().is_some() {
        injections.push(source.next_injection().expect("peeked non-empty"));
    }
    assert!(source.inner().error().is_none(), "capture decode failed");
    let records = source.inner().records_read();
    let materialized = injections.len() as u64;
    let entry_bytes = std::mem::size_of::<(NodeId, Packet)>() as u64;
    let mut stack = Stack::new(cfg);
    let mut delivery_digest = StreamDigest::default();
    let stats = {
        let mut observers = TeeSink::new(&mut stack.plane, &mut stack.pair);
        let mut sink = TeeSink::new(&mut stack.digest, &mut observers);
        run_network_streamed(build_net(cfg), &Line, injections, &mut sink, |d| {
            delivery_digest.fold(d.packet.id.0);
            delivery_digest.fold(d.delivered_at.as_nanos());
        })
    };
    stack.digest.fold(delivery_digest.value());
    let wall_s = start.elapsed().as_secs_f64();
    RunRow {
        mode: "vec",
        wall_s,
        records,
        packets_per_sec: records as f64 / wall_s,
        delivered: stats.delivered,
        events: stats.events,
        digest: stack.digest.value(),
        ingest_peak_records: materialized,
        ingest_peak_bytes: materialized * entry_bytes,
    }
}

fn emit_row(r: &RunRow, last: bool) {
    println!(
        "    {{\"mode\": \"{}\", \"wall_s\": {:.3}, \"records\": {}, \"packets_per_sec\": {:.0}, \"delivered\": {}, \"events\": {}, \"ingest_peak_records\": {}, \"ingest_peak_bytes\": {}}}{}",
        r.mode,
        r.wall_s,
        r.records,
        r.packets_per_sec,
        r.delivered,
        r.events,
        r.ingest_peak_records,
        r.ingest_peak_bytes,
        if last { "" } else { "," }
    );
}

fn main() {
    let target = env_u64("RLIR_TRACE_TARGET_PACKETS", 3_000_000);
    let chunk_ms = env_u64("RLIR_TRACE_CHUNK_MS", 120);
    let util = env_f64("RLIR_TRACE_UTIL", 0.85);
    let slack = env_f64("RLIR_TRACE_SLACK", 1.5);
    let keep = std::env::var("RLIR_TRACE_KEEP").is_ok();
    let external: Option<PathBuf> = std::env::var("RLIR_TRACE_FILE").ok().map(PathBuf::from);

    let cfg = ReplayConfig::paper(0x7124CE, SimDuration::from_millis(chunk_ms));
    let dir = std::env::temp_dir();
    let (path, small_path, records, chunks, gen_s) = match &external {
        Some(p) => (p.clone(), None, 0, 0, 0.0),
        None => {
            let path = dir.join(format!("rlir-trace-bench-{}.pcap", std::process::id()));
            let small = dir.join(format!(
                "rlir-trace-bench-small-{}.pcap",
                std::process::id()
            ));
            let (records, chunks, gen_s) = generate_capture(&path, target, chunk_ms, util);
            let _ = generate_capture(&small, 1, chunk_ms, util);
            (path, Some(small), records, chunks, gen_s)
        }
    };
    let capture_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    // The flatness baseline: the identical pipeline over a 1-chunk
    // capture. Streamed ingest memory must not grow with capture size.
    let baseline = small_path.as_ref().map(|p| streamed_run(&cfg, p));
    let streamed = streamed_run(&cfg, &path);
    let vec = vec_run(&cfg, &path);

    let identical = streamed.digest == vec.digest;
    let flat = match &baseline {
        Some(b) => {
            streamed.ingest_peak_records <= (b.ingest_peak_records as f64 * slack) as u64 + 16
        }
        None => true, // external capture: no size ladder to compare against
    };

    println!("{{");
    println!(
        "  \"bench\": \"trace replay off disk (tandem, all taps + capture pair, target {target} records, chunk {chunk_ms} ms, util {util})\","
    );
    match &external {
        Some(p) => println!("  \"capture\": \"{}\",", p.display()),
        None => println!(
            "  \"capture\": {{\"records\": {records}, \"chunks\": {chunks}, \"bytes\": {capture_bytes}, \"generation_s\": {gen_s:.2}}},"
        ),
    }
    println!("  \"rows\": [");
    if let Some(b) = &baseline {
        println!(
            "    {{\"mode\": \"streamed-baseline-1chunk\", \"wall_s\": {:.3}, \"records\": {}, \"packets_per_sec\": {:.0}, \"delivered\": {}, \"events\": {}, \"ingest_peak_records\": {}, \"ingest_peak_bytes\": {}}},",
            b.wall_s,
            b.records,
            b.packets_per_sec,
            b.delivered,
            b.events,
            b.ingest_peak_records,
            b.ingest_peak_bytes
        );
    }
    emit_row(&streamed, false);
    emit_row(&vec, true);
    println!("  ],");
    println!(
        "  \"headline_packets_per_sec\": {:.0},",
        streamed.packets_per_sec
    );
    println!(
        "  \"ingest_memory_ratio_vec_over_streamed\": {:.1},",
        vec.ingest_peak_bytes as f64 / (streamed.ingest_peak_bytes.max(1)) as f64
    );
    println!("  \"identical\": {identical},");
    println!("  \"flat\": {flat}");
    println!("}}");

    if !keep && external.is_none() {
        std::fs::remove_file(&path).ok();
        if let Some(p) = &small_path {
            std::fs::remove_file(p).ok();
        }
    }
    if !identical {
        eprintln!("FAIL: streamed ingest diverged from the Vec-ingest oracle");
        std::process::exit(1);
    }
    if !flat {
        eprintln!(
            "FAIL: streamed ingest buffer grew with capture size ({} -> {} records)",
            baseline.map(|b| b.ingest_peak_records).unwrap_or(0),
            streamed.ingest_peak_records
        );
        std::process::exit(1);
    }
}
