//! Time-to-localize vs epoch length × detector threshold.
//!
//! The closed-loop `faults` scenario reports detection latency at the
//! paper-default configuration; this benchmark maps the trade-off behind
//! it. Shorter epochs settle sooner (a settled epoch lags the watermark by
//! two reorder windows plus the epoch itself) but carry fewer packets per
//! segment, so they are noisier; higher CUSUM thresholds suppress false
//! positives but accumulate evidence for longer. Each grid cell runs the
//! full closed-loop sweep — a 400 µs switch degradation at a scripted
//! onset, detection firing mid-run through the stop flag — and reports
//! detections, correct localizations, false positives and mean
//! time-to-localize, as JSON on stdout; `scripts/detect_bench.sh`
//! captures it into `BENCH_detect.json`.
//!
//! Knobs: `RLIR_DETBENCH_MS` (simulated duration, default 40),
//! `RLIR_DETBENCH_TRIALS` (victim draws per cell, default 3),
//! `RLIR_DETBENCH_THREADS` (sweep workers, default 4).

use rlir::experiment::{run_faults, FaultsConfig};
use rlir_exec::SweepRunner;
use rlir_net::time::SimDuration;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_DETBENCH_MS", 40));
    let trials = env_u64("RLIR_DETBENCH_TRIALS", 3) as usize;
    let runner = SweepRunner::new(env_u64("RLIR_DETBENCH_THREADS", 4) as usize);

    let epochs_us: [u64; 3] = [500, 1_000, 2_000];
    let thresholds: [f64; 3] = [2.0, 4.0, 8.0];

    let mut cells = Vec::new();
    for &epoch_us in &epochs_us {
        for &threshold in &thresholds {
            let mut cfg = FaultsConfig::paper(0xDE7E, duration);
            cfg.base.epoch = Some(SimDuration::from_micros(epoch_us));
            cfg.detector.threshold = threshold;
            cfg.utilizations = vec![0.25];
            cfg.onsets = vec![SimDuration::from_millis(8)];
            cfg.trials = trials;
            let points = run_faults(&cfg, &runner);
            let p = &points[0];
            cells.push((epoch_us, threshold, p.clone()));
        }
    }

    println!("{{");
    println!(
        "  \"bench\": \"time-to-localize vs epoch length x CUSUM threshold (k=4 fat-tree, 400 us degradation at 8 ms, {} ms sim, {} trials/cell)\",",
        duration.as_nanos() / 1_000_000,
        trials
    );
    println!("  \"cells\": [");
    for (i, (epoch_us, threshold, p)) in cells.iter().enumerate() {
        println!(
            "    {{\"epoch_us\": {}, \"threshold\": {}, \"trials\": {}, \"detected\": {}, \"correct\": {}, \"false_positives\": {}, \"mean_ttl_ms\": {:.3}}}{}",
            epoch_us,
            threshold,
            p.trials,
            p.detected,
            p.correct,
            p.false_positives,
            p.mean_ttl_ns / 1e6,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!("  ]");
    println!("}}");
}
