//! Measurement-plane overhead vs tap count on the k=8 fat-tree.
//!
//! Fixes one fat-tree workload (the `plane_scale` harness's measured +
//! background + reference traffic) and sweeps how much of the fabric is
//! tapped: from a single `(switch, port)` to **every** port, all
//! delivered-gated, all sharing the plane's arena/wheel state under one
//! fixed pending budget. Per point it reports best-of-N wall-clock for
//! the shared-arena layout, the same run under the pre-PR-8 per-tap
//! layout, and each point's overhead over the curve's own 1-tap baseline
//! — so `BENCH_plane.json` answers "what does tapping the whole fabric
//! cost?" with a measured curve instead of an extrapolation.
//!
//! In-run byte-identity: at every tap count the two layouts must produce
//! identical per-tap flow rows, epoch series, and shed/pending accounting
//! (`PlaneScaleOutcome::report_digest` plus the aggregate counters) — the
//! property `tests/plane_arena_differential.rs` pins on the RLIR harness,
//! re-checked here on the exact workload being timed.
//!
//! Knobs: `RLIR_PLANEBENCH_MS` (trace duration, default 20),
//! `RLIR_PLANEBENCH_REPS` (best-of, default 3), `RLIR_PLANEBENCH_K`
//! (fat-tree arity, default 8).

use rlir::experiment::{run_plane_scale, PlaneScaleConfig, PlaneScaleOutcome};
use rlir_net::time::SimDuration;
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Point {
    taps: usize,
    shared_ns: u128,
    per_tap_ns: u128,
    shared: PlaneScaleOutcome,
    per_tap: PlaneScaleOutcome,
}

/// Best-of-`reps` wall time plus the (rep-invariant) outcome.
fn time_point(cfg: &PlaneScaleConfig, reps: u64) -> (u128, PlaneScaleOutcome) {
    let mut best = u128::MAX;
    let mut kept = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = run_plane_scale(cfg);
        best = best.min(start.elapsed().as_nanos());
        kept = Some(out);
    }
    (best, kept.expect("reps >= 1"))
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_PLANEBENCH_MS", 20));
    let reps = env_u64("RLIR_PLANEBENCH_REPS", 3).max(1);
    let k = env_u64("RLIR_PLANEBENCH_K", 8) as usize;

    let mut base = PlaneScaleConfig::fleet(0x91A7E, duration);
    base.base.k = k;
    let all = base.all_ports();

    let mut points: Vec<Point> = Vec::new();
    for taps in [1usize, all / 8, all / 2, all] {
        let mut cfg = base.clone();
        cfg.taps = Some(taps);
        let (shared_ns, shared) = time_point(&cfg, reps);
        let mut oracle = cfg.clone();
        oracle.base.per_tap_plane = true;
        let (per_tap_ns, per_tap) = time_point(&oracle, reps);

        // In-run byte-identity between the layouts, on the timed workload.
        assert_eq!(
            shared.report_digest, per_tap.report_digest,
            "{taps} taps: shared-arena reports diverged from the per-tap \
             oracle — tests/plane_arena_differential.rs should have caught this"
        );
        assert_eq!(shared.metered, per_tap.metered);
        assert_eq!(shared.estimated, per_tap.estimated);
        assert_eq!(shared.shed, per_tap.shed);
        assert_eq!(shared.peak_pending_total, per_tap.peak_pending_total);
        assert_eq!(shared.late, 0, "window must cover the delivery lag");

        points.push(Point {
            taps,
            shared_ns,
            per_tap_ns,
            shared,
            per_tap,
        });
    }

    // The curve's own 1-tap point is the overhead denominator: the ISSUE
    // is "what does going from one tap to the whole fabric cost", not
    // "what does the engine cost without a plane" (scripts/network_bench.sh
    // times that).
    let baseline_ns = points[0].shared_ns;
    let head = &points[0].shared;
    println!("{{");
    println!(
        "  \"bench\": \"measurement plane vs tap count: 1..{all} delivered-gated taps on the k={k} fat-tree ({}ms, best of {reps})\",",
        duration.as_nanos() / 1_000_000
    );
    println!("  \"tappable_ports\": {all},");
    println!(
        "  \"pending_budget\": {},",
        base.base.plane_budget.expect("fleet sets one")
    );
    println!("  \"delivered\": {},", head.delivered);
    println!("  \"events\": {},", head.events);
    println!("  \"baseline_wall_ms\": {:.3},", baseline_ns as f64 / 1e6);
    println!("  \"byte_identical\": true,");
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"taps\": {}, \"wall_ms\": {:.3}, \"per_tap_layout_wall_ms\": {:.3}, \
             \"overhead_vs_baseline\": {:.3}, \"metered\": {}, \"estimated\": {}, \"shed\": {}, \
             \"peak_pending_total\": {}, \"state_bytes\": {}, \"per_tap_layout_state_bytes\": {} }}{comma}",
            p.taps,
            p.shared_ns as f64 / 1e6,
            p.per_tap_ns as f64 / 1e6,
            p.shared_ns as f64 / baseline_ns as f64 - 1.0,
            p.shared.metered,
            p.shared.estimated,
            p.shared.shed,
            p.shared.peak_pending_total,
            p.shared.peak_state_bytes,
            p.per_tap.peak_state_bytes,
        );
    }
    println!("  ]");
    println!("}}");
}
