//! Pod-sharded engine wall-clock vs shard count on the k=8 fat-tree.
//!
//! Runs the `fattree` experiment workload (measured + background traffic
//! from the experiment's own generators, boosted by duration so the event
//! count is ~10× the scenario's quick scale) through
//! [`run_network_sharded`] at shards ∈ {1, 2, 4} and reports best-of-N
//! wall-clock, events/sec, safe-horizon window count and stall count per
//! shard point as JSON on stdout; `scripts/shard_bench.sh` captures it
//! into `BENCH_shard.json`. An order-*sensitive* digest of the merged
//! hop/watermark/delivery stream asserts in-run that every shard count
//! reproduced the 1-shard stream byte for byte — the property
//! `tests/shard_determinism.rs` proves under proptest, re-checked here on
//! the exact workload being timed.
//!
//! On one vCPU the expected result is honest overhead, not speedup: the
//! windowed merge and per-shard bookkeeping cost something, and the
//! barrier-stepped workers only pay off with real cores. The stall count
//! says how often a shard hit the safe horizon with work still pending —
//! the quantity that bounds multi-core scaling.
//!
//! Knobs: `RLIR_SHARDBENCH_MS` (trace duration, default 40),
//! `RLIR_SHARDBENCH_REPS` (best-of, default 3), `RLIR_SHARDBENCH_K`
//! (fat-tree arity, default 8).

use rlir::experiment::{background_injections, measured_traces, FatTreeExpConfig};
use rlir::fabric::{build_network, FatTreeFabric};
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_sim::{
    run_network_sharded, HopEvent, HopSink, RunOptions, ShardPlan, ShardRunStats, StreamedDelivery,
};
use rlir_topo::{FatTree, TopoId};
use std::time::Instant;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

/// Order-sensitive stream digest: position matters, so any reordering —
/// not just a changed multiset — breaks equality.
#[derive(Default)]
struct Digest {
    h: u64,
    hops: u64,
}

impl HopSink for Digest {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.hops += 1;
        self.h = mix(self.h, ev.at.as_nanos() ^ (ev.node as u64).rotate_left(48));
        self.h = mix(
            self.h,
            ev.packet.id.0 ^ (ev.hops.len() as u64).rotate_left(32),
        );
    }
    fn on_watermark(&mut self, watermark: SimTime) {
        self.h = mix(self.h, 0xABCD ^ watermark.as_nanos());
    }
}

struct Point {
    shards: usize,
    effective_shards: usize,
    best_ns: u128,
    events_per_sec: f64,
    windows: u64,
    shard_stalls: u64,
    digest: u64,
    stats: ShardRunStats,
}

fn main() {
    let duration = SimDuration::from_millis(env_u64("RLIR_SHARDBENCH_MS", 40));
    let reps = env_u64("RLIR_SHARDBENCH_REPS", 3).max(1);
    let k = env_u64("RLIR_SHARDBENCH_K", 8) as usize;

    // The `fattree` scenario's workload at k=8: ~4× the switches and the
    // boosted duration gives roughly 10× the quick-scale injected count.
    let mut cfg = FatTreeExpConfig::paper(0x5AD_BE5C, duration);
    cfg.k = k;
    let tree = FatTree::new(cfg.k, cfg.hash);
    let fabric = FatTreeFabric::new(&tree, false);
    let mut injections: Vec<(TopoId, Packet)> = Vec::new();
    for (src, trace) in measured_traces(&cfg, &tree) {
        injections.extend(trace.packets.iter().map(|p| (src, *p)));
    }
    injections.extend(background_injections(&cfg, &tree));
    let plan = ShardPlan::new(tree.pod_partition());

    let mut points: Vec<Point> = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut best_ns = u128::MAX;
        let mut kept: Option<(u64, ShardRunStats)> = None;
        for _ in 0..reps {
            let net = build_network(&tree, cfg.queue, cfg.link_delay, &[]);
            let inj = injections.clone();
            let mut sink = Digest::default();
            let start = Instant::now();
            let out = run_network_sharded(
                net,
                &fabric,
                inj,
                &mut sink,
                RunOptions::default(),
                &plan,
                shards,
                |_d: &StreamedDelivery<'_>| {},
            );
            best_ns = best_ns.min(start.elapsed().as_nanos());
            assert!(sink.hops > 0, "workload produced no events");
            kept = Some((sink.h, out));
        }
        let (digest, stats) = kept.expect("reps >= 1");
        points.push(Point {
            shards,
            effective_shards: stats.shards,
            best_ns,
            events_per_sec: stats.stats.events as f64 / (best_ns as f64 / 1e9),
            windows: stats.windows,
            shard_stalls: stats.shard_stalls,
            digest,
            stats,
        });
    }

    // In-run byte-identity: every shard count against the 1-shard stream.
    let base = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.digest, base.digest,
            "{}-shard stream diverged from 1-shard — tests/shard_determinism.rs \
             should have caught this",
            p.shards
        );
        assert_eq!(p.stats.stats.events, base.stats.stats.events);
        assert_eq!(p.stats.stats.delivered, base.stats.stats.delivered);
        assert_eq!(
            p.windows, base.windows,
            "window schedule must be N-invariant"
        );
    }

    println!("{{");
    println!(
        "  \"bench\": \"pod-sharded engine: shards 1/2/4 on the k={k} fat-tree ({}ms, best of {reps})\",",
        duration.as_nanos() / 1_000_000
    );
    println!("  \"injected_packets\": {},", injections.len());
    println!("  \"events\": {},", base.stats.stats.events);
    println!("  \"deliveries\": {},", base.stats.stats.delivered);
    println!("  \"windows\": {},", base.windows);
    println!("  \"byte_identical\": true,");
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"shards\": {}, \"effective_shards\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.0}, \"shard_stalls\": {} }}{comma}",
            p.shards,
            p.effective_shards,
            p.best_ns as f64 / 1e6,
            p.events_per_sec,
            p.shard_stalls
        );
    }
    println!("  ]");
    println!("}}");
}
