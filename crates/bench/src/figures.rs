//! Runners for every table and figure in the paper's evaluation, plus the
//! repo's ablation studies (see DESIGN.md §4 for the index).

use crate::scale::Scale;
use rlir::experiment::{
    run_fattree, run_fattree_sweep, run_loss_sweep_on, run_two_hop_on, run_two_hop_sweep,
    CoreAnomaly, CrossSpec, FatTreeExpConfig, FatTreeSweep, LossSweepConfig, TwoHopConfig,
    TwoHopOutcome, TwoHopPoint, TwoHopSweep,
};
use rlir::localization::{localize, LocalizerConfig};
use rlir::CoreDemux;
use rlir_baselines::{
    estimate_all, trajectory_join, Lda, LdaConfig, TrajectoryConfig, TrajectoryPoint,
};
use rlir_exec::SweepRunner;
use rlir_net::clock::{ClockModel, ClockPair};
use rlir_net::fxhash::FxHashMap;
use rlir_net::time::SimDuration;
use rlir_net::FlowKey;
use rlir_rli::{Interpolator, PolicyKind};
use rlir_stats::Ecdf;
use rlir_trace::{generate, FlowMeter, FlowMeterConfig, Trace};
use serde::{Deserialize, Serialize};

/// One curve of an accuracy CDF figure (4a/4b/4c).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyCurve {
    /// Legend label, e.g. `"Adaptive, 93%"`.
    pub label: String,
    /// Target bottleneck utilization.
    pub target_utilization: f64,
    /// Realised bottleneck utilization.
    pub utilization: f64,
    /// Mean of per-flow true mean delays, µs (paper: 3.0 µs @67%, 83 µs
    /// @93% random; 117 µs @67% bursty).
    pub avg_true_delay_us: f64,
    /// Median per-flow relative error.
    pub median_error: f64,
    /// Fraction of flows with relative error below 10%.
    pub frac_below_10pct: f64,
    /// Flows contributing to the CDF.
    pub flows: usize,
    /// The raw error samples (CDF input).
    pub errors: Vec<f64>,
    /// The run's per-epoch latency series (see `TwoHopOutcome::epochs`).
    pub epochs: Vec<rlir_rli::EpochSnapshot>,
}

impl AccuracyCurve {
    fn from_errors(label: String, target: f64, out: &TwoHopOutcome, errors: Vec<f64>) -> Self {
        let e = Ecdf::new(errors.iter().copied().filter(|x| x.is_finite()).collect());
        AccuracyCurve {
            label,
            target_utilization: target,
            utilization: out.utilization,
            avg_true_delay_us: out.avg_true_delay_ns / 1e3,
            median_error: e.median().unwrap_or(f64::NAN),
            frac_below_10pct: e.fraction_at_or_below(0.10),
            flows: e.len(),
            errors: e.samples().to_vec(),
            epochs: out.epochs.clone(),
        }
    }

    /// Downsampled CDF series for the CSV.
    pub fn cdf_csv(&self) -> String {
        Ecdf::new(self.errors.clone()).series(400).to_csv()
    }

    /// One summary line, paper style.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} util {:>5.1}% | avg true delay {:>8.1} µs | median err {:>6.2}% | <10% err: {:>5.1}% of {} flows",
            self.label,
            self.utilization * 100.0,
            self.avg_true_delay_us,
            self.median_error * 100.0,
            self.frac_below_10pct * 100.0,
            self.flows
        )
    }
}

fn paper_policies() -> [(&'static str, PolicyKind); 2] {
    [
        (
            "Adaptive",
            PolicyKind::Adaptive(rlir_rli::AdaptiveConfig::paper_default()),
        ),
        ("Static", PolicyKind::Static { n: 100 }),
    ]
}

/// Shared base traces for a scale (regenerated deterministically).
pub fn base_traces(scale: &Scale, duration: SimDuration) -> (Trace, Trace) {
    let cfg = TwoHopConfig::paper(scale.base_seed, duration);
    (generate(&cfg.regular_trace()), generate(&cfg.cross_trace()))
}

/// The grid point every accuracy figure builds on.
fn accuracy_point(
    scale: &Scale,
    label: String,
    target: f64,
    policy: PolicyKind,
    cross_spec: CrossSpec,
    cross: usize,
) -> TwoHopPoint {
    let mut cfg = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration);
    cfg.policy = policy;
    cfg.cross = cross_spec;
    TwoHopPoint {
        label,
        target,
        cfg,
        cross,
    }
}

/// Figures 4(a) and 4(b): {Adaptive, Static} × {67%, 93%} under the random
/// cross-traffic model. Returns the four outcomes with labels; 4(a) reads
/// `mean_errors`, 4(b) reads `std_errors` from the same runs.
pub fn fig4_runs(scale: &Scale, runner: &SweepRunner) -> Vec<(String, f64, TwoHopOutcome)> {
    let (regular, cross) = base_traces(scale, scale.accuracy_duration);
    let points: Vec<TwoHopPoint> = paper_policies()
        .into_iter()
        .flat_map(|(name, policy)| {
            [0.93f64, 0.67].map(|u| {
                accuracy_point(
                    scale,
                    format!("{name}, {:.0}%", u * 100.0),
                    u,
                    policy.clone(),
                    CrossSpec::Uniform {
                        target_utilization: u,
                    },
                    0,
                )
            })
        })
        .collect();
    let sweep = TwoHopSweep {
        seed: scale.base_seed,
        points,
        regular: &regular,
        crosses: vec![&cross],
    };
    let mut v = run_two_hop_sweep(&sweep, runner);
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Figure 4(a): CDFs of per-flow *mean* relative error.
pub fn fig4a(scale: &Scale, runner: &SweepRunner) -> Vec<AccuracyCurve> {
    fig4_runs(scale, runner)
        .into_iter()
        .map(|(label, target, out)| {
            let errors = out.mean_errors.clone();
            AccuracyCurve::from_errors(label, target, &out, errors)
        })
        .collect()
}

/// Figure 4(b): CDFs of per-flow *standard deviation* relative error.
pub fn fig4b(scale: &Scale, runner: &SweepRunner) -> Vec<AccuracyCurve> {
    fig4_runs(scale, runner)
        .into_iter()
        .map(|(label, target, out)| {
            let errors = out.std_errors.clone();
            AccuracyCurve::from_errors(label, target, &out, errors)
        })
        .collect()
}

/// Burst shape used for Fig. 4(c): 10 s bursts in the paper's 60 s trace;
/// scaled to 1/6 of the trace duration here, 50% duty cycle.
fn burst_shape(duration: SimDuration) -> (SimDuration, SimDuration) {
    let on = SimDuration::from_nanos((duration.as_nanos() / 6).max(1_000_000));
    (on, on)
}

/// Figure 4(c): mean-error CDFs comparing bursty vs random cross traffic at
/// 34% and 67% utilization (adaptive injection, as in the paper's §4.2
/// which contrasts the models at matched utilization).
///
/// The bursty runs draw from a *hotter* base cross trace (≈105% of link
/// rate) so that on-periods genuinely overload the bottleneck — the regime
/// behind the paper's 117 µs average at 67% — while the off-periods drain
/// it; the long-run average still meets the utilization target.
pub fn fig4c(scale: &Scale, runner: &SweepRunner) -> Vec<AccuracyCurve> {
    let (regular, cross) = base_traces(scale, scale.accuracy_duration);
    let cross_hot = {
        let mut tc = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration).cross_trace();
        tc.target_utilization = 1.05;
        generate(&tc)
    };
    let (on, off) = burst_shape(scale.accuracy_duration);
    let points: Vec<TwoHopPoint> = [0.67f64, 0.34]
        .into_iter()
        .flat_map(|u| {
            let policy = PolicyKind::Adaptive(rlir_rli::AdaptiveConfig::paper_default());
            [
                accuracy_point(
                    scale,
                    format!("Bursty, {:.0}%", u * 100.0),
                    u,
                    policy.clone(),
                    CrossSpec::Bursty {
                        target_utilization: u,
                        on,
                        off,
                    },
                    1, // the hotter cross trace: on-periods genuinely overload
                ),
                accuracy_point(
                    scale,
                    format!("Random, {:.0}%", u * 100.0),
                    u,
                    policy,
                    CrossSpec::Uniform {
                        target_utilization: u,
                    },
                    0,
                ),
            ]
        })
        .collect();
    let sweep = TwoHopSweep {
        seed: scale.base_seed,
        points,
        regular: &regular,
        crosses: vec![&cross, &cross_hot],
    };
    let mut v: Vec<AccuracyCurve> = run_two_hop_sweep(&sweep, runner)
        .into_iter()
        .map(|(label, target, out)| {
            let errors = out.mean_errors.clone();
            AccuracyCurve::from_errors(label, target, &out, errors)
        })
        .collect();
    v.sort_by(|a, b| a.label.cmp(&b.label));
    v
}

/// One Fig. 5 series point, averaged over seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Policy label.
    pub policy: String,
    /// Target utilization.
    pub target: f64,
    /// Mean realised utilization.
    pub utilization: f64,
    /// Mean loss-rate difference (with refs − without refs).
    pub loss_difference: f64,
    /// Mean loss rate without references (context).
    pub base_loss: f64,
}

/// The Fig. 5 interference setup shared by [`fig5`] and the registry's
/// `loss_sweep` scenario: a paper two-hop base with the given policy, plus
/// its pre-generated regular and cross traces.
///
/// The cross trace is generated at ≈90% of link rate (hotter than the
/// paper's 71% base) so that keep-probability calibration can reach the
/// 0.94–0.98 utilization points without saturating.
pub fn interference_base(
    policy: PolicyKind,
    seed: u64,
    duration: SimDuration,
) -> (TwoHopConfig, Trace, Trace) {
    let base = TwoHopConfig {
        policy,
        ..TwoHopConfig::paper(seed, duration)
    };
    let regular = generate(&base.regular_trace());
    let cross = {
        let mut tc = base.cross_trace();
        tc.target_utilization = 0.90;
        generate(&tc)
    };
    (base, regular, cross)
}

/// Figure 5: reference-packet interference sweep for both policies.
///
/// See [`interference_base`] for the cross-trace calibration rationale.
pub fn fig5(scale: &Scale, runner: &SweepRunner) -> Vec<Fig5Point> {
    let targets = LossSweepConfig::paper_targets();
    let mut out = Vec::new();
    for (name, policy) in paper_policies() {
        // Accumulate across seeds.
        let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); targets.len()];
        for s in 0..scale.seeds {
            let (base, regular, cross) = interference_base(
                policy.clone(),
                scale.base_seed + s,
                scale.interference_duration,
            );
            let sweep = LossSweepConfig {
                base,
                targets: targets.clone(),
            };
            for (i, p) in run_loss_sweep_on(&sweep, &regular, &cross, runner)
                .iter()
                .enumerate()
            {
                acc[i].0 += p.utilization;
                acc[i].1 += p.loss_difference();
                acc[i].2 += p.loss_without_refs;
            }
        }
        let n = scale.seeds as f64;
        for (i, &target) in targets.iter().enumerate() {
            out.push(Fig5Point {
                policy: name.to_string(),
                target,
                utilization: acc[i].0 / n,
                loss_difference: acc[i].1 / n,
                base_loss: acc[i].2 / n,
            });
        }
    }
    out
}

/// Demux-ablation row (experiments A1/A3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemuxRow {
    /// Strategy label.
    pub mode: String,
    /// Fraction of measured packets associated with the correct core.
    pub accuracy: f64,
    /// Median per-flow error on segment 1.
    pub seg1_median_error: f64,
    /// Median per-flow error on segment 2.
    pub seg2_median_error: f64,
    /// Per-packet estimates produced on segment 2.
    pub seg2_estimates: u64,
    /// Observations arriving after their reorder window flushed, all taps.
    pub late: u64,
    /// Regular observations shed by tap buffer caps / the plane budget.
    pub shed: u64,
    /// Highest per-tap buffered-observation high-water mark.
    pub peak_pending: usize,
    /// Segment-2 per-epoch series (merged across receivers).
    pub seg2_epochs: Vec<rlir_rli::EpochSnapshot>,
}

/// The demultiplexing ablation on the fat-tree: naive vs marking vs
/// reverse-ECMP, identical workload.
///
/// One core carries a 150 µs processing fault so that equal-cost paths have
/// genuinely different delays — the regime in which association matters
/// ("the delay of a reference packet that traverses one path may have no
/// correlation with the delay of a packet that traverses a different path",
/// §1). With homogeneous paths even the naive receiver looks fine, which is
/// precisely why the paper's warning is about multipath *divergence*.
pub fn demux_ablation(scale: &Scale, runner: &SweepRunner) -> Vec<DemuxRow> {
    let points = [CoreDemux::Naive, CoreDemux::Marking, CoreDemux::ReverseEcmp]
        .into_iter()
        .map(|mode| {
            let mut cfg = FatTreeExpConfig::paper(scale.base_seed, scale.fattree_duration);
            cfg.shards = scale.shards;
            cfg.demux = mode;
            cfg.anomaly = Some(CoreAnomaly {
                core_ordinal: 0,
                extra_processing: SimDuration::from_micros(150),
            });
            (mode.label().to_string(), cfg)
        })
        .collect();
    let sweep = FatTreeSweep {
        seed: scale.base_seed,
        points,
    };
    run_fattree_sweep(&sweep, runner)
        .into_iter()
        .map(|(mode, out)| {
            let med = |v: &[f64]| {
                let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
                Ecdf::new(finite).median().unwrap_or(f64::NAN)
            };
            DemuxRow {
                mode,
                accuracy: out.demux_accuracy(),
                seg1_median_error: med(&out.seg1_errors),
                seg2_median_error: med(&out.seg2_errors),
                seg2_estimates: out.seg2_flows.estimate_count(),
                late: out.late,
                shed: out.shed,
                peak_pending: out.peak_pending,
                seg2_epochs: out.seg2_epochs,
            }
        })
        .collect()
}

/// Interpolator-ablation row (experiment A2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterpRow {
    /// Estimator label.
    pub interpolator: String,
    /// Median per-flow mean-error.
    pub median_error: f64,
    /// 90th percentile error.
    pub p90_error: f64,
}

/// Interpolation-estimator ablation at 93% utilization (static 1-and-100).
pub fn interp_ablation(scale: &Scale, runner: &SweepRunner) -> Vec<InterpRow> {
    let (regular, cross) = base_traces(scale, scale.accuracy_duration);
    let points = Interpolator::all()
        .into_iter()
        .map(|interp| {
            let mut cfg = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration);
            cfg.interpolator = interp;
            TwoHopPoint::new(interp.label(), 0.93, cfg)
        })
        .collect();
    let sweep = TwoHopSweep {
        seed: scale.base_seed,
        points,
        regular: &regular,
        crosses: vec![&cross],
    };
    run_two_hop_sweep(&sweep, runner)
        .into_iter()
        .map(|(label, _, out)| {
            let e = Ecdf::new(
                out.mean_errors
                    .iter()
                    .copied()
                    .filter(|x| x.is_finite())
                    .collect(),
            );
            InterpRow {
                interpolator: label,
                median_error: e.median().unwrap_or(f64::NAN),
                p90_error: e.quantile(0.9).unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Clock-sync-sensitivity row (experiment A4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncRow {
    /// Clock scenario label.
    pub scenario: String,
    /// Median per-flow mean-error.
    pub median_error: f64,
    /// Mean absolute per-flow mean-error in ns (absolute errors matter when
    /// skew biases everything).
    pub mean_abs_error_ns: f64,
}

/// Clock-synchronisation-error sensitivity at 93% utilization.
pub fn sync_ablation(scale: &Scale, runner: &SweepRunner) -> Vec<SyncRow> {
    let (regular, cross) = base_traces(scale, scale.accuracy_duration);
    let scenarios: Vec<(&str, ClockPair)> = vec![
        ("perfect", ClockPair::perfect()),
        (
            "ptp (200ns offset, 50ns jitter)",
            ClockPair {
                sender: ClockModel::perfect(),
                receiver: ClockModel::ptp(scale.base_seed),
            },
        ),
        (
            "1µs receiver offset",
            ClockPair {
                sender: ClockModel::perfect(),
                receiver: ClockModel::with_offset(1_000),
            },
        ),
        (
            "10µs receiver offset",
            ClockPair {
                sender: ClockModel::perfect(),
                receiver: ClockModel::with_offset(10_000),
            },
        ),
    ];
    let points = scenarios
        .into_iter()
        .map(|(name, clocks)| {
            let mut cfg = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration);
            cfg.clocks = clocks;
            TwoHopPoint::new(name, 0.93, cfg)
        })
        .collect();
    let sweep = TwoHopSweep {
        seed: scale.base_seed,
        points,
        regular: &regular,
        crosses: vec![&cross],
    };
    run_two_hop_sweep(&sweep, runner)
        .into_iter()
        .map(|(name, _, out)| {
            let e = Ecdf::new(
                out.mean_errors
                    .iter()
                    .copied()
                    .filter(|x| x.is_finite())
                    .collect(),
            );
            // Mean absolute error from per-flow report rows.
            let rows = out.flows.report(1);
            let mut abs = rlir_stats::StreamingStats::new();
            for r in &rows {
                if let Some(t) = r.true_mean {
                    abs.push((r.est_mean - t).abs());
                }
            }
            SyncRow {
                scenario: name,
                median_error: e.median().unwrap_or(f64::NAN),
                mean_abs_error_ns: abs.mean().unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Baseline-comparison row (experiment A6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineRow {
    /// Estimator label.
    pub estimator: String,
    /// Median per-flow relative error (`NaN` for aggregate-only LDA).
    pub per_flow_median_error: f64,
    /// Relative error of the *aggregate* mean-latency estimate.
    pub aggregate_error: f64,
    /// Flows the estimator could cover (0 for LDA).
    pub flows_covered: usize,
}

/// RLI vs LDA vs Multiflow on an identical 93%-utilization tandem run.
pub fn baselines_comparison(scale: &Scale) -> Vec<BaselineRow> {
    let mut cfg = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration);
    cfg.tandem.record_cross = false;
    let regular = generate(&cfg.regular_trace());
    let cross = generate(&cfg.cross_trace());

    // RLI run (gives per-flow estimates AND the ground-truth deliveries we
    // replay through the baselines).
    let out = run_two_hop_on(&cfg, &regular, &cross);

    // The baselines need per-packet delivery times, which the two-hop
    // harness does not expose, so re-run the tandem directly (without
    // references — LDA and Multiflow measure the undisturbed path) using the
    // same calibration as the harness.
    let sim_cfg = cfg.clone();
    let regular_util = regular.offered_utilization();
    let cross_util = cross.offered_utilization();
    let keep_prob = rlir_sim::calibrate_keep_prob(0.93, regular_util, cross_util, 1.0);
    let mut injector = rlir_sim::CrossInjector::new(
        rlir_sim::CrossModel::Uniform { keep_prob },
        sim_cfg.seed ^ 0xC505_11EC,
    );
    let cross_packets: Vec<rlir_net::Packet> = cross
        .packets
        .iter()
        .copied()
        .filter(|p| injector.select(p))
        .collect();
    let result = rlir_sim::run_tandem(
        &sim_cfg.tandem,
        regular.packets.iter().copied(),
        cross_packets.into_iter(),
    );

    // Ground truth per flow and aggregate.
    let mut truth_by_flow: FxHashMap<FlowKey, rlir_stats::StreamingStats> = FxHashMap::default();
    let mut truth_all = rlir_stats::StreamingStats::new();
    for d in &result.deliveries {
        let ns = d.true_delay().as_nanos() as f64;
        truth_by_flow.entry(d.packet.flow).or_default().push(ns);
        truth_all.push(ns);
    }
    let true_aggregate = truth_all.mean().unwrap_or(f64::NAN);

    // --- LDA -------------------------------------------------------------
    let lda_cfg = LdaConfig::default();
    let (mut tx, mut rx) = (Lda::new(lda_cfg), Lda::new(lda_cfg));
    for p in &regular.packets {
        tx.record(p.id.0, p.created_at);
    }
    for d in &result.deliveries {
        if d.packet.is_regular() {
            rx.record(d.packet.id.0, d.delivered_at);
        }
    }
    let lda_est = Lda::estimate(&tx, &rx);
    let lda_err = lda_est
        .map(|e| rlir_stats::relative_error(e.mean_delay_ns, true_aggregate))
        .unwrap_or(f64::NAN);

    // --- Multiflow ---------------------------------------------------------
    let mut up = FlowMeter::new(FlowMeterConfig::default());
    let mut down = FlowMeter::new(FlowMeterConfig::default());
    for p in &regular.packets {
        up.observe(p);
    }
    for d in &result.deliveries {
        if d.packet.is_regular() {
            down.observe_at(d.packet.flow, d.delivered_at, d.packet.size);
        }
    }
    let mf = estimate_all(&up.finish(), &down.finish());
    let mf_errors: Vec<f64> = mf
        .iter()
        .filter_map(|e| {
            truth_by_flow
                .get(&e.flow)
                .and_then(|s| s.mean())
                .map(|t| rlir_stats::relative_error(e.mean_delay_ns, t))
        })
        .filter(|x| x.is_finite())
        .collect();
    let mf_median = Ecdf::new(mf_errors.clone()).median().unwrap_or(f64::NAN);
    let mf_agg: f64 = {
        let mut s = rlir_stats::StreamingStats::new();
        for e in &mf {
            s.push(e.mean_delay_ns);
        }
        s.mean()
            .map(|m| rlir_stats::relative_error(m, true_aggregate))
            .unwrap_or(f64::NAN)
    };

    // --- RLI ---------------------------------------------------------------
    let rli_errors: Vec<f64> = out
        .mean_errors
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    let rli_median = Ecdf::new(rli_errors).median().unwrap_or(f64::NAN);
    let rli_agg = {
        let est = out.flows.aggregate_est_mean().unwrap_or(f64::NAN);
        let truth = out.flows.aggregate_true_mean().unwrap_or(f64::NAN);
        rlir_stats::relative_error(est, truth)
    };

    // --- Trajectory sampling (1%) -----------------------------------------
    let tcfg = TrajectoryConfig::one_percent(scale.base_seed);
    let mut t_up = TrajectoryPoint::new(tcfg);
    let mut t_down = TrajectoryPoint::new(tcfg);
    for p in &regular.packets {
        t_up.observe(p.id.0, p.flow, p.created_at);
    }
    for d in &result.deliveries {
        if d.packet.is_regular() {
            t_down.observe(d.packet.id.0, d.packet.flow, d.delivered_at);
        }
    }
    let tj = trajectory_join(&t_up, &t_down);
    let traj_errors: Vec<f64> = tj
        .flows
        .iter()
        .filter_map(|f| {
            let est = f.delays.mean()?;
            let t = truth_by_flow.get(&f.flow).and_then(|s| s.mean())?;
            let e = rlir_stats::relative_error(est, t);
            e.is_finite().then_some(e)
        })
        .collect();
    let traj_median = Ecdf::new(traj_errors).median().unwrap_or(f64::NAN);
    let traj_agg = tj
        .aggregate
        .mean()
        .map(|m| rlir_stats::relative_error(m, true_aggregate))
        .unwrap_or(f64::NAN);

    vec![
        BaselineRow {
            estimator: "RLI (this paper's substrate)".into(),
            per_flow_median_error: rli_median,
            aggregate_error: rli_agg,
            flows_covered: out.flows.flow_count(),
        },
        BaselineRow {
            estimator: "LDA (aggregate only)".into(),
            per_flow_median_error: f64::NAN,
            aggregate_error: lda_err,
            flows_covered: 0,
        },
        BaselineRow {
            estimator: "Multiflow (NetFlow 2-sample)".into(),
            per_flow_median_error: mf_median,
            aggregate_error: mf_agg,
            flows_covered: mf.len(),
        },
        BaselineRow {
            estimator: "Trajectory sampling (1%)".into(),
            per_flow_median_error: traj_median,
            aggregate_error: traj_agg,
            flows_covered: tj.flows.len(),
        },
    ]
}

/// Per-flow tail-quantile (p90) accuracy row (experiment A7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileRow {
    /// Policy label.
    pub policy: String,
    /// The tracked quantile.
    pub p: f64,
    /// Median per-flow relative error of the quantile estimate.
    pub median_error: f64,
    /// Flows with a quantile estimate.
    pub flows: usize,
    /// Median per-flow relative error of the *mean* estimate on the same
    /// run (for contrast).
    pub mean_median_error: f64,
}

/// A7: per-flow p90 tail-latency accuracy at 93% utilization — the RLI line
/// of work's extension beyond means and standard deviations, using P²
/// streaming quantile trackers (O(1) memory per flow).
pub fn quantile_accuracy(scale: &Scale, runner: &SweepRunner) -> Vec<QuantileRow> {
    let (regular, cross) = base_traces(scale, scale.accuracy_duration);
    let points = paper_policies()
        .into_iter()
        .map(|(name, policy)| {
            let mut cfg = TwoHopConfig::paper(scale.base_seed, scale.accuracy_duration);
            cfg.policy = policy;
            cfg.track_quantile = Some(0.9);
            TwoHopPoint::new(name, 0.93, cfg)
        })
        .collect();
    let sweep = TwoHopSweep {
        seed: scale.base_seed,
        points,
        regular: &regular,
        crosses: vec![&cross],
    };
    run_two_hop_sweep(&sweep, runner)
        .into_iter()
        .map(|(name, _, out)| {
            let finite =
                |v: &[f64]| -> Vec<f64> { v.iter().copied().filter(|x| x.is_finite()).collect() };
            QuantileRow {
                policy: name,
                p: 0.9,
                median_error: Ecdf::new(finite(&out.quantile_errors))
                    .median()
                    .unwrap_or(f64::NAN),
                flows: out.quantile_errors.len(),
                mean_median_error: Ecdf::new(finite(&out.mean_errors))
                    .median()
                    .unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Localization-demo output (experiment A5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizeOutcome {
    /// Name of the faulty core injected.
    pub injected: String,
    /// Names of segments flagged, best first.
    pub flagged: Vec<String>,
    /// Whether the top finding matches the injected fault.
    pub correct: bool,
    /// All segment observations (name, est µs, true µs).
    pub segments: Vec<(String, f64, f64)>,
}

/// Inject a 400 µs processing fault at one core and ask the localizer.
pub fn localization_demo(scale: &Scale) -> LocalizeOutcome {
    let mut cfg = FatTreeExpConfig::paper(scale.base_seed, scale.fattree_duration);
    cfg.anomaly = Some(CoreAnomaly {
        core_ordinal: 1,
        extra_processing: SimDuration::from_micros(400),
    });
    let out = run_fattree(&cfg);
    let tree = rlir_topo::FatTree::new(cfg.k, cfg.hash);
    let injected = tree
        .node(tree.cores().nth(1).expect("core 1 exists"))
        .name
        .clone();
    let findings = localize(&out.segments, &LocalizerConfig::default());
    let flagged: Vec<String> = findings.iter().map(|f| f.name.clone()).collect();
    let correct = flagged
        .first()
        .map(|n| n.starts_with(&injected))
        .unwrap_or(false);
    LocalizeOutcome {
        injected,
        flagged,
        correct,
        segments: out
            .segments
            .iter()
            .map(|s| (s.name.clone(), s.est_mean_ns / 1e3, s.true_mean_ns / 1e3))
            .collect(),
    }
}

/// The §3.1 placement table for a range of arities.
pub fn placement_rows() -> Vec<rlir_topo::PlacementRow> {
    rlir_topo::placement_table(&[4, 6, 8, 16, 32, 48, 64])
}

/// Paper-vs-measured shape checks used by `experiments all` to print the
/// verdicts recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// What is being checked.
    pub claim: String,
    /// Did the measured data satisfy it?
    pub holds: bool,
    /// Supporting detail.
    pub detail: String,
}

/// Evaluate the headline shape claims on Fig. 4(a) curves.
pub fn fig4a_shape_checks(curves: &[AccuracyCurve]) -> Vec<ShapeCheck> {
    let get = |label: &str| curves.iter().find(|c| c.label == label);
    let mut checks = Vec::new();
    if let (Some(a93), Some(a67), Some(s93), Some(s67)) = (
        get("Adaptive, 93%"),
        get("Adaptive, 67%"),
        get("Static, 93%"),
        get("Static, 67%"),
    ) {
        checks.push(ShapeCheck {
            claim: "accuracy improves with utilization (median err 93% < 67%), both schemes".into(),
            holds: a93.median_error < a67.median_error && s93.median_error < s67.median_error,
            detail: format!(
                "adaptive {:.1}% < {:.1}%; static {:.1}% < {:.1}%",
                a93.median_error * 100.0,
                a67.median_error * 100.0,
                s93.median_error * 100.0,
                s67.median_error * 100.0
            ),
        });
        checks.push(ShapeCheck {
            claim: "adaptive (1-and-10) beats static (1-and-100) at equal utilization".into(),
            holds: a93.median_error <= s93.median_error && a67.median_error <= s67.median_error,
            detail: format!(
                "at 93%: {:.2}% vs {:.2}%; at 67%: {:.2}% vs {:.2}%",
                a93.median_error * 100.0,
                s93.median_error * 100.0,
                a67.median_error * 100.0,
                s67.median_error * 100.0
            ),
        });
        checks.push(ShapeCheck {
            claim: "true delay grows strongly 67% → 93% (paper: 3 µs → 83 µs)".into(),
            holds: s93.avg_true_delay_us > 5.0 * s67.avg_true_delay_us,
            detail: format!(
                "{:.1} µs → {:.1} µs",
                s67.avg_true_delay_us, s93.avg_true_delay_us
            ),
        });
    }
    checks
}

/// Evaluate the shape claims on Fig. 4(c) curves.
pub fn fig4c_shape_checks(curves: &[AccuracyCurve]) -> Vec<ShapeCheck> {
    let get = |label: &str| curves.iter().find(|c| c.label == label);
    let mut checks = Vec::new();
    if let (Some(b67), Some(r67)) = (get("Bursty, 67%"), get("Random, 67%")) {
        checks.push(ShapeCheck {
            claim: "bursty cross traffic is easier to track than random at 67% (paper: ~1% vs ~10% median)".into(),
            holds: b67.median_error < r67.median_error,
            detail: format!(
                "bursty {:.2}% vs random {:.2}%",
                b67.median_error * 100.0,
                r67.median_error * 100.0
            ),
        });
        checks.push(ShapeCheck {
            claim: "bursty true delay ≫ random at equal utilization (paper: 117 µs vs 3 µs)".into(),
            holds: b67.avg_true_delay_us > 3.0 * r67.avg_true_delay_us,
            detail: format!(
                "{:.1} µs vs {:.1} µs",
                b67.avg_true_delay_us, r67.avg_true_delay_us
            ),
        });
    }
    checks
}

/// Evaluate the shape claims on Fig. 5 points.
pub fn fig5_shape_checks(points: &[Fig5Point]) -> Vec<ShapeCheck> {
    let max_of = |policy: &str| {
        points
            .iter()
            .filter(|p| p.policy == policy)
            .map(|p| p.loss_difference)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let s = max_of("Static");
    let a = max_of("Adaptive");
    vec![
        ShapeCheck {
            claim: "static perturbs less than adaptive (paper: ≤0.0042% vs up to 0.06%)".into(),
            holds: s <= a,
            detail: format!(
                "max diff static {:.4}% vs adaptive {:.4}%",
                s * 100.0,
                a * 100.0
            ),
        },
        ShapeCheck {
            claim: "interference stays small in absolute terms (<0.2% everywhere)".into(),
            holds: points.iter().all(|p| p.loss_difference.abs() < 0.002),
            detail: format!(
                "max |diff| {:.4}%",
                points
                    .iter()
                    .map(|p| p.loss_difference.abs())
                    .fold(0.0, f64::max)
                    * 100.0
            ),
        },
    ]
}
