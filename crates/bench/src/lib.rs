//! # rlir-bench — figure regeneration harness
//!
//! Shared machinery between the `experiments` binary (which regenerates
//! every table and figure of the paper's evaluation as CSV + terminal
//! summaries) and the Criterion benchmarks. Each `fig*` function runs the
//! corresponding experiment at a configurable scale and returns structured
//! rows; the `output` helpers persist them under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod figures;
pub mod output;
pub mod registry;
pub mod scale;

pub use emit::*;
pub use figures::*;
pub use output::{write_csv, OutputDir};
pub use registry::{build_registry, RunContext};
pub use scale::Scale;
