//! # rlir-stats — measurement statistics
//!
//! Statistical building blocks for the RLIR reproduction:
//!
//! * [`streaming`] — Welford mean/variance accumulators (per-flow latency
//!   stats, Figs. 4a/4b of the paper).
//! * [`cdf`] — empirical CDFs and the downsampled step series written to the
//!   figure CSVs.
//! * [`error`] — relative/absolute error metrics and paper-style summaries.
//! * [`ewma`] — EWMA and the windowed link-utilization estimator driving
//!   RLI's adaptive injection policy.
//! * [`histogram`] — log-scale histograms for latency/error sketches.
//! * [`quantile`] — the P² streaming quantile estimator (per-flow tail
//!   latency in O(1) memory).
//! * [`timeseries`] — fixed-width time bins (offered load, utilization).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cdf;
pub mod error;
pub mod ewma;
pub mod histogram;
pub mod quantile;
pub mod streaming;
pub mod timeseries;

pub use cdf::{CdfSeries, Ecdf};
pub use error::{absolute_error, relative_error, signed_relative_error, ErrorSummary};
pub use ewma::{Ewma, UtilizationEstimator};
pub use histogram::LogHistogram;
pub use quantile::P2Quantile;
pub use streaming::StreamingStats;
pub use timeseries::BinnedSeries;
