//! Time-binned series.
//!
//! Used to track quantities that evolve over simulated time — queue
//! occupancy, offered load, utilization — by accumulating into fixed-width
//! bins. The experiment harness emits these as CSV for plotting and the
//! cross-traffic calibrator reads back per-bin utilization.

use serde::{Deserialize, Serialize};

/// A series of fixed-width time bins, each accumulating a sum and a count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedSeries {
    bin_width_ns: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BinnedSeries {
    /// Create with the given bin width in nanoseconds.
    pub fn new(bin_width_ns: u64) -> Self {
        assert!(bin_width_ns > 0, "bin width must be positive");
        BinnedSeries {
            bin_width_ns,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Bin width in nanoseconds.
    pub fn bin_width_ns(&self) -> u64 {
        self.bin_width_ns
    }

    fn bin_index(&self, t_ns: u64) -> usize {
        (t_ns / self.bin_width_ns) as usize
    }

    /// Add observation `value` at time `t_ns`.
    pub fn record(&mut self, t_ns: u64, value: f64) {
        let idx = self.bin_index(t_ns);
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Number of bins touched so far (trailing empty bins excluded).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Sum accumulated in bin `i` (0 for untouched bins in range).
    pub fn sum(&self, i: usize) -> f64 {
        self.sums.get(i).copied().unwrap_or(0.0)
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Mean of bin `i` (`None` for empty bins).
    pub fn mean(&self, i: usize) -> Option<f64> {
        let c = self.count(i);
        (c > 0).then(|| self.sum(i) / c as f64)
    }

    /// Iterate `(bin_start_ns, sum, count)` over all bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64, u64)> + '_ {
        self.sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(move |(i, (&s, &c))| (i as u64 * self.bin_width_ns, s, c))
    }

    /// Interpret each bin's sum as bytes and convert to utilization of a link
    /// of `rate_bps`, returning one fraction per bin.
    pub fn as_utilization(&self, rate_bps: u64) -> Vec<f64> {
        let capacity_per_bin = rate_bps as f64 / 8.0 * self.bin_width_ns as f64 / 1e9;
        self.sums.iter().map(|s| s / capacity_per_bin).collect()
    }

    /// Mean of all bin sums (e.g. average per-bin byte count). `None` if no
    /// bins exist.
    pub fn mean_bin_sum(&self) -> Option<f64> {
        if self.sums.is_empty() {
            None
        } else {
            Some(self.sums.iter().sum::<f64>() / self.sums.len() as f64)
        }
    }

    /// CSV rendering: `bin_start_ns,sum,count` per line.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_start_ns,sum,count\n");
        for (t, s, c) in self.iter() {
            out.push_str(&format!("{t},{s},{c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut s = BinnedSeries::new(1000);
        s.record(0, 1.0);
        s.record(999, 2.0);
        s.record(1000, 5.0);
        s.record(2500, 7.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sum(0), 3.0);
        assert_eq!(s.count(0), 2);
        assert_eq!(s.sum(1), 5.0);
        assert_eq!(s.sum(2), 7.0);
        assert_eq!(s.mean(0), Some(1.5));
        assert_eq!(s.mean(9), None);
    }

    #[test]
    fn empty_series() {
        let s = BinnedSeries::new(10);
        assert!(s.is_empty());
        assert_eq!(s.mean_bin_sum(), None);
        assert_eq!(s.sum(0), 0.0);
    }

    #[test]
    fn utilization_conversion() {
        // 1 Gb/s, 1 ms bins → 125_000 bytes per full bin.
        let mut s = BinnedSeries::new(1_000_000);
        s.record(0, 125_000.0);
        s.record(1_000_000, 62_500.0);
        let u = s.as_utilization(1_000_000_000);
        assert!((u[0] - 1.0).abs() < 1e-9);
        assert!((u[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn iter_reports_bin_starts() {
        let mut s = BinnedSeries::new(100);
        s.record(250, 1.0);
        let rows: Vec<_> = s.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], (200, 1.0, 1));
        assert_eq!(rows[0], (0, 0.0, 0));
    }

    #[test]
    fn csv_format() {
        let mut s = BinnedSeries::new(100);
        s.record(0, 2.0);
        let csv = s.to_csv();
        assert!(csv.starts_with("bin_start_ns,sum,count\n"));
        assert!(csv.contains("0,2,1\n"));
    }
}
